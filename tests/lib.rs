//! Integration-test crate for `dp-byz-sgd`.
//!
//! The library target is intentionally empty; all content lives in
//! `tests/tests/*.rs`, which exercise the public APIs of every workspace
//! crate together.
