//! Privacy accounting across a simulated training run: accountant
//! orderings, calibration consistency, and empirical noise energy.

use dpbyz_dp::accountant::{advanced_composition, basic_composition, RdpAccountant};
use dpbyz_dp::{GaussianMechanism, Mechanism, PrivacyBudget};
use dpbyz_tensor::{Prng, Vector};

fn paper_budget() -> PrivacyBudget {
    PrivacyBudget::new(0.2, 1e-6).unwrap()
}

#[test]
fn accountant_tightness_ordering_over_paper_run() {
    // For the paper's T = 1000 steps: RDP < advanced < basic.
    let budget = paper_budget();
    let (basic_e, _) = basic_composition(budget, 1000);
    let (adv_e, _) = advanced_composition(budget, 1000, 1e-6).unwrap();
    let mut rdp = RdpAccountant::from_budget(budget).unwrap();
    rdp.step_many(1000);
    let rdp_e = rdp.epsilon(2e-3); // compare at the same total δ as basic
    assert!(rdp_e < adv_e, "rdp {rdp_e} >= advanced {adv_e}");
    assert!(adv_e < basic_e, "advanced {adv_e} >= basic {basic_e}");
}

#[test]
fn injected_noise_energy_matches_calibration() {
    // Run the mechanism 2000 times on the zero gradient and verify the
    // total injected energy E‖y‖² ≈ d·s² — the exact term Eq. 8 adds.
    let mech = GaussianMechanism::for_clipped_gradients(paper_budget(), 0.01, 50).unwrap();
    let d = 69;
    let mut rng = Prng::seed_from_u64(1);
    let zero = Vector::zeros(d);
    let n = 2000;
    let total: f64 = (0..n)
        .map(|_| mech.perturb(&zero, &mut rng).l2_norm_squared())
        .sum();
    let measured = total / n as f64;
    let expected = mech.total_noise_variance(d);
    assert!(
        (measured - expected).abs() / expected < 0.1,
        "measured {measured} vs calibrated {expected}"
    );
}

#[test]
fn noise_dominates_signal_at_paper_calibration() {
    // §5 intuition: at (0.2, 1e-6), b = 50, G_max = 0.01, d = 69, the
    // noise energy exceeds the maximum possible signal energy G_max² by
    // more than an order of magnitude.
    let mech = GaussianMechanism::for_clipped_gradients(paper_budget(), 0.01, 50).unwrap();
    let noise = mech.total_noise_variance(69);
    let signal = 0.01f64 * 0.01;
    assert!(noise / signal > 10.0, "noise/signal = {}", noise / signal);
}

#[test]
fn per_step_budget_composes_to_large_totals() {
    // The paper's per-step (0.2, 1e-6) over 1000 steps is far beyond any
    // meaningful total guarantee — context for why per-step budgets are
    // the quantity under study.
    let (e, d) = basic_composition(paper_budget(), 1000);
    assert!(e >= 100.0);
    assert!(d >= 1e-4);
}
