//! End-to-end coverage of the scenario-pack subsystem through the
//! facade: built-in packs expand and run, the `attack-zoo` cross product
//! is bit-identical across pool sizes, out-of-tree crates register and
//! sweep custom packs, and packs round-trip through the JSON spec format.

use dpbyz::prelude::*;
use dpbyz::sweep::SweepCell;

fn quick_base() -> ExperimentBuilder {
    Experiment::builder()
        .steps(3)
        .dataset_size(200)
        .batch_size(10)
}

/// The acceptance gate: `with_pack("attack-zoo")` — every registered GAR
/// × every registered attack — runs end-to-end and produces bit-identical
/// histories at pool sizes 1 and 8, on both engines.
///
/// The pack is expanded ONCE and replayed as explicit cells for the two
/// pool sizes: other tests in this binary may register components
/// concurrently, and `attack-zoo` reads the registries at resolve time,
/// so expanding twice could legitimately see different zoos.
#[test]
fn attack_zoo_is_bit_identical_at_pool_sizes_1_and_8() {
    for threaded in [false, true] {
        let cells: Vec<SweepCell> = SweepBuilder::over(quick_base().threaded(threaded))
            .with_pack("attack-zoo")
            .cells()
            .expect("attack-zoo expands");
        assert!(cells.len() >= 9 * 9, "zoo too small: {} cells", cells.len());
        // The four new components are in the zoo.
        for label in [
            "attack-zoo/centered-clipping/alie",
            "attack-zoo/bucketing/alie",
            "attack-zoo/mda/ipm",
            "attack-zoo/mda/rescaling",
        ] {
            assert!(cells.iter().any(|c| c.label == label), "missing {label}");
        }

        let run = |pool: usize| {
            let mut sweep = SweepBuilder::new().seeds(&[1]).pool_size(pool);
            for cell in &cells {
                sweep = sweep.cell(cell.label.clone(), cell.experiment.clone());
            }
            sweep.run().expect("attack-zoo runs")
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial.cells.len(), cells.len());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                a.histories, b.histories,
                "cell {} diverged across pool sizes (threaded = {threaded})",
                a.label
            );
        }
    }
}

#[test]
fn all_four_new_components_resolve_by_id_and_run() {
    for (gar, attack, f) in [
        ("centered-clipping", "ipm", 5),
        ("centered-clipping", "rescaling", 5),
        ("bucketing", "ipm", 2),
        ("bucketing", "rescaling", 2),
    ] {
        let exp = quick_base()
            .gar(gar)
            .attack(attack)
            .byzantine(f)
            .build()
            .unwrap_or_else(|e| panic!("{gar}/{attack}: {e}"));
        let h = exp.run(1).unwrap_or_else(|e| panic!("{gar}/{attack}: {e}"));
        assert_eq!(h.train_loss.len(), 3, "{gar}/{attack}");
    }
}

#[test]
fn paper_core_runs_end_to_end_with_prefixed_labels() {
    let results = SweepBuilder::over(quick_base())
        .with_pack("paper-core")
        .seeds(&[1, 2])
        .run()
        .expect("paper-core runs");
    assert_eq!(results.cells.len(), 6);
    assert_eq!(results.cells[0].label, "paper-core/clean/nodp");
    // The /dp cells actually carry a budget; their clean/nodp twins don't.
    assert!(results
        .get("paper-core/mda/alie/dp")
        .unwrap()
        .experiment
        .budget
        .is_some());
    assert!(results
        .get("paper-core/mda/alie/nodp")
        .unwrap()
        .experiment
        .budget
        .is_none());
    // Two seeds, two histories per cell.
    assert_eq!(results.cells[0].histories.len(), 2);
}

#[test]
fn clipping_study_covers_the_new_defense_attack_matrix() {
    let results = SweepBuilder::over(quick_base())
        .with_pack("clipping-study")
        .seeds(&[1])
        .run()
        .expect("clipping-study runs");
    assert_eq!(results.cells.len(), 9); // 3 defenses × 3 attacks
    for defense in ["cc-tight", "cc-loose", "bucket-median"] {
        for attack in ["alie", "ipm", "rescaling"] {
            assert!(
                results
                    .get(&format!("clipping-study/{defense}/{attack}"))
                    .is_some(),
                "missing {defense}/{attack}"
            );
        }
    }
}

/// An out-of-tree crate's workflow: define a pack against custom AND
/// built-in component ids, register it, sweep it by id — exactly like
/// components register.
#[test]
fn custom_pack_with_custom_component_registers_and_sweeps() {
    use dpbyz::gars::{Gar, GarError};
    use dpbyz::tensor::Vector;
    use std::sync::Arc;

    // A third-party rule: plain mean of the first k = n − f submissions.
    struct HeadMean;
    impl Gar for HeadMean {
        fn name(&self) -> &'static str {
            "head-mean"
        }
        fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
            let k = gradients.len().saturating_sub(f).max(1);
            Vector::mean(&gradients[..k]).map_err(|_| GarError::Empty)
        }
        fn kappa(&self, _n: usize, _f: usize) -> Option<f64> {
            None
        }
        fn max_byzantine(&self, n: usize) -> usize {
            n.saturating_sub(1) / 2
        }
    }
    register_gar("head-mean", |_| Ok(Arc::new(HeadMean))).expect("registers");

    let pack = ScenarioPack::new("third-party-study", "custom rule vs two attacks")
        .cell(
            PackCell::new("head-mean/ipm")
                .gar("head-mean")
                .attack(ComponentSpec::new("ipm").with("epsilon", 0.5))
                .byzantine(3),
        )
        .cell(
            PackCell::new("head-mean/rescaling")
                .gar("head-mean")
                .attack("rescaling")
                .byzantine(3)
                .batch_size(5),
        );
    register_scenario_pack(pack.clone()).expect("pack registers");

    // Duplicate pack ids are rejected like component ids.
    let err = register_scenario_pack(ScenarioPack::new("third-party-study", "shadow"))
        .expect_err("duplicate pack id");
    assert!(matches!(err, dpbyz::RegistryError::DuplicateId(_)));

    let results = SweepBuilder::over(quick_base())
        .with_pack("third-party-study")
        .seeds(&[1])
        .run()
        .expect("custom pack runs");
    assert_eq!(results.cells.len(), 2);
    assert_eq!(results.cells[0].label, "third-party-study/head-mean/ipm");
    // Per-cell axis values reached the experiment.
    assert_eq!(
        results.cells[1].experiment.config.batch_size, 5,
        "pack cell batch override lost"
    );
    assert_eq!(results.cells[0].experiment.config.n_byzantine, 3);

    // The custom pack also ships as JSON and comes back equal.
    let json = pack.to_json().expect("serializes");
    let back = ScenarioPack::from_json(&json).expect("deserializes");
    assert_eq!(back, pack);

    // And the registered custom GAR joined the attack-zoo automatically.
    let zoo = scenario_pack("attack-zoo").expect("resolves");
    assert!(
        zoo.cells.iter().any(|c| c.label.starts_with("head-mean/")),
        "late-registered GAR missing from attack-zoo"
    );
}

#[test]
fn unknown_pack_id_lists_registered_packs() {
    let err = SweepBuilder::over(quick_base())
        .with_pack("not-a-pack")
        .run()
        .expect_err("unknown pack fails");
    let message = err.to_string();
    assert!(
        message.contains("not-a-pack")
            && message.contains("paper-core")
            && message.contains("attack-zoo"),
        "{message}"
    );
}
