//! Seeded chaos is digest-invisible: a crash-free fault plan — delays,
//! jitter, duplication, "drops" (delayed retransmissions), partition
//! windows, all derived from a `u64` seed — may scramble the byte-level
//! event order however it likes, but every report still lands inside the
//! virtual deadlines, so the `"sim"` backend must reproduce the
//! sequential engine's history **bit for bit**. And the chaos itself is
//! deterministic: the same chaos seed replays the same run.

use dpbyz_core::pipeline::{Experiment, FigureConfig};
use dpbyz_core::{AttackKind, ComponentSpec};

/// Eight pinned fault plans — regenerating them must never be a silent
/// test change.
const CHAOS_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0xDEAD_BEEF, u64::MAX];

fn experiment() -> Experiment {
    Experiment::paper_figure(FigureConfig {
        batch_size: 10,
        epsilon: Some(0.2),
        attack: Some(AttackKind::PAPER_ALIE),
        steps: 6,
        dataset_size: 300,
        ..FigureConfig::default()
    })
    .unwrap()
}

/// The tentpole acceptance matrix: 8 fixed-seed fault plans × {sim,
/// sequential}, digest-equal — and each sim run replayed byte-identical.
#[test]
fn chaos_runs_are_digest_equal_to_sequential_across_eight_seeds() {
    dpbyz_net::install();
    let run_seed = 17;

    let mut exp = experiment();
    exp.backend = ComponentSpec::new("sequential");
    let reference = exp.run(run_seed).unwrap();

    for chaos in CHAOS_SEEDS {
        exp.backend = ComponentSpec::new("sim").with("chaos", chaos);
        let first = exp.run(run_seed).unwrap();
        let second = exp.run(run_seed).unwrap();
        assert_eq!(
            first, second,
            "chaos seed {chaos:#x}: same seed must replay the same run"
        );
        assert_eq!(
            first.digest(),
            reference.digest(),
            "chaos seed {chaos:#x}: crash-free chaos must be digest-invisible \
             (sim {:#018x}, sequential {:#018x})",
            first.digest(),
            reference.digest()
        );
        assert_eq!(first, reference);
    }
}

/// Fault-free sim (no `chaos` parameter) is the degenerate case: clean
/// virtual links, still bit-identical to sequential — pinning the
/// transport extraction itself, independent of any fault plan.
#[test]
fn clean_sim_backend_matches_sequential() {
    dpbyz_net::install();
    let mut exp = experiment();
    exp.backend = ComponentSpec::new("sequential");
    let reference = exp.run(3).unwrap();
    exp.backend = ComponentSpec::new("sim");
    let sim = exp.run(3).unwrap();
    assert_eq!(reference, sim);
}

/// An all-honest topology (every worker a real sim session, no
/// server-side forgeries) holds under chaos too.
#[test]
fn chaos_holds_without_an_attack() {
    dpbyz_net::install();
    let mut exp = Experiment::paper_figure(FigureConfig {
        batch_size: 10,
        steps: 5,
        dataset_size: 300,
        ..FigureConfig::default()
    })
    .unwrap();
    let reference = exp.run(9).unwrap();
    exp.backend = ComponentSpec::new("sim").with("chaos", 42u64);
    let sim = exp.run(9).unwrap();
    assert_eq!(reference, sim);
}
