//! Seeded chaos is digest-invisible: a crash-free fault plan — delays,
//! jitter, duplication, "drops" (delayed retransmissions), partition
//! windows, all derived from a `u64` seed — may scramble the byte-level
//! event order however it likes, but every report still lands inside the
//! virtual deadlines, so the `"sim"` backend must reproduce the
//! sequential engine's history **bit for bit**. And the chaos itself is
//! deterministic: the same chaos seed replays the same run.

use dpbyz_core::pipeline::{Experiment, FigureConfig};
use dpbyz_core::{AttackKind, ComponentSpec};
use dpbyz_net::{FaultPlan, SimBackend};
use dpbyz_server::RunScratch;

/// Eight pinned fault plans — regenerating them must never be a silent
/// test change.
const CHAOS_SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0xDEAD_BEEF, u64::MAX];

fn experiment() -> Experiment {
    Experiment::paper_figure(FigureConfig {
        batch_size: 10,
        epsilon: Some(0.2),
        attack: Some(AttackKind::PAPER_ALIE),
        steps: 6,
        dataset_size: 300,
        ..FigureConfig::default()
    })
    .unwrap()
}

/// The tentpole acceptance matrix: 8 fixed-seed fault plans × {sim,
/// sequential}, digest-equal — and each sim run replayed byte-identical.
#[test]
fn chaos_runs_are_digest_equal_to_sequential_across_eight_seeds() {
    dpbyz_net::install();
    let run_seed = 17;

    let mut exp = experiment();
    exp.backend = ComponentSpec::new("sequential");
    let reference = exp.run(run_seed).unwrap();

    for chaos in CHAOS_SEEDS {
        exp.backend = ComponentSpec::new("sim").with("chaos", chaos);
        let first = exp.run(run_seed).unwrap();
        let second = exp.run(run_seed).unwrap();
        assert_eq!(
            first, second,
            "chaos seed {chaos:#x}: same seed must replay the same run"
        );
        assert_eq!(
            first.digest(),
            reference.digest(),
            "chaos seed {chaos:#x}: crash-free chaos must be digest-invisible \
             (sim {:#018x}, sequential {:#018x})",
            first.digest(),
            reference.digest()
        );
        assert_eq!(first, reference);
    }
}

/// Fault-free sim (no `chaos` parameter) is the degenerate case: clean
/// virtual links, still bit-identical to sequential — pinning the
/// transport extraction itself, independent of any fault plan.
#[test]
fn clean_sim_backend_matches_sequential() {
    dpbyz_net::install();
    let mut exp = experiment();
    exp.backend = ComponentSpec::new("sequential");
    let reference = exp.run(3).unwrap();
    exp.backend = ComponentSpec::new("sim");
    let sim = exp.run(3).unwrap();
    assert_eq!(reference, sim);
}

/// Late joins under chaos: four fixed-seed fault plans where the last
/// honest worker is absent from the initial fleet and attaches via
/// `JOIN_FRESH` when a chosen step goes out (step 0 = during warmup).
/// The join itself rides the seeded chaos links — delayed, jittered,
/// possibly duplicated — so this pins that a mid-run attach is as
/// deterministic as everything else: each run replays bit-identically,
/// counts exactly one fresh join, and differs from the same chaos plan
/// with a full initial fleet.
#[test]
fn late_joiners_attach_mid_chaos_and_replay_bit_identically() {
    let exp = experiment();
    let n_honest = exp.config.n_workers - exp.config.n_byzantine;
    let w = (n_honest - 1) as u32;
    let backend = SimBackend::from_spec(
        &ComponentSpec::new("sim")
            .with("min_workers", (n_honest - 1) as u64)
            .with("quorum", (n_honest - 1) as u64),
    );
    let run_seed = 17;
    let mut scratch = RunScratch::new();

    for (chaos, on_step) in [(1u64, 0u32), (8, 2), (0xDEAD_BEEF, 3), (u64::MAX, 5)] {
        let full_fleet = FaultPlan::from_seed(chaos, n_honest);
        let reference = backend
            .run_with_plan(&exp, run_seed, &full_fleet, None, &mut scratch)
            .unwrap();
        assert_eq!(reference.churn.joined_fresh, 0);

        let plan = FaultPlan::from_seed(chaos, n_honest).with_late_join(w, on_step);
        let first = backend
            .run_with_plan(&exp, run_seed, &plan, None, &mut scratch)
            .unwrap();
        let second = backend
            .run_with_plan(&exp, run_seed, &plan, None, &mut scratch)
            .unwrap();
        assert_eq!(
            first, second,
            "chaos seed {chaos:#x}, join at step {on_step}: late joins must replay"
        );
        assert_eq!(
            first.churn.joined_fresh, 1,
            "chaos seed {chaos:#x}: exactly one fresh mid-run attach"
        );
        assert!(
            first.churn.late_admits.iter().all(|&c| c == 0),
            "fresh joins are orthogonal to staleness admission (window 0 here)"
        );
        if on_step == 0 {
            // A warmup attach lands before any aggregation: the joiner
            // misses nothing, so the trajectory is identical to the
            // full-fleet run — fresh joins are timing, not content.
            assert_eq!(
                first, reference,
                "chaos seed {chaos:#x}: a warmup attach must be trajectory-invisible"
            );
        } else {
            assert_ne!(
                first, reference,
                "chaos seed {chaos:#x}: the joiner's missed rounds must show in the history"
            );
        }
    }
}

/// The staleness × churn smoke matrix the CI `chaos-smoke` job names:
/// `k ∈ {0, 2}` crossed with {crash-and-rejoin, late-join} on the sim
/// backend. Every cell must complete at quorum `n_honest − 1`, replay
/// bit-identically, and report the churn kind it was dealt — a cheap
/// end-to-end gate that graceful degradation holds in every quadrant,
/// not just the corners the focused suites pin.
#[test]
fn staleness_churn_matrix_completes_and_replays_in_every_quadrant() {
    let base = experiment();
    let n_honest = base.config.n_workers - base.config.n_byzantine;
    let w = (n_honest - 1) as u32;
    let backend = SimBackend::from_spec(
        &ComponentSpec::new("sim")
            .with("min_workers", (n_honest - 1) as u64)
            .with("quorum", (n_honest - 1) as u64),
    );
    let run_seed = 21;
    let mut scratch = RunScratch::new();

    for window in [0u32, 2] {
        let mut exp = experiment();
        exp.config.staleness_window = window;
        for churn in ["crash", "late-join"] {
            let plan = match churn {
                "crash" => FaultPlan::clean(n_honest).with_crash(w, 2, 4),
                _ => FaultPlan::clean(n_honest).with_late_join(w, 3),
            };
            let first = backend
                .run_with_plan(&exp, run_seed, &plan, None, &mut scratch)
                .unwrap();
            let second = backend
                .run_with_plan(&exp, run_seed, &plan, None, &mut scratch)
                .unwrap();
            assert_eq!(first, second, "k = {window}, {churn}: replay diverged");
            match churn {
                "crash" => assert!(
                    first.churn.dropped_rounds[w as usize] > 0,
                    "k = {window}: the crashed worker must miss rounds"
                ),
                _ => assert_eq!(
                    first.churn.joined_fresh, 1,
                    "k = {window}: the late joiner must attach fresh"
                ),
            }
        }
    }
}

/// An all-honest topology (every worker a real sim session, no
/// server-side forgeries) holds under chaos too.
#[test]
fn chaos_holds_without_an_attack() {
    dpbyz_net::install();
    let mut exp = Experiment::paper_figure(FigureConfig {
        batch_size: 10,
        steps: 5,
        dataset_size: 300,
        ..FigureConfig::default()
    })
    .unwrap();
    let reference = exp.run(9).unwrap();
    exp.backend = ComponentSpec::new("sim").with("chaos", 42u64);
    let sim = exp.run(9).unwrap();
    assert_eq!(reference, sim);
}
