//! Fault injection (§2.1: non-received gradients become zero vectors) and
//! the §7 extensions, exercised end-to-end across both engines.

use dpbyz_core::pipeline::{Experiment, FigureConfig};
use dpbyz_core::AttackKind;
use dpbyz_server::BatchGrowth;

fn base(steps: u32) -> Experiment {
    Experiment::paper_figure(FigureConfig {
        batch_size: 20,
        epsilon: Some(0.2),
        attack: Some(AttackKind::PAPER_ALIE),
        steps,
        dataset_size: 800,
        ..FigureConfig::default()
    })
    .expect("valid configuration")
}

#[test]
fn training_survives_moderate_drops() {
    let mut exp = Experiment::paper_figure(FigureConfig {
        batch_size: 50,
        epsilon: None,
        attack: None,
        steps: 150,
        dataset_size: 2000,
        ..FigureConfig::default()
    })
    .expect("valid");
    exp.config.drop_rate = 0.2;
    let h = exp.run(1).expect("runs");
    assert!(
        h.tail_loss(10) < h.train_loss[0] * 0.8,
        "training failed under 20% drops"
    );
    assert!(h.final_accuracy().unwrap() > 0.75);
}

#[test]
fn threaded_equals_sequential_with_all_extensions() {
    // Drops + EMA + batch growth + DP + attack, both engines: the
    // strongest determinism contract in the workspace.
    let configure = |threaded: bool| {
        let mut exp = base(15);
        exp.config.drop_rate = 0.25;
        exp.config.gradient_ema = Some(0.9);
        exp.config.batch_growth = Some(BatchGrowth {
            factor: 1.05,
            max: 100,
        });
        exp.backend = if threaded { "threaded" } else { "sequential" }.into();
        exp
    };
    for seed in [1u64, 13] {
        let seq = configure(false).run(seed).expect("sequential runs");
        let thr = configure(true).run(seed).expect("threaded runs");
        assert_eq!(seq, thr, "engines diverged at seed {seed}");
    }
}

#[test]
fn drops_are_orthogonal_to_attack_rng() {
    // Enabling faults must not perturb the attack's random stream: the
    // forged gradients of a deterministic attack (ALIE is
    // deterministic given honest submissions) depend only on honest
    // submissions, and those are computed before drops. Weak observable:
    // first-step train loss (computed pre-drop) matches exactly.
    let no_drops = base(5).run(3).expect("runs");
    let mut dropped = base(5);
    dropped.config.drop_rate = 0.5;
    let with_drops = dropped.run(3).expect("runs");
    assert_eq!(no_drops.train_loss[0], with_drops.train_loss[0]);
    assert_eq!(no_drops.vn_clean[0], with_drops.vn_clean[0]);
    // But the trajectories must diverge afterwards.
    assert_ne!(no_drops.train_loss, with_drops.train_loss);
}

#[test]
fn heavy_drops_degrade_attacked_dp_training_further() {
    let clean = base(120).run(1).expect("runs").tail_loss(10);
    let mut faulty = base(120);
    faulty.config.drop_rate = 0.6;
    let dropped = faulty.run(1).expect("runs").tail_loss(10);
    // 60% loss of honest gradients under DP+ALIE cannot help; allow
    // equality-ish noise but no miracle improvement.
    assert!(
        dropped > clean - 0.05,
        "drops implausibly improved training: {clean} -> {dropped}"
    );
}
