//! Allocation bound for the zero-copy round engine: after warm-up, a
//! training round performs **zero** heap allocations for the `average`,
//! `krum`, and `median` cells with the Gaussian mechanism — on **both**
//! engines. The threaded cases cover the whole transport too: encoding
//! into the recycled frame arena, the channel hop, and decoding straight
//! into the server's output slots all stay allocation-free once warm.
//!
//! A counting global allocator snapshots the cumulative allocation count
//! at every step (via a passive observer); the per-round deltas over the
//! back half of the run must all be zero. Any clone-per-round regression
//! in the worker loop, the wire codec, the server's round processing, the
//! VN diagnostics, or the GAR scratch path fails this test immediately.

use dpbyz::data::sampler::{BatchSource, DatasetSource, SamplingMode};
use dpbyz::data::synthetic;
use dpbyz::dp::{GaussianMechanism, Mechanism};
use dpbyz::gars::{Average, CoordinateMedian, Gar, Krum};
use dpbyz::models::{LogisticRegression, LossKind};
use dpbyz::server::{FnObserver, ThreadedTrainer, Trainer, TrainingConfig};
use dpbyz::tensor::Prng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counts every allocation event (alloc, alloc_zeroed, realloc) while
/// delegating to the system allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const STEPS: u32 = 40;

/// Runs one cell and returns the cumulative allocation count observed at
/// the end of every step.
fn per_step_allocation_counts(gar: Arc<dyn Gar>) -> Vec<u64> {
    per_step_allocation_counts_on(gar, false, 1)
}

/// [`per_step_allocation_counts`] with engine selection and intra-round
/// aggregation parallelism: `threaded` exercises the full wire transport
/// (frame arena encode → channel → decode) under the counting allocator;
/// `agg_threads > 1` shards the GAR's coordinate/candidate loops over the
/// compute pool, whose task packets must also recycle allocation-free
/// once warm (worker threads and channel buffers land in round 1).
fn per_step_allocation_counts_on(
    gar: Arc<dyn Gar>,
    threaded: bool,
    agg_threads: usize,
) -> Vec<u64> {
    let n = 5;
    let mut rng = Prng::seed_from_u64(11);
    let ds = Arc::new(synthetic::phishing_like(&mut rng, 400));
    let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
    let config = TrainingConfig::builder()
        .workers(n, 0)
        .batch_size(10)
        .steps(STEPS)
        .eval_every(0)
        .agg_threads(agg_threads)
        .build()
        .unwrap();
    let sources: Vec<Box<dyn BatchSource>> = (0..n)
        .map(|_| {
            Box::new(DatasetSource::new(
                ds.clone(),
                SamplingMode::WithReplacement,
            )) as Box<dyn BatchSource>
        })
        .collect();
    // The snapshot buffer is pre-reserved so the observer itself never
    // allocates on the hot path.
    let snapshots: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(STEPS as usize)));
    let sink = snapshots.clone();
    let trainer = Trainer::new(config, model, sources, None)
        .gar(gar)
        .mechanism(Arc::new(GaussianMechanism::with_sigma(0.01).unwrap()) as Arc<dyn Mechanism>)
        .observer(Box::new(FnObserver::new(move |_m| {
            sink.lock().unwrap().push(allocation_count());
        })));
    if threaded {
        ThreadedTrainer::from(trainer).run(1).unwrap();
    } else {
        trainer.run(1).unwrap();
    }
    Arc::try_unwrap(snapshots).unwrap().into_inner().unwrap()
}

fn assert_steady_state_allocation_free(name: &str, counts: &[u64]) {
    assert_eq!(counts.len(), STEPS as usize);
    // Warm-up (first rounds) may allocate: buffers grow to the topology's
    // sizes. From mid-run on, every per-round delta must be exactly zero.
    let tail = &counts[counts.len() / 2..];
    for (i, pair) in tail.windows(2).enumerate() {
        assert_eq!(
            pair[1] - pair[0],
            0,
            "{name}: round {} allocated {} time(s) at steady state \
             (full counts: {counts:?})",
            counts.len() / 2 + i + 1,
            pair[1] - pair[0],
        );
    }
}

#[test]
fn average_cell_is_allocation_free_at_steady_state() {
    let counts = per_step_allocation_counts(Arc::new(Average::new()));
    assert_steady_state_allocation_free("average/gaussian", &counts);
}

#[test]
fn krum_cell_is_allocation_free_at_steady_state() {
    let counts = per_step_allocation_counts(Arc::new(Krum::new()));
    assert_steady_state_allocation_free("krum/gaussian", &counts);
}

#[test]
fn median_cell_is_allocation_free_at_steady_state() {
    let counts = per_step_allocation_counts(Arc::new(CoordinateMedian::new()));
    assert_steady_state_allocation_free("median/gaussian", &counts);
}

// The threaded engine reaches the same zero-allocations-per-round steady
// state as the serial one — **including the wire frames**: the per-worker
// `BytesMut` arena, the broadcast-parameter buffers, and the pre-noise
// diagnostics all recycle round-trip through the channels, and
// `encode_into`/`decode_into` reuse live buffers on both ends.

#[test]
fn threaded_average_cell_is_allocation_free_at_steady_state() {
    let counts = per_step_allocation_counts_on(Arc::new(Average::new()), true, 1);
    assert_steady_state_allocation_free("threaded/average/gaussian", &counts);
}

#[test]
fn threaded_krum_cell_is_allocation_free_at_steady_state() {
    let counts = per_step_allocation_counts_on(Arc::new(Krum::new()), true, 1);
    assert_steady_state_allocation_free("threaded/krum/gaussian", &counts);
}

#[test]
fn threaded_median_cell_is_allocation_free_at_steady_state() {
    let counts = per_step_allocation_counts_on(Arc::new(CoordinateMedian::new()), true, 1);
    assert_steady_state_allocation_free("threaded/median/gaussian", &counts);
}

// The intra-round parallel aggregation path (`agg_threads > 1`) reaches
// the same zero-allocations-per-round steady state: the pool's task
// packets (column transposes, per-shard outputs, sort scratch) round-trip
// through the worker channels and are recycled, so after the round-1
// warm-up the parallel shard bodies allocate nothing.

#[test]
fn parallel_median_cell_is_allocation_free_at_steady_state() {
    let counts = per_step_allocation_counts_on(Arc::new(CoordinateMedian::new()), false, 4);
    assert_steady_state_allocation_free("median/gaussian/agg_threads=4", &counts);
}

#[test]
fn parallel_krum_cell_is_allocation_free_at_steady_state() {
    let counts = per_step_allocation_counts_on(Arc::new(Krum::new()), false, 4);
    assert_steady_state_allocation_free("krum/gaussian/agg_threads=4", &counts);
}

#[test]
fn threaded_parallel_median_cell_is_allocation_free_at_steady_state() {
    let counts = per_step_allocation_counts_on(Arc::new(CoordinateMedian::new()), true, 4);
    assert_steady_state_allocation_free("threaded/median/gaussian/agg_threads=4", &counts);
}

// ---- the TCP deployment -------------------------------------------------

/// [`per_step_allocation_counts`] over the real socket transport: a
/// [`TcpCoordinator`] round-trips every step through localhost TCP with
/// one worker-session thread per honest worker. The counting allocator
/// is process-global, so the snapshots include the worker sessions too.
fn per_step_allocation_counts_tcp(gar: Arc<dyn Gar>) -> Vec<u64> {
    use dpbyz::net::{run_worker, CoordinatorConfig, TcpCoordinator, WorkerConfig};
    use dpbyz::RunScratch;

    let n = 5;
    let mut rng = Prng::seed_from_u64(11);
    let ds = Arc::new(synthetic::phishing_like(&mut rng, 400));
    let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
    let config = TrainingConfig::builder()
        .workers(n, 0)
        .batch_size(10)
        .steps(STEPS)
        .eval_every(0)
        .build()
        .unwrap();
    let sources: Vec<Box<dyn BatchSource>> = (0..n)
        .map(|_| {
            Box::new(DatasetSource::new(
                ds.clone(),
                SamplingMode::WithReplacement,
            )) as Box<dyn BatchSource>
        })
        .collect();
    let snapshots: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(STEPS as usize)));
    let sink = snapshots.clone();
    let trainer = Trainer::new(config, model, sources, None)
        .gar(gar)
        .mechanism(Arc::new(GaussianMechanism::with_sigma(0.01).unwrap()) as Arc<dyn Mechanism>)
        .observer(Box::new(FnObserver::new(move |_m| {
            sink.lock().unwrap().push(allocation_count());
        })));

    let mut scratch = RunScratch::new();
    let (core, workers) = trainer.into_distributed_parts(1, &mut scratch);
    let coordinator = TcpCoordinator::bind(
        "127.0.0.1:0",
        CoordinatorConfig {
            min_workers: n,
            quorum: n,
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let addr = coordinator.local_addr().unwrap();
    let handles: Vec<_> = workers
        .into_iter()
        .map(|w| std::thread::spawn(move || run_worker(addr, w, WorkerConfig::default())))
        .collect();
    coordinator.run(core, n, 1, &mut scratch).unwrap();
    for handle in handles {
        handle.join().unwrap().unwrap();
    }
    Arc::try_unwrap(snapshots).unwrap().into_inner().unwrap()
}

/// The socket engine keeps per-round allocations bounded once warm: both
/// endpoints recycle their frame buffers (`FrameReader` compacts in
/// place, senders reuse one `BytesMut`), so the only tolerated residue is
/// incidental — not proportional to rounds, dimension, or workers. The
/// kernel's socket buffers live outside the global allocator and are
/// invisible here.
const TCP_STEADY_STATE_ALLOCS_PER_ROUND: u64 = 8;

fn assert_steady_state_allocation_bounded(name: &str, counts: &[u64]) {
    assert_eq!(counts.len(), STEPS as usize);
    let tail = &counts[counts.len() / 2..];
    for (i, pair) in tail.windows(2).enumerate() {
        assert!(
            pair[1] - pair[0] <= TCP_STEADY_STATE_ALLOCS_PER_ROUND,
            "{name}: round {} allocated {} time(s) at steady state, \
             above the {TCP_STEADY_STATE_ALLOCS_PER_ROUND}-allocation bound \
             (full counts: {counts:?})",
            counts.len() / 2 + i + 1,
            pair[1] - pair[0],
        );
    }
}

#[test]
fn tcp_average_cell_keeps_rounds_allocation_bounded() {
    let counts = per_step_allocation_counts_tcp(Arc::new(Average::new()));
    assert_steady_state_allocation_bounded("tcp/average/gaussian", &counts);
}

#[test]
fn tcp_median_cell_keeps_rounds_allocation_bounded() {
    let counts = per_step_allocation_counts_tcp(Arc::new(CoordinateMedian::new()));
    assert_steady_state_allocation_bounded("tcp/median/gaussian", &counts);
}
