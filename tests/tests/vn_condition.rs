//! The VN-ratio condition, measured against the theory: Eq. 2 vs Eq. 8 on
//! live training runs, and consistency of Table 1's thresholds with
//! measurements.
//!
//! VN statistics are averaged over the *early* steps of training: near
//! convergence `‖∇Q‖ → 0` and the ratio diverges for any configuration
//! (the certificate is about the productive phase of training, which is
//! also where the paper's experiments live).

use dpbyz_core::pipeline::{Experiment, FigureConfig};
use dpbyz_core::theory::vn as theory_vn;
use dpbyz_core::GarKind;
use dpbyz_dp::PrivacyBudget;
use dpbyz_server::RunHistory;

fn run(batch: usize, eps: Option<f64>) -> RunHistory {
    // Momentum is disabled: Eq. 2 / Eq. 8 are statements about the raw
    // (noisy) per-step gradients of Eq. 7; the paper-protocol *worker
    // momentum* accumulates noise across steps, which is a different
    // (larger) quantity, measured by the figure experiments instead.
    let mut exp = Experiment::paper_figure(FigureConfig {
        batch_size: batch,
        epsilon: eps,
        attack: None,
        steps: 40,
        dataset_size: 2000,
        ..FigureConfig::default()
    })
    .expect("valid configuration");
    exp.config.momentum = 0.0;
    exp.run(1).expect("runs")
}

/// Mean of the first `k` finite entries.
fn early_mean(xs: &[f64], k: usize) -> f64 {
    let vals: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|x| x.is_finite())
        .take(k)
        .collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

fn paper_budget() -> PrivacyBudget {
    PrivacyBudget::new(0.2, 1e-6).unwrap()
}

#[test]
fn dp_noise_inflates_measured_vn_ratio() {
    let clean = run(50, None);
    let noisy = run(50, Some(0.2));
    let vn_clean = early_mean(&clean.vn_clean, 15);
    let vn_dp = early_mean(&noisy.vn_submitted, 15);
    assert!(
        vn_dp > vn_clean * 3.0,
        "DP barely moved the VN ratio: {vn_clean} -> {vn_dp}"
    );
}

#[test]
fn first_step_clean_vn_identical_across_mechanisms() {
    // At step 1 the parameters and batches are identical between the
    // no-DP and DP runs (noise is drawn after the batch), so the clean VN
    // statistic must agree exactly; afterwards the runs diverge.
    let clean = run(50, None);
    let noisy = run(50, Some(0.2));
    assert_eq!(clean.vn_clean[0], noisy.vn_clean[0]);
    assert_eq!(clean.grad_norm[0], noisy.grad_norm[0]);
}

#[test]
fn measured_noisy_vn_matches_eq8_prediction() {
    // Eq. 8's numerator: σ_G² + d·s². Feed the measured clean variance and
    // gradient norm into the closed form and compare with the measured
    // noisy ratio, step by step over the early phase.
    let noisy = run(50, Some(0.2));
    let budget = paper_budget();
    let mut ratios = Vec::new();
    for t in 0..15 {
        let clean_ratio = noisy.vn_clean[t];
        let norm = noisy.grad_norm[t];
        if !clean_ratio.is_finite() || norm <= 0.0 {
            continue;
        }
        let sigma_g2 = (clean_ratio * norm).powi(2);
        let predicted = theory_vn::noisy_vn_ratio(sigma_g2, norm, budget, 1e-2, 50, 69);
        ratios.push(noisy.vn_submitted[t] / predicted);
    }
    let mean_ratio: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean_ratio > 0.6 && mean_ratio < 1.6,
        "measured/predicted = {mean_ratio}"
    );
}

#[test]
fn vn_ratio_decreases_with_batch_size() {
    // σ_G² ∝ 1/b and d·s² ∝ 1/b²: bigger batches shrink the ratio on both
    // accounts.
    let b10 = early_mean(&run(10, Some(0.2)).vn_submitted, 15);
    let b500 = early_mean(&run(500, Some(0.2)).vn_submitted, 15);
    assert!(
        b500 < b10 / 5.0,
        "VN did not fall with batch size: b10 {b10}, b500 {b500}"
    );
}

#[test]
fn measured_vn_vs_gar_kappas_flips_under_dp() {
    // During early training, the clean b = 500 run satisfies MDA's κ(11,5)
    // while the DP b = 50 run violates it — the certificate flip the
    // paper is about, on live measurements.
    let kappa = GarKind::Mda.kappa(11, 5).unwrap();
    let good = early_mean(&run(500, None).vn_clean, 10);
    let bad = early_mean(&run(50, Some(0.2)).vn_submitted, 10);
    assert!(
        good < kappa,
        "clean b=500 should satisfy MDA's bound early on: VN {good} vs κ {kappa}"
    );
    assert!(
        bad > kappa,
        "DP b=50 should violate MDA's bound: VN {bad} vs κ {kappa}"
    );
}

#[test]
fn min_feasible_batch_is_consistent_with_measurements() {
    // Below theory's hard floor (best-case statistics) the measured noisy
    // VN ratio must violate κ.
    let budget = paper_budget();
    let kappa = GarKind::Mda.kappa(11, 5).unwrap();
    let floor = theory_vn::min_feasible_batch(budget, 69, kappa).unwrap();
    assert!(floor > 500, "floor unexpectedly small: {floor}");
    let measured = early_mean(&run(50, Some(0.2)).vn_submitted, 15);
    assert!(measured > kappa);
}
