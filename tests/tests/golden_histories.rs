//! Golden-history pins for the zero-copy round-engine refactor.
//!
//! The digests below were recorded on the *pre-refactor* engine (the
//! allocating clone-per-round hot path). The buffer-reusing engine must
//! reproduce every one of them byte-for-byte, on both the sequential and
//! the threaded engine — this is the "bit-identical histories" acceptance
//! gate of the refactor.

use dpbyz_attacks::{Attack, FallOfEmpires, InnerProductManipulation, LittleIsEnough, Rescaling};
use dpbyz_data::sampler::{BatchSource, DatasetSource, SamplingMode};
use dpbyz_data::synthetic;
use dpbyz_dp::{GaussianMechanism, LaplaceMechanism, Mechanism, NoNoise};
use dpbyz_gars::{
    Bucketing, Bulyan, CenteredClipping, CoordinateMedian, Gar, Krum, Mda, MultiKrum,
};
use dpbyz_models::{LogisticRegression, LossKind};
use dpbyz_server::{
    MomentumMode, RunHistory, ThreadedTrainer, Trainer, TrainingConfig, TrainingConfigBuilder,
};
use dpbyz_tensor::Prng;
use std::sync::Arc;

/// FNV-1a over every recorded float's bit pattern — a full-history digest.
fn digest(h: &RunHistory) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            acc ^= b as u64;
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(h.seed);
    for x in &h.train_loss {
        eat(x.to_bits());
    }
    for &(t, a) in &h.test_accuracy {
        eat(t as u64);
        eat(a.to_bits());
    }
    for x in &h.vn_submitted {
        eat(x.to_bits());
    }
    for x in &h.vn_clean {
        eat(x.to_bits());
    }
    for x in &h.grad_norm {
        eat(x.to_bits());
    }
    for x in h.final_params.iter() {
        eat(x.to_bits());
    }
    acc
}

struct CellSpec {
    name: &'static str,
    n: usize,
    f: usize,
    config: fn(TrainingConfigBuilder) -> TrainingConfigBuilder,
    gar: fn() -> Arc<dyn Gar>,
    mechanism: fn() -> Arc<dyn Mechanism>,
    attack: Option<fn() -> Arc<dyn Attack>>,
}

fn cells() -> Vec<CellSpec> {
    vec![
        CellSpec {
            name: "average/gaussian/clean",
            n: 5,
            f: 0,
            config: |b| b,
            gar: || Arc::new(dpbyz_gars::Average::new()),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.05).unwrap()),
            attack: None,
        },
        CellSpec {
            name: "krum/none/alie",
            n: 9,
            f: 2,
            config: |b| b,
            gar: || Arc::new(Krum::new()),
            mechanism: || Arc::new(NoNoise),
            attack: Some(|| Arc::new(LittleIsEnough::default())),
        },
        CellSpec {
            name: "multi-krum/gaussian/alie",
            n: 9,
            f: 2,
            config: |b| b,
            gar: || Arc::new(MultiKrum::new()),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.02).unwrap()),
            attack: Some(|| Arc::new(LittleIsEnough::default())),
        },
        CellSpec {
            name: "median/gaussian/foe",
            n: 7,
            f: 3,
            config: |b| b,
            gar: || Arc::new(CoordinateMedian::new()),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.03).unwrap()),
            attack: Some(|| Arc::new(FallOfEmpires::default())),
        },
        CellSpec {
            name: "mda/gaussian/alie/worker-momentum",
            n: 11,
            f: 5,
            config: |b| b.momentum_mode(MomentumMode::Worker),
            gar: || Arc::new(Mda::new()),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.01).unwrap()),
            attack: Some(|| Arc::new(LittleIsEnough::default())),
        },
        CellSpec {
            name: "bulyan/laplace/foe",
            n: 11,
            f: 2,
            config: |b| b,
            gar: || Arc::new(Bulyan::new()),
            mechanism: || Arc::new(LaplaceMechanism::calibrate(5.0, 0.01).unwrap()),
            attack: Some(|| Arc::new(FallOfEmpires::default())),
        },
        CellSpec {
            name: "average/none/drops+ema",
            n: 5,
            f: 0,
            config: |b| b.drop_rate(0.3).gradient_ema(0.9),
            gar: || Arc::new(dpbyz_gars::Average::new()),
            mechanism: || Arc::new(NoNoise),
            attack: None,
        },
        CellSpec {
            name: "trimmed-mean/gaussian/batch-growth",
            n: 7,
            f: 2,
            config: |b| b.batch_growth(1.1, 40),
            gar: || Arc::new(dpbyz_gars::TrimmedMean::new()),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.02).unwrap()),
            attack: Some(|| Arc::new(FallOfEmpires::default())),
        },
        // The four components added with the scenario-pack subsystem:
        // digests recorded at introduction, pinning their behavior for
        // every future refactor.
        CellSpec {
            name: "centered-clipping/gaussian/ipm",
            n: 11,
            f: 5,
            config: |b| b,
            gar: || Arc::new(CenteredClipping::new(0.05, 3)),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.02).unwrap()),
            attack: Some(|| Arc::new(InnerProductManipulation::default())),
        },
        CellSpec {
            name: "centered-clipping/laplace/rescaling",
            n: 7,
            f: 3,
            config: |b| b,
            gar: || Arc::new(CenteredClipping::new(0.1, 4)),
            mechanism: || Arc::new(LaplaceMechanism::calibrate(5.0, 0.01).unwrap()),
            attack: Some(|| Arc::new(Rescaling::new(-0.1))),
        },
        CellSpec {
            name: "bucketing-median/none/rescaling",
            n: 11,
            f: 2,
            config: |b| b,
            gar: || Arc::new(Bucketing::new(Arc::new(CoordinateMedian::new()), 2)),
            mechanism: || Arc::new(NoNoise),
            attack: Some(|| Arc::new(Rescaling::new(-0.05))),
        },
        CellSpec {
            name: "bucketing-krum/gaussian/alie",
            n: 11,
            f: 1,
            config: |b| b,
            gar: || Arc::new(Bucketing::new(Arc::new(Krum::new()), 2)),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.01).unwrap()),
            attack: Some(|| Arc::new(LittleIsEnough::default())),
        },
    ]
}

fn build_trainer(spec: &CellSpec) -> Trainer {
    let mut rng = Prng::seed_from_u64(41);
    let ds = Arc::new(synthetic::phishing_like(&mut rng, 400));
    let (train, test) = ds.split(0.8, &mut rng).unwrap();
    let (train, test) = (Arc::new(train), Arc::new(test));
    let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
    let builder = TrainingConfig::builder()
        .workers(spec.n, spec.f)
        .batch_size(10)
        .steps(20)
        .eval_every(7);
    let config = (spec.config)(builder).build().unwrap();
    let sources: Vec<Box<dyn BatchSource>> = (0..spec.n)
        .map(|_| {
            Box::new(DatasetSource::new(
                train.clone(),
                SamplingMode::WithReplacement,
            )) as Box<dyn BatchSource>
        })
        .collect();
    let mut trainer = Trainer::new(config, model, sources, Some(test))
        .gar((spec.gar)())
        .mechanism((spec.mechanism)());
    if let Some(attack) = spec.attack {
        trainer = trainer.attack(attack());
    }
    trainer
}

/// Digests recorded on the pre-refactor (clone-per-round) engine; the
/// last four were recorded when their components were introduced (the
/// zero-copy engine was already current).
const GOLDEN: [(&str, u64); 12] = [
    ("average/gaussian/clean", 0xbe5edf6262fca64f),
    ("krum/none/alie", 0x85d8237bae796a9f),
    ("multi-krum/gaussian/alie", 0x9a197544de465cc2),
    ("median/gaussian/foe", 0xc3153c303acd0ac0),
    ("mda/gaussian/alie/worker-momentum", 0x6c2b0a7fc8612cfa),
    ("bulyan/laplace/foe", 0xa25cf2d6e242ade7),
    ("average/none/drops+ema", 0xd954052ece8dab6e),
    ("trimmed-mean/gaussian/batch-growth", 0x09e0c686041d3706),
    ("centered-clipping/gaussian/ipm", 0xca3b4b6438b3b161),
    ("centered-clipping/laplace/rescaling", 0x3da350bc8e95af2d),
    ("bucketing-median/none/rescaling", 0x91c2bc70cc404473),
    ("bucketing-krum/gaussian/alie", 0xa96d5493fe533959),
];

#[test]
fn refactored_engine_reproduces_pre_refactor_histories() {
    let specs = cells();
    assert_eq!(specs.len(), GOLDEN.len());
    for (spec, &(name, expected)) in specs.iter().zip(&GOLDEN) {
        assert_eq!(spec.name, name);
        let seq = build_trainer(spec).run(3).unwrap();
        assert_eq!(
            digest(&seq),
            expected,
            "{name}: sequential engine diverged from the pre-refactor history"
        );
        let thr = ThreadedTrainer::from(build_trainer(spec)).run(3).unwrap();
        assert_eq!(
            digest(&thr),
            expected,
            "{name}: threaded engine diverged from the pre-refactor history"
        );
    }
}
