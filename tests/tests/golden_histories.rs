//! Golden-history pins for the round engines.
//!
//! The digests below were re-recorded (once, deliberately) when the
//! explicit vectorized kernel layer landed — see the note on `GOLDEN`.
//! Every future refactor must reproduce them byte-for-byte, on both the
//! sequential and the threaded engine — the "bit-identical histories"
//! acceptance gate.

use dpbyz_attacks::{Attack, FallOfEmpires, InnerProductManipulation, LittleIsEnough, Rescaling};
use dpbyz_data::sampler::{BatchSource, DatasetSource, SamplingMode};
use dpbyz_data::synthetic;
use dpbyz_dp::{GaussianMechanism, LaplaceMechanism, Mechanism, NoNoise};
use dpbyz_gars::{
    Bucketing, Bulyan, CenteredClipping, CoordinateMedian, Gar, Krum, Mda, MultiKrum,
};
use dpbyz_models::{LogisticRegression, LossKind};
use dpbyz_server::{MomentumMode, ThreadedTrainer, Trainer, TrainingConfig, TrainingConfigBuilder};
use dpbyz_tensor::Prng;
use std::sync::Arc;

struct CellSpec {
    name: &'static str,
    n: usize,
    f: usize,
    config: fn(TrainingConfigBuilder) -> TrainingConfigBuilder,
    gar: fn() -> Arc<dyn Gar>,
    mechanism: fn() -> Arc<dyn Mechanism>,
    attack: Option<fn() -> Arc<dyn Attack>>,
}

fn cells() -> Vec<CellSpec> {
    vec![
        CellSpec {
            name: "average/gaussian/clean",
            n: 5,
            f: 0,
            config: |b| b,
            gar: || Arc::new(dpbyz_gars::Average::new()),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.05).unwrap()),
            attack: None,
        },
        CellSpec {
            name: "krum/none/alie",
            n: 9,
            f: 2,
            config: |b| b,
            gar: || Arc::new(Krum::new()),
            mechanism: || Arc::new(NoNoise),
            attack: Some(|| Arc::new(LittleIsEnough::default())),
        },
        CellSpec {
            name: "multi-krum/gaussian/alie",
            n: 9,
            f: 2,
            config: |b| b,
            gar: || Arc::new(MultiKrum::new()),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.02).unwrap()),
            attack: Some(|| Arc::new(LittleIsEnough::default())),
        },
        CellSpec {
            name: "median/gaussian/foe",
            n: 7,
            f: 3,
            config: |b| b,
            gar: || Arc::new(CoordinateMedian::new()),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.03).unwrap()),
            attack: Some(|| Arc::new(FallOfEmpires::default())),
        },
        CellSpec {
            name: "mda/gaussian/alie/worker-momentum",
            n: 11,
            f: 5,
            config: |b| b.momentum_mode(MomentumMode::Worker),
            gar: || Arc::new(Mda::new()),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.01).unwrap()),
            attack: Some(|| Arc::new(LittleIsEnough::default())),
        },
        CellSpec {
            name: "bulyan/laplace/foe",
            n: 11,
            f: 2,
            config: |b| b,
            gar: || Arc::new(Bulyan::new()),
            mechanism: || Arc::new(LaplaceMechanism::calibrate(5.0, 0.01).unwrap()),
            attack: Some(|| Arc::new(FallOfEmpires::default())),
        },
        CellSpec {
            name: "average/none/drops+ema",
            n: 5,
            f: 0,
            config: |b| b.drop_rate(0.3).gradient_ema(0.9),
            gar: || Arc::new(dpbyz_gars::Average::new()),
            mechanism: || Arc::new(NoNoise),
            attack: None,
        },
        CellSpec {
            name: "trimmed-mean/gaussian/batch-growth",
            n: 7,
            f: 2,
            config: |b| b.batch_growth(1.1, 40),
            gar: || Arc::new(dpbyz_gars::TrimmedMean::new()),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.02).unwrap()),
            attack: Some(|| Arc::new(FallOfEmpires::default())),
        },
        // The four components added with the scenario-pack subsystem:
        // digests recorded at introduction, pinning their behavior for
        // every future refactor.
        CellSpec {
            name: "centered-clipping/gaussian/ipm",
            n: 11,
            f: 5,
            config: |b| b,
            gar: || Arc::new(CenteredClipping::new(0.05, 3)),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.02).unwrap()),
            attack: Some(|| Arc::new(InnerProductManipulation::default())),
        },
        CellSpec {
            name: "centered-clipping/laplace/rescaling",
            n: 7,
            f: 3,
            config: |b| b,
            gar: || Arc::new(CenteredClipping::new(0.1, 4)),
            mechanism: || Arc::new(LaplaceMechanism::calibrate(5.0, 0.01).unwrap()),
            attack: Some(|| Arc::new(Rescaling::new(-0.1))),
        },
        CellSpec {
            name: "bucketing-median/none/rescaling",
            n: 11,
            f: 2,
            config: |b| b,
            gar: || Arc::new(Bucketing::new(Arc::new(CoordinateMedian::new()), 2)),
            mechanism: || Arc::new(NoNoise),
            attack: Some(|| Arc::new(Rescaling::new(-0.05))),
        },
        CellSpec {
            name: "bucketing-krum/gaussian/alie",
            n: 11,
            f: 1,
            config: |b| b,
            gar: || Arc::new(Bucketing::new(Arc::new(Krum::new()), 2)),
            mechanism: || Arc::new(GaussianMechanism::with_sigma(0.01).unwrap()),
            attack: Some(|| Arc::new(LittleIsEnough::default())),
        },
    ]
}

fn build_trainer(spec: &CellSpec) -> Trainer {
    let mut rng = Prng::seed_from_u64(41);
    let ds = Arc::new(synthetic::phishing_like(&mut rng, 400));
    let (train, test) = ds.split(0.8, &mut rng).unwrap();
    let (train, test) = (Arc::new(train), Arc::new(test));
    let model = Arc::new(LogisticRegression::new(68, LossKind::SigmoidMse));
    let builder = TrainingConfig::builder()
        .workers(spec.n, spec.f)
        .batch_size(10)
        .steps(20)
        .eval_every(7);
    let config = (spec.config)(builder).build().unwrap();
    let sources: Vec<Box<dyn BatchSource>> = (0..spec.n)
        .map(|_| {
            Box::new(DatasetSource::new(
                train.clone(),
                SamplingMode::WithReplacement,
            )) as Box<dyn BatchSource>
        })
        .collect();
    let mut trainer = Trainer::new(config, model, sources, Some(test))
        .gar((spec.gar)())
        .mechanism((spec.mechanism)());
    if let Some(attack) = spec.attack {
        trainer = trainer.attack(attack());
    }
    trainer
}

/// Digests re-recorded **once** when the explicit 4-lane kernel layer
/// landed (`dpbyz_tensor::kernels`): the blocked reductions (dot, norms,
/// pairwise distances, column sums) use a fixed machine-independent
/// summation order that differs from the historical sequential fold in
/// the last bits, so the pre-kernel digests could not be preserved. The
/// kernel-equivalence proptest suite (crates/tensor/src/kernels.rs) pins
/// every vectorized kernel to ≤ 1e-12 relative error of the retained
/// scalar reference, and the elementwise kernels bit-identical, which is
/// the evidence backing this one-time re-record. Both engines must
/// reproduce these byte-for-byte on every machine; pool-size determinism
/// is pinned separately in parallel_sweep.rs.
const GOLDEN: [(&str, u64); 12] = [
    ("average/gaussian/clean", 0x054dacbf884d4bfe),
    ("krum/none/alie", 0x6f1174d851f125a8),
    ("multi-krum/gaussian/alie", 0x0a72d85344ff7cbf),
    ("median/gaussian/foe", 0xa5ed3efd07cfc712),
    ("mda/gaussian/alie/worker-momentum", 0xe0039ac4e84aac17),
    ("bulyan/laplace/foe", 0x22e0234422f8d82e),
    ("average/none/drops+ema", 0x29907f31071e3bae),
    ("trimmed-mean/gaussian/batch-growth", 0xd0a36370a405b6bf),
    ("centered-clipping/gaussian/ipm", 0xfc49d81779412d69),
    ("centered-clipping/laplace/rescaling", 0xc53bdddc0557db34),
    ("bucketing-median/none/rescaling", 0x1d394b1b47e2c5f3),
    ("bucketing-krum/gaussian/alie", 0x8f2beb897f10f7c1),
];

#[test]
fn refactored_engine_reproduces_pre_refactor_histories() {
    let specs = cells();
    assert_eq!(specs.len(), GOLDEN.len());
    for (spec, &(name, expected)) in specs.iter().zip(&GOLDEN) {
        assert_eq!(spec.name, name);
        let seq = build_trainer(spec).run(3).unwrap();
        assert_eq!(
            seq.digest(),
            expected,
            "{name}: sequential engine diverged from the recorded history"
        );
        let thr = ThreadedTrainer::from(build_trainer(spec)).run(3).unwrap();
        assert_eq!(
            thr.digest(),
            expected,
            "{name}: threaded engine diverged from the recorded history"
        );
    }
}
