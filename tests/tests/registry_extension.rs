//! End-to-end coverage of the component registry: a user-defined GAR —
//! implemented here, outside every workspace crate — registered by id and
//! driven through `ExperimentBuilder` to a `RunHistory`, plus the
//! registry's error contract and the serde compatibility of experiment
//! specs through the `*Kind` wrappers.

use dpbyz::gars::{Gar, GarError};
use dpbyz::prelude::*;
use dpbyz::tensor::Vector;
use dpbyz::RegistryError;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A third-party aggregation rule: coordinate-wise midrange of the two
/// most extreme submissions, then averaged with the mean — deliberately
/// not any built-in. Deterministic and translation-equivariant, which is
/// all the engines require.
struct MidrangeMix {
    /// Weight on the midrange term.
    blend: f64,
}

impl Gar for MidrangeMix {
    fn name(&self) -> &'static str {
        "midrange-mix"
    }

    fn aggregate(&self, gradients: &[Vector], _f: usize) -> Result<Vector, GarError> {
        let first = gradients.first().ok_or(GarError::Empty)?;
        let dim = first.dim();
        let mut out = Vec::with_capacity(dim);
        let mean = Vector::mean(gradients).map_err(|_| GarError::Empty)?;
        for j in 0..dim {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for g in gradients {
                lo = lo.min(g[j]);
                hi = hi.max(g[j]);
            }
            let midrange = 0.5 * (lo + hi);
            out.push(self.blend * midrange + (1.0 - self.blend) * mean[j]);
        }
        Ok(Vector::from(out))
    }

    fn kappa(&self, _n: usize, _f: usize) -> Option<f64> {
        None
    }

    fn max_byzantine(&self, _n: usize) -> usize {
        0
    }
}

#[test]
fn custom_gar_registers_and_runs_through_builder() {
    register_gar("midrange-mix", |spec| {
        Ok(Arc::new(MidrangeMix {
            blend: spec.f64_or("blend", 0.5),
        }))
    })
    .expect("fresh id registers");

    // The custom id is now a first-class experiment component.
    let mut exp = Experiment::builder()
        .steps(12)
        .dataset_size(400)
        .gar(ComponentSpec::new("midrange-mix").with("blend", 0.25))
        .build()
        .expect("custom gar resolves");

    let sequential = exp.run(7).expect("sequential run");
    assert_eq!(sequential.train_loss.len(), 12);
    // Training with the custom rule actually optimizes.
    assert!(
        sequential.tail_loss(3) < sequential.train_loss[0],
        "custom GAR failed to train: {} -> {}",
        sequential.train_loss[0],
        sequential.tail_loss(3)
    );

    // Acceptance criterion: Trainer and ThreadedTrainer stay bit-identical
    // for the same seed with the custom component in the loop.
    exp.backend = "threaded".into();
    let threaded = exp.run(7).expect("threaded run");
    assert_eq!(sequential, threaded);

    // Parameters reach the factory: a different blend changes the run.
    exp.backend = "sequential".into();
    exp.gar = ComponentSpec::new("midrange-mix").with("blend", 0.75);
    let other = exp.run(7).expect("other blend runs");
    assert_ne!(sequential, other);
}

#[test]
fn duplicate_id_is_rejected() {
    register_gar("dup-probe", |_| Ok(Arc::new(MidrangeMix { blend: 0.5 })))
        .expect("first registration succeeds");
    let err = register_gar("dup-probe", |_| Ok(Arc::new(MidrangeMix { blend: 0.5 })))
        .expect_err("second registration fails");
    assert_eq!(err, RegistryError::DuplicateId("dup-probe".into()));
    // Built-ins are protected the same way.
    let err = register_gar("krum", |_| Ok(Arc::new(MidrangeMix { blend: 0.5 })))
        .expect_err("built-in ids are taken");
    assert!(matches!(err, RegistryError::DuplicateId(_)));
}

#[test]
fn unknown_id_error_lists_available_ids() {
    let err = Experiment::builder()
        .gar("median-of-meanz")
        .build()
        .expect_err("unknown id fails at build");
    let message = err.to_string();
    assert!(
        message.contains("median-of-meanz"),
        "message names the bad id: {message}"
    );
    // The error enumerates what *is* registered, so the fix is in the
    // message itself.
    for built_in in ["average", "krum", "mda", "median"] {
        assert!(
            message.contains(built_in),
            "message lists `{built_in}`: {message}"
        );
    }

    // Same contract for attacks.
    let err = Experiment::builder()
        .attack("alie2")
        .build()
        .expect_err("unknown attack fails");
    let message = err.to_string();
    assert!(
        message.contains("alie2") && message.contains("sign-flip"),
        "{message}"
    );
}

/// An experiment spec as a user would persist it: `*Kind` wrappers for the
/// built-ins, serialized to JSON and back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PersistedSpec {
    gar: GarKind,
    attack: Option<AttackKind>,
    mechanism: MechanismKind,
    epsilon: f64,
    batch_size: u64,
}

#[test]
fn kind_wrappers_round_trip_through_json_and_resolve() {
    let spec = PersistedSpec {
        gar: GarKind::TrimmedMean,
        attack: Some(AttackKind::Alie { nu: 1.5 }),
        mechanism: MechanismKind::Gaussian,
        epsilon: 0.2,
        batch_size: 50,
    };
    let json = serde_json::to_string(&spec).unwrap();
    // Externally tagged enum shapes, exactly as real serde_json writes them.
    assert!(json.contains("\"TrimmedMean\""), "{json}");
    assert!(json.contains("\"Alie\":{\"nu\":1.5}"), "{json}");
    let back: PersistedSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, spec);

    // The deserialized wrappers still resolve through the registry into a
    // runnable experiment.
    let exp = Experiment::builder()
        .steps(5)
        .dataset_size(300)
        .batch_size(back.batch_size as usize)
        .gar(back.gar)
        .attack(back.attack.unwrap())
        .epsilon(back.epsilon)
        .build()
        .unwrap();
    assert_eq!(exp.gar, GarKind::TrimmedMean);
    assert_eq!(exp.run(1).unwrap().train_loss.len(), 5);
}

#[test]
fn component_specs_round_trip_through_json() {
    let spec = ComponentSpec::new("alie")
        .with("nu", 2.5)
        .with("rounds", 7u64);
    let json = serde_json::to_string(&spec).unwrap();
    let back: ComponentSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, spec);
    assert_eq!(back.f64("nu"), Some(2.5));
    assert_eq!(back.u64("rounds"), Some(7));

    // Kind-derived specs compare equal after the trip too.
    let kind_spec = AttackKind::PAPER_FOE.spec();
    let back: ComponentSpec =
        serde_json::from_str(&serde_json::to_string(&kind_spec).unwrap()).unwrap();
    assert_eq!(back, AttackKind::PAPER_FOE);
}

#[test]
fn custom_attack_and_mechanism_register_end_to_end() {
    // A "stale replay" attack: resend the first honest gradient scaled.
    struct Replay;
    impl dpbyz::attacks::Attack for Replay {
        fn name(&self) -> &'static str {
            "stale-replay"
        }
        fn forge(
            &self,
            ctx: &dpbyz::attacks::AttackContext<'_>,
            _rng: &mut dpbyz::tensor::Prng,
        ) -> Vector {
            ctx.observed()[0].scaled(0.5)
        }
    }
    register_attack("stale-replay", |_| Ok(Arc::new(Replay))).expect("registers");

    // A fixed-sigma mechanism that ignores budget calibration.
    struct FixedSigma(f64);
    impl dpbyz::dp::Mechanism for FixedSigma {
        fn perturb(&self, gradient: &Vector, rng: &mut dpbyz::tensor::Prng) -> Vector {
            gradient + &rng.normal_vector(gradient.dim(), self.0)
        }
        fn per_coordinate_std(&self) -> f64 {
            self.0
        }
        fn total_noise_variance(&self, dim: usize) -> f64 {
            dim as f64 * self.0 * self.0
        }
        fn name(&self) -> &'static str {
            "fixed-sigma"
        }
    }
    register_mechanism("fixed-sigma", |spec| {
        Ok(Arc::new(FixedSigma(spec.f64_or("sigma", 0.01))))
    })
    .expect("registers");

    let exp = Experiment::builder()
        .steps(8)
        .dataset_size(300)
        .gar("median")
        .attack("stale-replay")
        .byzantine(2)
        .mechanism(ComponentSpec::new("fixed-sigma").with("sigma", 0.005))
        .build()
        .unwrap();
    let h = exp.run(3).unwrap();
    assert_eq!(h.train_loss.len(), 8);
    // The custom mechanism injects noise: submitted VN exceeds clean VN.
    assert!(h.mean_vn_submitted() > h.mean_vn_clean());
}

#[test]
fn third_party_budget_calibrated_mechanism_degrades_without_budget() {
    // A third-party mechanism that calibrates its sigma from the injected
    // privacy budget, registered with the `requires_budget` capability —
    // it must get the same no-budget degradation to the identity
    // mechanism as the built-in `gaussian`/`laplace`.
    struct BudgetNoise(f64);
    impl dpbyz::dp::Mechanism for BudgetNoise {
        fn perturb(&self, gradient: &Vector, rng: &mut dpbyz::tensor::Prng) -> Vector {
            gradient + &rng.normal_vector(gradient.dim(), self.0)
        }
        fn per_coordinate_std(&self) -> f64 {
            self.0
        }
        fn total_noise_variance(&self, dim: usize) -> f64 {
            dim as f64 * self.0 * self.0
        }
        fn name(&self) -> &'static str {
            "budget-noise"
        }
    }
    register_mechanism_with(
        "budget-noise",
        MechanismCapabilities::budget_calibrated(),
        |spec| {
            let epsilon = spec.f64("epsilon").ok_or_else(|| RegistryError::Build {
                id: "budget-noise".into(),
                message: "missing required parameter `epsilon`".into(),
            })?;
            Ok(Arc::new(BudgetNoise(0.01 / epsilon)))
        },
    )
    .expect("registers");

    let base = || {
        Experiment::builder()
            .steps(6)
            .dataset_size(300)
            .gar("average")
    };
    // No budget: the spec degrades to the identity mechanism instead of
    // failing calibration, exactly like the built-in no-DP baselines.
    let no_budget = base().mechanism("budget-noise").build().unwrap();
    let baseline = base().mechanism("none").build().unwrap();
    assert_eq!(no_budget.run(2).unwrap(), baseline.run(2).unwrap());

    // With a budget the custom mechanism runs (and injects noise).
    let with_budget = base()
        .mechanism("budget-noise")
        .epsilon(0.2)
        .build()
        .unwrap();
    let h = with_budget.run(2).unwrap();
    assert_ne!(h, baseline.run(2).unwrap());
    assert!(h.mean_vn_submitted() > h.mean_vn_clean());

    // A capability-free custom mechanism is NOT degraded: it resolves as
    // specified even without a budget.
    struct AlwaysNoise;
    impl dpbyz::dp::Mechanism for AlwaysNoise {
        fn perturb(&self, gradient: &Vector, rng: &mut dpbyz::tensor::Prng) -> Vector {
            gradient + &rng.normal_vector(gradient.dim(), 0.05)
        }
        fn per_coordinate_std(&self) -> f64 {
            0.05
        }
        fn total_noise_variance(&self, dim: usize) -> f64 {
            dim as f64 * 0.05 * 0.05
        }
        fn name(&self) -> &'static str {
            "always-noise"
        }
    }
    register_mechanism("always-noise", |_| Ok(Arc::new(AlwaysNoise))).expect("registers");
    let plain = base().mechanism("always-noise").build().unwrap();
    let h = plain.run(2).unwrap();
    assert!(h.mean_vn_submitted() > h.mean_vn_clean());
}
