//! End-to-end reproduction of the paper's headline phenomena at reduced
//! scale (Figs. 2–4's qualitative shape).

use dpbyz_core::pipeline::{Experiment, FigureConfig};
use dpbyz_core::AttackKind;

fn cell(batch: usize, eps: Option<f64>, attack: Option<AttackKind>) -> Experiment {
    Experiment::paper_figure(FigureConfig {
        batch_size: batch,
        epsilon: eps,
        attack,
        steps: 200,
        dataset_size: 2500,
        ..FigureConfig::default()
    })
    .expect("valid configuration")
}

fn tail(batch: usize, eps: Option<f64>, attack: Option<AttackKind>, seed: u64) -> f64 {
    cell(batch, eps, attack)
        .run(seed)
        .expect("runs")
        .tail_loss(10)
}

#[test]
fn clean_training_converges() {
    let h = cell(50, None, None).run(1).expect("runs");
    assert!(h.tail_loss(10) < 0.12, "loss {}", h.tail_loss(10));
    assert!(h.final_accuracy().unwrap() > 0.8);
}

#[test]
fn mda_defends_against_alie_without_dp() {
    // Fig. 2 left panel: attacked no-DP training still reaches a loss in
    // the neighbourhood of the clean run.
    let clean = tail(50, None, None, 1);
    let attacked = tail(50, None, Some(AttackKind::PAPER_ALIE), 1);
    assert!(
        attacked < clean + 0.15,
        "MDA failed without DP: clean {clean}, attacked {attacked}"
    );
}

#[test]
fn dp_alone_is_fine_at_b50() {
    // Fig. 2 right panel, unattacked curve.
    let clean = tail(50, None, None, 1);
    let dp = tail(50, Some(0.2), None, 1);
    assert!(dp < clean + 0.1, "DP alone broke training: {clean} vs {dp}");
}

#[test]
fn dp_plus_attack_collapses_at_b50() {
    // The headline: DP + ALIE at b = 50 is much worse than either alone.
    let dp = tail(50, Some(0.2), None, 1);
    let attacked = tail(50, None, Some(AttackKind::PAPER_ALIE), 1);
    let both = tail(50, Some(0.2), Some(AttackKind::PAPER_ALIE), 1);
    assert!(
        both > dp + 0.15 && both > attacked + 0.15,
        "no collapse: dp {dp}, attacked {attacked}, both {both}"
    );
    // Accuracy collapses to near-chance.
    let h = cell(50, Some(0.2), Some(AttackKind::PAPER_ALIE))
        .run(1)
        .expect("runs");
    assert!(
        h.final_accuracy().unwrap() < 0.7,
        "accuracy {}",
        h.final_accuracy().unwrap()
    );
}

#[test]
fn large_batch_rescues_the_combination() {
    // Fig. 4: at b = 500 DP + attack converges again (antagonism, not
    // impossibility).
    let both_b50 = tail(50, Some(0.2), Some(AttackKind::PAPER_ALIE), 1);
    let both_b500 = tail(500, Some(0.2), Some(AttackKind::PAPER_ALIE), 1);
    assert!(
        both_b500 < both_b50 - 0.15,
        "no rescue: b=50 {both_b50}, b=500 {both_b500}"
    );
    assert!(both_b500 < 0.15, "b=500 did not converge: {both_b500}");
}

#[test]
fn tiny_batch_dp_fails_even_unattacked() {
    // Fig. 3: at b = 10 the DP noise alone (s ∝ 1/b) prevents convergence
    // to the clean loss.
    // Average over seeds: the b = 10 DP gap is real but noisy at this
    // reduced scale (the paper's Fig. 3 runs 1000 steps on the full set).
    let clean: f64 = (1..=3).map(|s| tail(10, None, None, s)).sum::<f64>() / 3.0;
    let dp: f64 = (1..=3).map(|s| tail(10, Some(0.2), None, s)).sum::<f64>() / 3.0;
    assert!(
        dp > clean + 0.04,
        "DP at b=10 unexpectedly fine: clean {clean}, dp {dp}"
    );
}

#[test]
fn foe_attack_shows_same_antagonism() {
    let attacked = tail(50, None, Some(AttackKind::PAPER_FOE), 1);
    let both = tail(50, Some(0.2), Some(AttackKind::PAPER_FOE), 1);
    assert!(
        both > attacked + 0.02,
        "FoE: no degradation with DP: {attacked} vs {both}"
    );
}
