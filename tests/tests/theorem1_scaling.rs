//! Theorem 1's error-rate scaling, measured end-to-end on the
//! mean-estimation workload.

use dpbyz_core::pipeline::Experiment;
use dpbyz_core::theory::convergence;
use dpbyz_dp::PrivacyBudget;

fn suboptimality(dim: usize, budget: Option<PrivacyBudget>, steps: u32, b: usize) -> f64 {
    let exp = Experiment::theorem1(dim, 1.0, budget, steps, b, 1).expect("valid spec");
    let dist = exp.mean_estimation_instance().expect("mean estimation");
    let seeds = [1u64, 2, 3];
    seeds
        .iter()
        .map(|&s| {
            let h = exp.run(s).expect("runs");
            0.5 * h.final_params.l2_distance_squared(dist.true_mean())
        })
        .sum::<f64>()
        / seeds.len() as f64
}

fn paper_budget() -> PrivacyBudget {
    PrivacyBudget::new(0.2, 1e-6).unwrap()
}

#[test]
fn dp_error_grows_linearly_with_dimension() {
    let e16 = suboptimality(16, Some(paper_budget()), 300, 10);
    let e64 = suboptimality(64, Some(paper_budget()), 300, 10);
    let ratio = e64 / e16;
    assert!(
        ratio > 2.5 && ratio < 6.5,
        "d×4 gave error×{ratio:.2}, expected ≈4"
    );
}

#[test]
fn no_dp_error_is_dimension_free() {
    let e16 = suboptimality(16, None, 300, 10);
    let e256 = suboptimality(256, None, 300, 10);
    // O(1/T) independent of d: within a small constant factor.
    let ratio = e256 / e16;
    assert!(ratio < 3.0, "no-DP error scaled with d: ×{ratio:.2}");
}

#[test]
fn dp_error_shrinks_quadratically_with_batch() {
    let b5 = suboptimality(32, Some(paper_budget()), 300, 5);
    let b20 = suboptimality(32, Some(paper_budget()), 300, 20);
    let ratio = b5 / b20;
    // b×4 ⇒ error ÷16 (noise-dominated regime); generous window.
    assert!(
        ratio > 8.0 && ratio < 32.0,
        "b×4 gave error÷{ratio:.1}, expected ≈16"
    );
}

#[test]
fn dp_error_shrinks_quadratically_with_epsilon() {
    let tight = PrivacyBudget::new(0.1, 1e-6).unwrap();
    let loose = PrivacyBudget::new(0.4, 1e-6).unwrap();
    let e_tight = suboptimality(32, Some(tight), 300, 10);
    let e_loose = suboptimality(32, Some(loose), 300, 10);
    let ratio = e_tight / e_loose;
    assert!(
        ratio > 8.0 && ratio < 32.0,
        "ε×4 gave error÷{ratio:.1}, expected ≈16"
    );
}

#[test]
fn measured_error_between_theorem_bounds() {
    // Up to the Θ constants: within [lower/3, 3·upper].
    let budget = paper_budget();
    for &dim in &[16usize, 64] {
        let measured = suboptimality(dim, Some(budget), 300, 10);
        let lo = convergence::lower_bound(1.0, 2.0, 300, 10, dim, Some(budget));
        let hi = convergence::upper_bound(
            &convergence::ProblemConstants::mean_estimation(1.0, 2.0),
            300,
            10,
            dim,
            Some(budget),
        );
        assert!(
            measured > lo / 3.0 && measured < hi * 3.0,
            "d={dim}: measured {measured} outside [{}, {}]",
            lo / 3.0,
            hi * 3.0
        );
    }
}

#[test]
fn error_halves_when_horizon_doubles() {
    let t200 = suboptimality(32, Some(paper_budget()), 200, 10);
    let t800 = suboptimality(32, Some(paper_budget()), 800, 10);
    let ratio = t200 / t800;
    assert!(
        ratio > 2.0 && ratio < 8.0,
        "T×4 gave error÷{ratio:.1}, expected ≈4"
    );
}
