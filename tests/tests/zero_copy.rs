//! Equivalence suite for the zero-copy hot path: every `_into`/in-place
//! kernel must match its allocating counterpart **bit for bit**, with the
//! scratch state deliberately reused (dirty) across calls — exactly how
//! the round engine drives it.

use dpbyz::attacks::{
    Attack, AttackContext, FallOfEmpires, InnerProductManipulation, LargeNorm, LittleIsEnough,
    Mimic, RandomNoise, Rescaling, SignFlip, Zero,
};
use dpbyz::dp::{GaussianMechanism, LaplaceMechanism, Mechanism, NoNoise};
use dpbyz::gars::{all_gars, Gar, GarScratch};
use dpbyz::tensor::{Prng, Vector};
use proptest::prelude::*;

fn bits_equal(a: &Vector, b: &Vector) -> bool {
    a.dim() == b.dim()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn random_gradients(seed: u64, n: usize, dim: usize) -> Vec<Vector> {
    let mut rng = Prng::seed_from_u64(seed);
    (0..n).map(|_| rng.normal_vector(dim, 1.0)).collect()
}

/// The paper-topology `f` each rule is exercised at: its own declared
/// tolerance at n = 11, capped at the protocol's f = 5 — computed from
/// the rule itself so newly added GARs are automatically tested at a
/// valid Byzantine count.
fn tolerated_f(gar: &dyn Gar) -> usize {
    gar.max_byzantine(11).min(5)
}

#[test]
fn aggregate_into_matches_aggregate_for_every_gar_with_dirty_scratch() {
    // One scratch and one output buffer REUSED across every rule and every
    // round — the server's usage pattern. Any state leaking between calls
    // would break the bitwise match.
    let mut scratch = GarScratch::new();
    let mut out = Vector::from(vec![99.0; 3]);
    for round in 0..8u64 {
        let grads = random_gradients(round, 11, 17);
        for gar in all_gars() {
            let f = tolerated_f(gar.as_ref());
            let allocating = gar.aggregate(&grads, f).unwrap();
            gar.aggregate_into(&grads, f, &mut scratch, &mut out)
                .unwrap();
            assert!(
                bits_equal(&allocating, &out),
                "{} diverged on round {round}",
                gar.name()
            );
        }
    }
}

#[test]
fn parallel_aggregation_is_bit_identical_to_serial_for_every_gar() {
    // The intra-round parallel path must be bit-identical to serial at any
    // pool size. One scratch per pool size, REUSED dirty across every rule
    // and round, with the serial reference computed on a separate dirty
    // scratch — the exact server usage pattern plus the parallel knob.
    let mut serial = GarScratch::new();
    let mut out_serial = Vector::from(vec![-3.0; 2]);
    for &threads in &[2usize, 8] {
        let mut parallel = GarScratch::new();
        parallel.set_parallelism(threads);
        let mut out_parallel = Vector::from(vec![42.0; 7]);
        for round in 0..4u64 {
            let grads = random_gradients(round, 11, 33);
            for gar in all_gars() {
                let f = tolerated_f(gar.as_ref());
                gar.aggregate_into(&grads, f, &mut serial, &mut out_serial)
                    .unwrap();
                gar.aggregate_into(&grads, f, &mut parallel, &mut out_parallel)
                    .unwrap();
                assert!(
                    bits_equal(&out_serial, &out_parallel),
                    "{} diverged at {threads} threads on round {round}",
                    gar.name()
                );
            }
        }
    }
}

#[test]
fn switching_pool_size_on_one_scratch_preserves_results() {
    // The server owns ONE scratch; resizing its pool mid-life (1 → 8 → 2
    // → 1) must never change an aggregation result. Also exercises thread
    // reclamation on shrink.
    let grads = random_gradients(11, 11, 65);
    let mut scratch = GarScratch::new();
    let mut out = Vector::default();
    let mut reference: Vec<Vector> = Vec::new();
    for gar in all_gars() {
        let f = tolerated_f(gar.as_ref());
        gar.aggregate_into(&grads, f, &mut scratch, &mut out)
            .unwrap();
        reference.push(out.clone());
    }
    for &threads in &[8usize, 2, 1] {
        scratch.set_parallelism(threads);
        for (gar, expected) in all_gars().iter().zip(&reference) {
            let f = tolerated_f(gar.as_ref());
            gar.aggregate_into(&grads, f, &mut scratch, &mut out)
                .unwrap();
            assert!(
                bits_equal(expected, &out),
                "{} diverged after resizing the pool to {threads}",
                gar.name()
            );
        }
    }
}

#[test]
fn aggregate_into_matches_on_adversarial_inputs() {
    // Duplicated vectors, exact ties, extreme outliers: the tie-breaking
    // paths must agree too.
    let mut base = random_gradients(7, 5, 4);
    base.push(base[0].clone()); // exact duplicate
    base.push(base[1].clone());
    base.push(Vector::filled(4, 1e9)); // far outlier
    base.push(Vector::filled(4, -1e9));
    base.push(Vector::zeros(4));
    base.push(Vector::zeros(4)); // duplicate zero
    let mut scratch = GarScratch::new();
    let mut out = Vector::default();
    for gar in all_gars() {
        let f = tolerated_f(gar.as_ref());
        let allocating = gar.aggregate(&base, f).unwrap();
        gar.aggregate_into(&base, f, &mut scratch, &mut out)
            .unwrap();
        assert!(bits_equal(&allocating, &out), "{} diverged", gar.name());
    }
}

#[test]
fn aggregate_into_error_contract_matches_aggregate() {
    let mut scratch = GarScratch::new();
    let mut out = Vector::default();
    for gar in all_gars() {
        // Empty input.
        assert_eq!(
            gar.aggregate(&[], 0).unwrap_err(),
            gar.aggregate_into(&[], 0, &mut scratch, &mut out)
                .unwrap_err(),
            "{}: empty-input errors differ",
            gar.name()
        );
        // Ragged input.
        let ragged = vec![Vector::zeros(2), Vector::zeros(3)];
        assert_eq!(
            gar.aggregate(&ragged, 0).unwrap_err(),
            gar.aggregate_into(&ragged, 0, &mut scratch, &mut out)
                .unwrap_err(),
            "{}: ragged-input errors differ",
            gar.name()
        );
        // Intolerable f.
        let grads = vec![Vector::zeros(1); 5];
        let too_many = 3;
        assert_eq!(
            gar.aggregate(&grads, too_many).unwrap_err(),
            gar.aggregate_into(&grads, too_many, &mut scratch, &mut out)
                .unwrap_err(),
            "{}: tolerance errors differ",
            gar.name()
        );
    }
}

#[test]
fn default_aggregate_into_delegates_to_aggregate() {
    // An out-of-tree GAR that only implements `aggregate` must get the
    // default `aggregate_into` for free, bit-identically.
    struct FirstVector;
    impl Gar for FirstVector {
        fn name(&self) -> &'static str {
            "first-vector"
        }
        fn aggregate(
            &self,
            gradients: &[Vector],
            _f: usize,
        ) -> Result<Vector, dpbyz::gars::GarError> {
            gradients
                .first()
                .cloned()
                .ok_or(dpbyz::gars::GarError::Empty)
        }
        fn kappa(&self, _n: usize, _f: usize) -> Option<f64> {
            None
        }
        fn max_byzantine(&self, _n: usize) -> usize {
            0
        }
    }
    let grads = random_gradients(3, 4, 6);
    let mut scratch = GarScratch::new();
    let mut out = Vector::from(vec![5.0]); // dirty, wrong dim
    FirstVector
        .aggregate_into(&grads, 0, &mut scratch, &mut out)
        .unwrap();
    assert!(bits_equal(&grads[0], &out));
    assert!(matches!(
        FirstVector.aggregate_into(&[], 0, &mut scratch, &mut out),
        Err(dpbyz::gars::GarError::Empty)
    ));
}

proptest! {
    #[test]
    fn prop_aggregate_into_equivalence(seed in 0u64..500, dim in 1usize..24) {
        let grads = random_gradients(seed, 11, dim);
        let mut scratch = GarScratch::new();
        let mut out = Vector::default();
        for gar in all_gars() {
            let f = tolerated_f(gar.as_ref());
            let allocating = gar.aggregate(&grads, f).unwrap();
            gar.aggregate_into(&grads, f, &mut scratch, &mut out).unwrap();
            prop_assert!(
                bits_equal(&allocating, &out),
                "{} diverged at seed {seed}, dim {dim}", gar.name()
            );
        }
    }

    #[test]
    fn prop_perturb_in_place_equivalence(seed in 0u64..500, dim in 1usize..48) {
        let mechanisms: Vec<Box<dyn Mechanism>> = vec![
            Box::new(NoNoise),
            Box::new(GaussianMechanism::with_sigma(0.3).unwrap()),
            Box::new(LaplaceMechanism::calibrate(0.7, 1.0).unwrap()),
        ];
        let g = Prng::seed_from_u64(seed).normal_vector(dim, 2.0);
        for m in &mechanisms {
            let allocating = m.perturb(&g, &mut Prng::seed_from_u64(seed ^ 0xABCD));
            let mut in_place = g.clone();
            m.perturb_in_place(&mut in_place, &mut Prng::seed_from_u64(seed ^ 0xABCD));
            prop_assert!(
                bits_equal(&allocating, &in_place),
                "{} diverged at seed {seed}, dim {dim}", m.name()
            );
        }
    }

    #[test]
    fn prop_forge_into_equivalence(seed in 0u64..500, n in 1usize..8, dim in 1usize..16) {
        let honest = random_gradients(seed, n, dim);
        let ctx = AttackContext::new(&honest, seed as usize);
        let attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(LittleIsEnough::default()),
            Box::new(FallOfEmpires::default()),
            Box::new(SignFlip),
            Box::new(RandomNoise::new(1.3)),
            Box::new(Zero),
            Box::new(LargeNorm::default()),
            Box::new(Mimic::new(seed as usize)),
            Box::new(InnerProductManipulation::default()),
            Box::new(Rescaling::default()),
        ];
        let mut out = Vector::from(vec![-1.0; 2]); // dirty buffer, reused
        for attack in &attacks {
            let allocating = attack.forge(&ctx, &mut Prng::seed_from_u64(seed));
            attack.forge_into(&ctx, &mut Prng::seed_from_u64(seed), &mut out);
            prop_assert!(
                bits_equal(&allocating, &out),
                "{} diverged at seed {seed}", attack.name()
            );
        }
    }

    #[test]
    fn prop_vector_kernel_equivalence(seed in 0u64..500, n in 1usize..10, dim in 1usize..32) {
        let vs = random_gradients(seed, n, dim);
        // mean_into vs mean.
        let mut out = Vector::from(vec![3.25; 5]);
        Vector::mean_into(&vs, &mut out).unwrap();
        prop_assert!(bits_equal(&Vector::mean(&vs).unwrap(), &out));
        // sub_into vs operator.
        if n >= 2 {
            let mut diff = Vector::default();
            vs[0].sub_into(&vs[1], &mut diff);
            prop_assert!(bits_equal(&(&vs[0] - &vs[1]), &diff));
        }
        // copy_from round-trip and fill.
        let mut buf = Vector::zeros(1);
        buf.copy_from(&vs[0]);
        prop_assert!(bits_equal(&vs[0], &buf));
        buf.fill(0.0);
        prop_assert!(bits_equal(&Vector::zeros(dim), &buf));
        // squared_distance alias.
        if n >= 2 {
            prop_assert_eq!(
                vs[0].squared_distance(&vs[1]).to_bits(),
                vs[0].l2_distance_squared(&vs[1]).to_bits()
            );
        }
    }

    #[test]
    fn prop_hadamard_into_and_map_in_place_equivalence(
        seed in 0u64..500,
        dim in 1usize..48,
    ) {
        // The last two formerly allocating-only Vector kernels: the
        // in-place variants must match their allocating counterparts bit
        // for bit, with dirty reused output buffers (the engine's usage
        // pattern).
        let vs = random_gradients(seed, 2, dim);
        let mut out = Vector::from(vec![7.5; 3]); // dirty, wrong dim
        vs[0].hadamard_into(&vs[1], &mut out);
        prop_assert!(bits_equal(&vs[0].hadamard(&vs[1]), &out));
        // Reuse the SAME buffer again (capacity now warm).
        vs[1].hadamard_into(&vs[0], &mut out);
        prop_assert!(bits_equal(&vs[1].hadamard(&vs[0]), &out));

        let f = |x: f64| (x * 1.7 - 0.25).abs().sqrt();
        let mut in_place = vs[0].clone();
        in_place.map_in_place(f);
        prop_assert!(bits_equal(&vs[0].map(f), &in_place));
    }

    #[test]
    #[allow(clippy::redundant_clone)]
    fn prop_hadamard_into_dimension_contract(seed in 0u64..100, dim in 1usize..16) {
        // Same panic contract as the allocating hadamard: mismatched
        // dimensions are a programming error. (Checked via catch_unwind
        // so the proptest harness sees a clean assertion.)
        let vs = random_gradients(seed, 2, dim);
        let short = Vector::zeros(dim + 1);
        let result = std::panic::catch_unwind(|| {
            let mut out = Vector::default();
            vs[0].hadamard_into(&short, &mut out);
        });
        prop_assert!(result.is_err());
    }
}
