//! Determinism suite for the parallel sweep executor: histories produced
//! by `SweepBuilder` / `Experiment::run_seeds_parallel` must be
//! **bit-identical** to the serial `run_seeds` loop — across both engines
//! (`Trainer` and `ThreadedTrainer`) and across pool sizes 1, 2, and 8.
//!
//! `RunHistory`'s `PartialEq` compares float *bit patterns* (see
//! `dpbyz-server`), so equality here is the strongest claim available:
//! the executor adds no nondeterminism whatsoever.

use dpbyz::prelude::*;
use std::sync::{Arc, Mutex};

const POOL_SIZES: [usize; 3] = [1, 2, 8];
const SEEDS: [u64; 4] = [1, 2, 3, 4];

/// A DP + attacked cell: exercises the attack and noise RNG streams, the
/// parts most sensitive to ordering bugs.
fn attacked_experiment(threaded: bool) -> Experiment {
    Experiment::builder()
        .steps(6)
        .dataset_size(250)
        .gar("mda")
        .attack("alie")
        .epsilon(0.2)
        .threaded(threaded)
        .build()
        .unwrap()
}

#[test]
fn run_seeds_parallel_matches_serial_on_sequential_engine() {
    let exp = attacked_experiment(false);
    let serial = exp.run_seeds(&SEEDS).unwrap();
    for pool in POOL_SIZES {
        let parallel = exp.run_seeds_parallel(&SEEDS, Some(pool)).unwrap();
        assert_eq!(serial, parallel, "pool size {pool}");
    }
    // Auto-sized pool too.
    assert_eq!(serial, exp.run_seeds_parallel(&SEEDS, None).unwrap());
}

#[test]
fn run_seeds_parallel_matches_serial_on_threaded_engine() {
    let exp = attacked_experiment(true);
    let serial = exp.run_seeds(&SEEDS).unwrap();
    for pool in POOL_SIZES {
        let parallel = exp.run_seeds_parallel(&SEEDS, Some(pool)).unwrap();
        assert_eq!(serial, parallel, "pool size {pool} (threaded engine)");
    }
    // And the threaded engine agrees with the sequential one end-to-end.
    let sequential = attacked_experiment(false).run_seeds(&SEEDS).unwrap();
    assert_eq!(serial, sequential);
}

#[test]
fn sweep_grid_is_bit_identical_to_serial_loops_at_every_pool_size() {
    let grid = |pool: usize| {
        SweepBuilder::over(
            Experiment::builder()
                .steps(5)
                .dataset_size(250)
                .gar("mda")
                .attack("alie"),
        )
        .with_no_dp()
        .epsilons(&[0.2])
        .batch_sizes(&[10, 25])
        .seeds(&SEEDS)
        .pool_size(pool)
        .run()
        .unwrap()
    };
    // Serial reference: the exact loops the bench binaries used to run.
    let reference = grid(1);
    assert_eq!(reference.cells.len(), 4);
    for run in &reference.cells {
        let serial = run.experiment.run_seeds(&SEEDS).unwrap();
        assert_eq!(run.histories, serial, "cell {}", run.label);
    }
    for pool in [2, 8] {
        let parallel = grid(pool);
        for (a, b) in reference.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.histories, b.histories, "pool {pool}, cell {}", a.label);
        }
    }
}

#[test]
fn sweep_covers_both_engines_identically() {
    // The same grid run on the threaded engine must produce the same
    // bits as on the sequential engine, through the executor.
    let run_with = |threaded: bool| {
        SweepBuilder::over(
            Experiment::builder()
                .steps(4)
                .dataset_size(250)
                .gar("median")
                .attack("sign-flip")
                .byzantine(2)
                .threaded(threaded),
        )
        .with_no_dp()
        .epsilons(&[0.2])
        .seeds(&[1, 2])
        .pool_size(4)
        .run()
        .unwrap()
    };
    let sequential = run_with(false);
    let threaded = run_with(true);
    for (a, b) in sequential.cells.iter().zip(&threaded.cells) {
        assert_eq!(a.histories, b.histories, "cell {}", a.label);
    }
}

#[test]
fn zero_copy_engine_is_bit_identical_across_gars_engines_and_pool_sizes() {
    // Determinism gate for the buffer-reusing round engine: cells chosen
    // to exercise every scratch path (mean_into, the shared Krum distance
    // matrix, Bulyan's index-based selection, MDA's subset search, the
    // coordinate statistics) plus the in-place Gaussian mechanism and
    // forged-vector reuse, on both engines, serial and pools 1/2/8.
    let cells: [(&str, &str, usize); 5] = [
        ("average", "", 0),
        ("krum", "alie", 2),
        ("median", "foe", 3),
        ("mda", "alie", 4),
        ("bulyan", "foe", 2),
    ];
    for (gar, attack, f) in cells {
        for threaded in [false, true] {
            let mut builder = Experiment::builder()
                .steps(5)
                .dataset_size(250)
                .gar(gar)
                .byzantine(f)
                .epsilon(0.3)
                .threaded(threaded);
            if !attack.is_empty() {
                builder = builder.attack(attack);
            }
            let exp = builder.build().unwrap();
            let serial = exp.run_seeds(&SEEDS).unwrap();
            for pool in POOL_SIZES {
                let parallel = exp.run_seeds_parallel(&SEEDS, Some(pool)).unwrap();
                assert_eq!(
                    serial, parallel,
                    "{gar}/{attack}: pool {pool}, threaded {threaded}"
                );
            }
        }
        // Sequential and threaded engines agree on the same cell.
        let mut seq_builder = Experiment::builder()
            .steps(5)
            .dataset_size(250)
            .gar(gar)
            .byzantine(f)
            .epsilon(0.3);
        let mut thr_builder = seq_builder.clone().threaded(true);
        if !attack.is_empty() {
            seq_builder = seq_builder.attack(attack);
            thr_builder = thr_builder.attack(attack);
        }
        assert_eq!(
            seq_builder.build().unwrap().run_seeds(&SEEDS).unwrap(),
            thr_builder.build().unwrap().run_seeds(&SEEDS).unwrap(),
            "{gar}/{attack}: engines disagree"
        );
    }
}

#[test]
fn agg_threads_keeps_histories_bit_identical_on_both_engines() {
    // The intra-round aggregation pool (`agg_threads`) is the orthogonal
    // parallel axis: it shards the GAR's coordinate/candidate loops
    // *inside* a round. Any thread count must reproduce the serial
    // history bit for bit, on both engines — cells pick rules from the
    // sharded coordinate family and the Krum family.
    let cells: [(&str, &str, usize); 3] = [
        ("median", "sign-flip", 3),
        ("krum", "alie", 2),
        ("phocas", "foe", 3),
    ];
    for (gar, attack, f) in cells {
        for threaded in [false, true] {
            let build = |threads: usize| {
                Experiment::builder()
                    .steps(5)
                    .dataset_size(250)
                    .gar(gar)
                    .attack(attack)
                    .byzantine(f)
                    .epsilon(0.3)
                    .threaded(threaded)
                    .agg_threads(threads)
                    .build()
                    .unwrap()
            };
            let serial = build(1).run_seeds(&SEEDS).unwrap();
            for threads in [2usize, 8] {
                let parallel = build(threads).run_seeds(&SEEDS).unwrap();
                assert_eq!(
                    serial, parallel,
                    "{gar}/{attack}: agg_threads {threads}, threaded {threaded}"
                );
            }
        }
    }
}

#[test]
fn observers_stream_without_perturbing_parallel_results() {
    let exp = attacked_experiment(false);
    let serial = exp.run_seeds(&SEEDS).unwrap();
    let streamed = Arc::new(Mutex::new(0usize));
    let counter = streamed.clone();
    let results = SweepBuilder::new()
        .cell("only", exp)
        .seeds(&SEEDS)
        .pool_size(8)
        .observe_with(move |_job| {
            let counter = counter.clone();
            Box::new(FnObserver::new(move |_m: &StepMetrics<'_>| {
                *counter.lock().unwrap() += 1;
            }))
        })
        .run()
        .unwrap();
    assert_eq!(results.cells[0].histories, serial);
    // 4 seeds × 6 steps streamed.
    assert_eq!(*streamed.lock().unwrap(), 24);
}

#[test]
fn empty_seed_lists_error_instead_of_returning_empty() {
    let exp = attacked_experiment(false);
    assert!(matches!(exp.run_seeds(&[]), Err(PipelineError::Spec(_))));
    assert!(matches!(
        exp.run_seeds_parallel(&[], Some(2)),
        Err(PipelineError::Spec(_))
    ));
}
