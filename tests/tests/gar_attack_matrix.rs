//! Robustness matrix: every robust GAR against every attack, no DP.
//! Averaging is the control that must fail.

use dpbyz_core::pipeline::{Experiment, FigureConfig, Workload};
use dpbyz_core::registry::ComponentSpec;
use dpbyz_core::{AttackKind, GarKind, MechanismKind};
use dpbyz_server::TrainingConfig;

/// One matrix cell over registry specs (the open path the new components
/// use — no `*Kind` variants exist for them). Returns the sequential
/// run's tail loss after asserting the threaded engine reproduces it
/// bit-for-bit.
fn run_spec_attack(gar: ComponentSpec, attack: ComponentSpec, f: usize) -> f64 {
    let config = TrainingConfig::builder()
        .workers(11, f)
        .batch_size(25)
        .steps(120)
        .lr(dpbyz_server::LrSchedule::Constant(2.0))
        .momentum(0.99)
        .momentum_mode(dpbyz_server::MomentumMode::Worker)
        .clip(1e-2)
        .eval_every(0)
        .build()
        .expect("valid");
    let mut exp = Experiment {
        workload: Workload::PhishingLike {
            data_seed: 0xD1B2_2021,
            size: 1500,
        },
        config,
        gar,
        attack: Some(attack),
        budget: None,
        mechanism: MechanismKind::Gaussian.spec(),
        backend: "sequential".into(),
        dp_reference_g_max: None,
    };
    let sequential = exp.run(1).expect("runs");
    exp.backend = "threaded".into();
    let threaded = exp.run(1).expect("threaded runs");
    assert_eq!(
        sequential,
        threaded,
        "{}/{} diverged across engines",
        exp.gar.id,
        exp.attack.as_ref().unwrap().id
    );
    sequential.tail_loss(10)
}

fn run_gar_attack(gar: GarKind, attack: AttackKind, f: usize) -> f64 {
    let base = Experiment::paper_figure(FigureConfig {
        batch_size: 25,
        epsilon: None,
        attack: Some(attack),
        steps: 120,
        dataset_size: 1500,
        ..FigureConfig::default()
    })
    .expect("valid");
    let config = TrainingConfig::builder()
        .workers(11, f)
        .batch_size(25)
        .steps(120)
        .lr(base.config.lr)
        .momentum(base.config.momentum)
        .clip(base.config.clip)
        .eval_every(0)
        .build()
        .expect("valid");
    let exp = Experiment {
        workload: Workload::PhishingLike {
            data_seed: 0xD1B2_2021,
            size: 1500,
        },
        config,
        gar: gar.spec(),
        attack: Some(attack.spec()),
        budget: None,
        mechanism: MechanismKind::Gaussian.spec(),
        backend: "sequential".into(),
        dp_reference_g_max: None,
    };
    exp.run(1).expect("runs").tail_loss(10)
}

fn clean_reference() -> f64 {
    Experiment::paper_figure(FigureConfig {
        batch_size: 25,
        epsilon: None,
        attack: None,
        steps: 120,
        dataset_size: 1500,
        ..FigureConfig::default()
    })
    .expect("valid")
    .run(1)
    .expect("runs")
    .tail_loss(10)
}

#[test]
fn every_robust_gar_survives_large_norm_attack() {
    // The naive attack is table stakes: all robust rules must shrug it off.
    let clean = clean_reference();
    for (gar, f) in [
        (GarKind::Mda, 5),
        (GarKind::Krum, 4),
        (GarKind::MultiKrum, 4),
        (GarKind::Median, 5),
        (GarKind::TrimmedMean, 5),
        (GarKind::Meamed, 5),
        (GarKind::Phocas, 5),
        (GarKind::Bulyan, 2),
    ] {
        let loss = run_gar_attack(gar, AttackKind::LargeNorm { scale: 1e6 }, f);
        assert!(
            loss.is_finite() && loss < clean + 0.2,
            "{} failed under large-norm: {loss} (clean {clean})",
            gar.name()
        );
    }
}

#[test]
fn mda_survives_both_paper_attacks() {
    let clean = clean_reference();
    for attack in [AttackKind::PAPER_ALIE, AttackKind::PAPER_FOE] {
        let loss = run_gar_attack(GarKind::Mda, attack, 5);
        assert!(
            loss < clean + 0.2,
            "MDA failed under {}: {loss} (clean {clean})",
            attack.name()
        );
    }
}

#[test]
fn median_family_survives_sign_flip() {
    let clean = clean_reference();
    for gar in [GarKind::Median, GarKind::TrimmedMean, GarKind::Phocas] {
        let loss = run_gar_attack(gar, AttackKind::SignFlip, 5);
        assert!(
            loss < clean + 0.25,
            "{} failed under sign-flip: {loss}",
            gar.name()
        );
    }
}

#[test]
fn zero_attack_slows_but_does_not_poison() {
    // f zero-gradients dilute the aggregate but cannot steer it.
    let loss = run_gar_attack(GarKind::Mda, AttackKind::Zero, 5);
    assert!(loss < 0.3, "zero attack poisoned MDA: {loss}");
}

/// The scenario-pack components crossed: centered clipping and bucketing
/// against IPM and the norm-rescaling probe (plus the table-stakes
/// large-norm), each cell also asserting sequential ≡ threaded.
#[test]
fn centered_clipping_survives_the_new_attack_matrix() {
    let clean = clean_reference();
    // τ at the protocol's G_max: honest residuals pass, a forged vector
    // can pull the center at most 5τ/11 per iteration.
    let cc = || ComponentSpec::new("centered-clipping").with("tau", 0.01);
    for attack in [
        ComponentSpec::new("ipm").with("epsilon", 0.5),
        ComponentSpec::new("rescaling").with("norm", -0.01),
        ComponentSpec::new("large-norm"),
        ComponentSpec::new("alie").with("nu", 1.5),
    ] {
        let id = attack.id.clone();
        let loss = run_spec_attack(cc(), attack, 5);
        assert!(
            loss.is_finite() && loss < clean + 0.2,
            "centered-clipping failed under {id}: {loss} (clean {clean})"
        );
    }
}

#[test]
fn bucketed_median_survives_the_new_attack_matrix() {
    let clean = clean_reference();
    // Median over ⌈11/2⌉ = 6 buckets tolerates f = 2.
    let bucketing = || {
        ComponentSpec::new("bucketing")
            .with("s", 2u64)
            .with("inner", "median")
    };
    for attack in [
        ComponentSpec::new("ipm").with("epsilon", 0.5),
        ComponentSpec::new("rescaling").with("norm", -0.01),
        ComponentSpec::new("large-norm"),
    ] {
        let id = attack.id.clone();
        let loss = run_spec_attack(bucketing(), attack, 2);
        assert!(
            loss.is_finite() && loss < clean + 0.2,
            "bucketed median failed under {id}: {loss} (clean {clean})"
        );
    }
}

#[test]
fn established_gars_survive_ipm_and_rescaling() {
    // The new attacks against the paper's rules: stealthy IPM and the
    // fixed-norm probe are both rejected by the selection/median family.
    let clean = clean_reference();
    for (gar, f) in [(GarKind::Mda, 5), (GarKind::Median, 5), (GarKind::Krum, 4)] {
        for attack in [
            ComponentSpec::new("ipm").with("epsilon", 0.5),
            ComponentSpec::new("rescaling").with("norm", -1.0),
        ] {
            let id = attack.id.clone();
            let loss = run_spec_attack(gar.spec(), attack, f);
            assert!(
                loss < clean + 0.2,
                "{} failed under {id}: {loss} (clean {clean})",
                gar.name()
            );
        }
    }
}

#[test]
fn untuned_clipping_radius_is_defeated_by_the_rescaling_probe() {
    // The contrast cell that motivates the clipping-study pack: a forged
    // vector placed at an untuned radius (τ = 1 default, ‖forged‖ = 1)
    // evades shrinking and drags the aggregate — the defense only works
    // when τ matches the honest gradient scale.
    let clean = clean_reference();
    let loss = run_spec_attack(
        ComponentSpec::new("centered-clipping"),
        ComponentSpec::new("rescaling").with("norm", -1.0),
        5,
    );
    assert!(
        loss > clean + 0.2,
        "expected the untuned radius to be beaten: {loss} (clean {clean})"
    );
}
