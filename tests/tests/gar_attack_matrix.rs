//! Robustness matrix: every robust GAR against every attack, no DP.
//! Averaging is the control that must fail.

use dpbyz_core::pipeline::{Experiment, FigureConfig, Workload};
use dpbyz_core::{AttackKind, GarKind, MechanismKind};
use dpbyz_server::TrainingConfig;

fn run_gar_attack(gar: GarKind, attack: AttackKind, f: usize) -> f64 {
    let base = Experiment::paper_figure(FigureConfig {
        batch_size: 25,
        epsilon: None,
        attack: Some(attack),
        steps: 120,
        dataset_size: 1500,
        ..FigureConfig::default()
    })
    .expect("valid");
    let config = TrainingConfig::builder()
        .workers(11, f)
        .batch_size(25)
        .steps(120)
        .lr(base.config.lr)
        .momentum(base.config.momentum)
        .clip(base.config.clip)
        .eval_every(0)
        .build()
        .expect("valid");
    let exp = Experiment {
        workload: Workload::PhishingLike {
            data_seed: 0xD1B2_2021,
            size: 1500,
        },
        config,
        gar: gar.spec(),
        attack: Some(attack.spec()),
        budget: None,
        mechanism: MechanismKind::Gaussian.spec(),
        threaded: false,
        dp_reference_g_max: None,
    };
    exp.run(1).expect("runs").tail_loss(10)
}

fn clean_reference() -> f64 {
    Experiment::paper_figure(FigureConfig {
        batch_size: 25,
        epsilon: None,
        attack: None,
        steps: 120,
        dataset_size: 1500,
        ..FigureConfig::default()
    })
    .expect("valid")
    .run(1)
    .expect("runs")
    .tail_loss(10)
}

#[test]
fn every_robust_gar_survives_large_norm_attack() {
    // The naive attack is table stakes: all robust rules must shrug it off.
    let clean = clean_reference();
    for (gar, f) in [
        (GarKind::Mda, 5),
        (GarKind::Krum, 4),
        (GarKind::MultiKrum, 4),
        (GarKind::Median, 5),
        (GarKind::TrimmedMean, 5),
        (GarKind::Meamed, 5),
        (GarKind::Phocas, 5),
        (GarKind::Bulyan, 2),
    ] {
        let loss = run_gar_attack(gar, AttackKind::LargeNorm { scale: 1e6 }, f);
        assert!(
            loss.is_finite() && loss < clean + 0.2,
            "{} failed under large-norm: {loss} (clean {clean})",
            gar.name()
        );
    }
}

#[test]
fn mda_survives_both_paper_attacks() {
    let clean = clean_reference();
    for attack in [AttackKind::PAPER_ALIE, AttackKind::PAPER_FOE] {
        let loss = run_gar_attack(GarKind::Mda, attack, 5);
        assert!(
            loss < clean + 0.2,
            "MDA failed under {}: {loss} (clean {clean})",
            attack.name()
        );
    }
}

#[test]
fn median_family_survives_sign_flip() {
    let clean = clean_reference();
    for gar in [GarKind::Median, GarKind::TrimmedMean, GarKind::Phocas] {
        let loss = run_gar_attack(gar, AttackKind::SignFlip, 5);
        assert!(
            loss < clean + 0.25,
            "{} failed under sign-flip: {loss}",
            gar.name()
        );
    }
}

#[test]
fn zero_attack_slows_but_does_not_poison() {
    // f zero-gradients dilute the aggregate but cannot steer it.
    let loss = run_gar_attack(GarKind::Mda, AttackKind::Zero, 5);
    assert!(loss < 0.3, "zero attack poisoned MDA: {loss}");
}
