//! End-to-end coverage of the extension surface: Mimic through the
//! pipeline, amplification arithmetic against mechanism calibration, and
//! per-run CSV export.

use dpbyz_core::pipeline::{Experiment, FigureConfig};
use dpbyz_core::{AttackKind, GarKind};
use dpbyz_dp::amplification;
use dpbyz_dp::{GaussianMechanism, PrivacyBudget};

#[test]
fn mimic_is_harmless_on_iid_data() {
    // With homogeneous (i.i.d.-sampled) workers, replaying one honest
    // worker's gradient biases nothing in expectation — the attack's bite
    // requires heterogeneity. MDA under Mimic must train like the clean
    // run.
    let fig = FigureConfig {
        batch_size: 50,
        epsilon: None,
        attack: Some(AttackKind::Mimic { target: 0 }),
        steps: 150,
        dataset_size: 2000,
        ..FigureConfig::default()
    };
    let mimic = Experiment::paper_figure(fig).unwrap().run(1).unwrap();
    let clean = Experiment::paper_figure(FigureConfig {
        attack: None,
        ..fig
    })
    .unwrap()
    .run(1)
    .unwrap();
    assert!(
        mimic.tail_loss(10) < clean.tail_loss(10) + 0.1,
        "mimic unexpectedly harmful on iid data: {} vs {}",
        mimic.tail_loss(10),
        clean.tail_loss(10)
    );
}

#[test]
fn mimic_with_other_gars_also_trains() {
    for gar in [GarKind::Krum, GarKind::Median] {
        let exp = Experiment::paper_figure_with_gar(
            FigureConfig {
                batch_size: 50,
                epsilon: None,
                attack: Some(AttackKind::Mimic { target: 2 }),
                steps: 100,
                dataset_size: 1200,
                ..FigureConfig::default()
            },
            gar,
            5,
        )
        .unwrap();
        let h = exp.run(1).unwrap();
        assert!(
            h.tail_loss(10) < h.train_loss[0],
            "{} failed under mimic",
            gar.name()
        );
    }
}

#[test]
fn shuffle_amplification_buys_back_noise_in_mechanism_terms() {
    // Wire the amplification result into the actual mechanism: the relaxed
    // local ε₀ from a shuffler yields a strictly smaller calibrated sigma
    // than the central target used locally.
    let delta = 1e-6;
    let central = 0.05;
    let n = 100_000;
    let local = amplification::local_epsilon_budget(central, n, delta).unwrap();
    assert!(local > central);

    let strict = GaussianMechanism::for_clipped_gradients(
        PrivacyBudget::new(central, delta).unwrap(),
        0.01,
        50,
    )
    .unwrap();
    let relaxed = GaussianMechanism::for_clipped_gradients(
        PrivacyBudget::new(local, delta).unwrap(),
        0.01,
        50,
    )
    .unwrap();
    let gain = strict.sigma() / relaxed.sigma();
    assert!(
        (gain - local / central).abs() < 1e-9,
        "sigma gain {gain} vs epsilon relaxation {}",
        local / central
    );
    assert!(gain > 3.0);
}

#[test]
fn run_history_csv_roundtrips_key_columns() {
    let exp = Experiment::paper_figure(FigureConfig {
        batch_size: 20,
        epsilon: Some(0.2),
        attack: None,
        steps: 12,
        dataset_size: 400,
        ..FigureConfig::default()
    })
    .unwrap();
    let h = exp.run(1).unwrap();
    let csv = h.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 13); // header + 12 steps
                                 // Spot-check one full row against the history.
    let row: Vec<&str> = lines[1].split(',').collect();
    assert_eq!(row[0], "1");
    assert_eq!(row[1].parse::<f64>().unwrap(), h.train_loss[0]);
    assert_eq!(row[4].parse::<f64>().unwrap(), h.grad_norm[0]);
}
