//! Drop-in real-data path: serialize a dataset to the LIBSVM text format
//! (the format of the paper's `phishing` file), parse it back, and train
//! through the full distributed pipeline via `Workload::Provided`.

use dpbyz_core::pipeline::{Experiment, FigureConfig, Workload};
use dpbyz_core::{GarKind, MechanismKind};
use dpbyz_data::{libsvm, synthetic};
use dpbyz_server::TrainingConfig;
use dpbyz_tensor::Prng;
use std::sync::Arc;

#[test]
fn libsvm_roundtrip_preserves_training_behaviour() {
    let mut rng = Prng::seed_from_u64(21);
    let original = synthetic::phishing_like(&mut rng, 1200);

    // Through the wire format and back (what loading the real file does).
    let text = libsvm::serialize(&original);
    let parsed = libsvm::parse(&text, Some(original.num_features())).expect("parse back");
    assert_eq!(parsed, original);

    let mut split_rng = Prng::seed_from_u64(1);
    let (train, test) = parsed.split(0.8, &mut split_rng).expect("split");

    let base = Experiment::paper_figure(FigureConfig::default()).expect("valid");
    let config = TrainingConfig::builder()
        .workers(5, 0)
        .batch_size(25)
        .steps(120)
        .lr(base.config.lr)
        .momentum(base.config.momentum)
        .clip(base.config.clip)
        .eval_every(30)
        .build()
        .expect("valid");
    let exp = Experiment {
        workload: Workload::Provided {
            train: Arc::new(train),
            test: Arc::new(test),
        },
        config,
        gar: GarKind::Average.spec(),
        attack: None,
        budget: None,
        mechanism: MechanismKind::Gaussian.spec(),
        backend: "sequential".into(),
        dp_reference_g_max: None,
    };
    let h = exp.run(1).expect("runs");
    assert!(
        h.final_accuracy().unwrap() > 0.75,
        "accuracy {}",
        h.final_accuracy().unwrap()
    );
}

#[test]
fn libsvm_file_io_roundtrip() {
    let mut rng = Prng::seed_from_u64(5);
    let ds = synthetic::phishing_like(&mut rng, 80);
    let dir = std::env::temp_dir().join("dpbyz-libsvm-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("phishing_like.libsvm");
    std::fs::write(&path, libsvm::serialize(&ds)).unwrap();
    let back = libsvm::parse_file(&path, Some(ds.num_features())).expect("parse file");
    assert_eq!(back, ds);
    std::fs::remove_file(&path).ok();
}
