//! Reproducibility contracts: seeded determinism and engine equivalence.

use dpbyz_core::pipeline::{Experiment, FigureConfig};
use dpbyz_core::AttackKind;

fn experiment(threaded: bool) -> Experiment {
    let mut exp = Experiment::paper_figure(FigureConfig {
        batch_size: 20,
        epsilon: Some(0.2),
        attack: Some(AttackKind::PAPER_ALIE),
        steps: 25,
        dataset_size: 600,
        ..FigureConfig::default()
    })
    .expect("valid configuration");
    exp.backend = if threaded { "threaded" } else { "sequential" }.into();
    exp
}

#[test]
fn same_seed_same_history() {
    let exp = experiment(false);
    assert_eq!(exp.run(42).unwrap(), exp.run(42).unwrap());
}

#[test]
fn different_seed_different_history() {
    let exp = experiment(false);
    assert_ne!(exp.run(1).unwrap(), exp.run(2).unwrap());
}

#[test]
fn threaded_engine_bit_identical_to_sequential() {
    // The strongest cross-engine contract: identical histories for the
    // full DP + attack configuration, several seeds.
    for seed in [1u64, 7, 99] {
        let seq = experiment(false).run(seed).unwrap();
        let thr = experiment(true).run(seed).unwrap();
        assert_eq!(seq, thr, "engines diverged at seed {seed}");
    }
}

#[test]
fn dataset_generation_is_independent_of_run_seed() {
    // The data seed is fixed in the spec: two run seeds must train on the
    // same dataset (the paper trains all seeds on the same split).
    let exp = experiment(false);
    let h1 = exp.run(1).unwrap();
    let h2 = exp.run(2).unwrap();
    // Same dataset + same init (seeded separately from data) means the
    // first-step loss (before any stochastic divergence can compound)
    // should be computed over batches from the same pool — weak check:
    // losses are in the same ballpark.
    assert!((h1.train_loss[0] - h2.train_loss[0]).abs() < 0.2);
}

#[test]
fn full_history_equality_covers_all_metrics() {
    // Guard against a metric being recorded nondeterministically.
    let a = experiment(false).run(5).unwrap();
    let b = experiment(false).run(5).unwrap();
    assert_eq!(a.train_loss, b.train_loss);
    assert_eq!(a.test_accuracy, b.test_accuracy);
    assert_eq!(a.vn_clean, b.vn_clean);
    assert_eq!(a.vn_submitted, b.vn_submitted);
    assert_eq!(a.grad_norm, b.grad_norm);
    assert_eq!(a.final_params, b.final_params);
}
