//! Derive macros for the in-workspace `serde` shim.
//!
//! Parses the deriving item's token stream directly (the offline build
//! environment has no `syn`/`quote`) and emits `Serialize` / `Deserialize`
//! impls over the shim's `Value` data model. Supports the shapes this
//! workspace derives on: unit structs, named-field structs, tuple structs,
//! and enums mixing unit, newtype/tuple, and struct variants. Generics and
//! `#[serde(...)]` attributes are intentionally out of scope.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a deriving item.
enum Item {
    UnitStruct(String),
    NamedStruct(String, Vec<String>),
    TupleStruct(String, usize),
    Enum(String, Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    skip_generics(&mut tokens);
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct(name),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(name, parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(name, count_tuple_fields(g.stream()))
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("cannot derive on `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn skip_generics(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for t in tokens.by_ref() {
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                return;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Parses `name: Type, ...`, skipping attributes, visibility, and the type
/// tokens themselves (commas inside `<...>` are not field separators).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for t in tokens.by_ref() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Counts the comma-separated (at angle-depth 0) fields of a tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut depth = 0i32;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("expected `,` after variant, got {other:?}"),
        }
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::UnitStruct(name) => (name, "::serde::Value::Null".to_string()),
        Item::NamedStruct(name, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))"))
                .collect();
            (
                name,
                format!("::serde::Value::Map(vec![{}])", entries.join(", ")),
            )
        }
        Item::TupleStruct(name, 1) => {
            // Newtype structs serialize transparently, as in real serde.
            (name, "::serde::Serialize::serialize(&self.0)".to_string())
        }
        Item::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Seq(vec![{}])", elems.join(", ")),
            )
        }
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Serialize::serialize(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
        }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::UnitStruct(name) => (
            name,
            format!(
                "match value {{\n\
                    ::serde::Value::Null => Ok({name}),\n\
                    _ => Err(::serde::de::Error::expected(\"null\", \"{name}\")),\n\
                }}"
            ),
        ),
        Item::NamedStruct(name, fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(::serde::de::field(map, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "let map = value.as_map().ok_or_else(|| ::serde::de::Error::expected(\"map\", \"{name}\"))?;\n\
                     Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Item::TupleStruct(name, 1) => (
            name,
            format!("Ok({name}(::serde::Deserialize::deserialize(value)?))"),
        ),
        Item::TupleStruct(name, n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let seq = value.as_seq().ok_or_else(|| ::serde::de::Error::expected(\"sequence\", \"{name}\"))?;\n\
                     if seq.len() != {n} {{ return Err(::serde::de::Error::expected(\"{n} elements\", \"{name}\")); }}\n\
                     Ok({name}({}))",
                    inits.join(", ")
                ),
            )
        }
        Item::Enum(name, variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::deserialize(payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                    let seq = payload.as_seq().ok_or_else(|| ::serde::de::Error::expected(\"sequence\", \"{name}::{vname}\"))?;\n\
                                    if seq.len() != {n} {{ return Err(::serde::de::Error::expected(\"{n} elements\", \"{name}::{vname}\")); }}\n\
                                    Ok({name}::{vname}({}))\n\
                                }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(::serde::de::field(map, \"{f}\", \"{name}::{vname}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                    let map = payload.as_map().ok_or_else(|| ::serde::de::Error::expected(\"map\", \"{name}::{vname}\"))?;\n\
                                    Ok({name}::{vname} {{ {} }})\n\
                                }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            (
                name,
                format!(
                    "match value {{\n\
                        ::serde::Value::Str(s) => match s.as_str() {{\n\
                            {unit}\n\
                            other => Err(::serde::de::Error::expected(\"known unit variant\", &format!(\"{name} (got `{{other}}`)\"))),\n\
                        }},\n\
                        ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                            let (tag, payload) = &m[0];\n\
                            let _ = payload;\n\
                            match tag.as_str() {{\n\
                                {tagged}\n\
                                other => Err(::serde::de::Error::expected(\"known variant\", &format!(\"{name} (got `{{other}}`)\"))),\n\
                            }}\n\
                        }}\n\
                        _ => Err(::serde::de::Error::expected(\"string or single-key map\", \"{name}\")),\n\
                    }}",
                    unit = unit_arms.join("\n"),
                    tagged = tagged_arms.join("\n"),
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::de::Error> {{\n\
                {body}\n\
            }}\n\
        }}"
    )
}
