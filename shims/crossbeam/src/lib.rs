//! In-workspace stand-in for the `crossbeam` crate (offline build
//! environment). Only the channel surface the workspace uses is provided:
//! bounded and unbounded MPMC channels with cloneable senders *and*
//! receivers (the latter is what distinguishes crossbeam's channels from
//! `std::sync::mpsc` and what the parallel sweep executor's shared job
//! queue relies on), implemented over `Mutex` + `Condvar`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels, API-compatible with the subset
/// of `crossbeam-channel` the workspace uses: [`bounded`](channel::bounded),
/// [`unbounded`](channel::unbounded), cloneable [`Sender`](channel::Sender)
/// / [`Receiver`](channel::Receiver) halves, and disconnect-on-last-drop
/// semantics.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError};

    struct Inner<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel. Cloning adds a producer; the channel
    /// disconnects for receivers when the last sender drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloning adds a consumer (each message
    /// is delivered to exactly one receiver); the channel disconnects for
    /// senders when the last receiver drops.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value back when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner
                    .capacity
                    .is_some_and(|capacity| inner.queue.len() >= capacity);
                if !full {
                    inner.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.shared.not_full.wait(inner).expect("channel poisoned");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Errors once the channel is empty and every sender has been
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Creates a bounded channel: `send` blocks once `capacity` messages
    /// are in flight.
    ///
    /// # Panics
    ///
    /// Panics on `capacity == 0`: real crossbeam treats that as a
    /// rendezvous channel, which this shim does not implement — failing
    /// loudly beats deadlocking both halves.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            capacity > 0,
            "bounded(0) rendezvous channels are not supported by the crossbeam shim"
        );
        with_capacity(Some(capacity))
    }

    /// Creates an unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::collections::BTreeSet;

    #[test]
    fn bounded_round_trip_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(1);
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn recv_errors_after_sender_drop() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_after_receiver_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn drained_messages_survive_sender_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cloned_receivers_share_a_queue() {
        // The sweep executor's pattern: one producer fans jobs out to many
        // consumers; each job is delivered exactly once.
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        let mut all = BTreeSet::new();
        let mut total = 0;
        for w in workers {
            let got = w.join().unwrap();
            total += got.len();
            all.extend(got);
        }
        assert_eq!(total, 100, "every job delivered exactly once");
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn cloned_senders_all_feed_one_receiver() {
        let (tx, rx) = channel::unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..25 {
                        tx.send(i * 25 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = BTreeSet::new();
        while let Ok(v) = rx.recv() {
            got.insert(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 100);
    }

    #[test]
    #[should_panic(expected = "rendezvous")]
    fn zero_capacity_bounded_is_rejected() {
        let _ = channel::bounded::<u32>(0);
    }

    #[test]
    fn bounded_capacity_blocks_until_drained() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // The third send must wait for a recv; do it from another thread.
        let handle = std::thread::spawn(move || tx.send(3).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }
}
