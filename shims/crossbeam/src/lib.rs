//! In-workspace stand-in for the `crossbeam` crate (offline build
//! environment). Only the bounded-channel surface the threaded trainer
//! uses is provided, implemented over `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels (here: std mpsc under the hood,
/// which is all the one-directional worker wiring needs).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError};

    /// Sending half of a bounded channel.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_round_trip_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(1);
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn recv_errors_after_sender_drop() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
