//! In-workspace stand-in for `criterion` (offline build environment).
//!
//! Keeps the macro/API surface the bench targets use and measures with a
//! simple adaptive wall-clock loop: warm up briefly, then time enough
//! iterations to fill a small measurement window and report the mean
//! per-iteration time. No statistics, plots, or baselines — enough to
//! compare hot paths locally and to keep `cargo bench` runnable.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
/// Warm-up window per benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Whether the binary was invoked with `--test` (real criterion's smoke
/// mode, used by CI via `cargo bench -- --test`): every benchmark closure
/// runs exactly once, with no warm-up or measurement loop.
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Times one closure over many iterations.
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time. Under
    /// `--test` (smoke mode) the closure runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            let start = Instant::now();
            std::hint::black_box(f());
            self.total = start.elapsed();
            self.iterations = 1;
            return;
        }
        // Warm-up: run until the warm-up window elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_WINDOW {
            std::hint::black_box(f());
        }
        // Measure in growing batches until the window is filled.
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        let mut batch = 1u64;
        while total < MEASURE_WINDOW {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iterations += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.total = total;
        self.iterations = iterations;
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's adaptive loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().id), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{name:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    let per_iter = bencher.total.as_secs_f64() / bencher.iterations as f64;
    println!(
        "{name:<50} {:>12}   ({} iterations)",
        format_time(per_iter),
        bencher.iterations
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Collects benchmark functions into one runner, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-9).ends_with("ns"));
    }
}
