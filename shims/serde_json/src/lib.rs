//! JSON text layer for the in-workspace `serde` shim.
//!
//! Renders the shim's `Value` model to JSON and parses it back, following
//! real serde_json's conventions for the shapes this workspace uses:
//! externally tagged enums, shortest-round-trip float formatting (Rust's
//! `{}` for `f64` is exact), and `null` for non-finite floats.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serialization/deserialization failure.
pub use serde::de::Error;

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors real
/// serde_json's signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error("trailing characters after JSON value".into()));
    }
    T::deserialize(&value)
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's `{}` prints the shortest string that round-trips.
                let text = format!("{f}");
                out.push_str(&text);
                // Distinguish 2.0 from the integer 2, as serde_json does.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => return Err(Error(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => return Err(Error(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_text() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u32>("7").unwrap(), 7);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb".to_string());
    }

    #[test]
    fn containers_round_trip_through_text() {
        let v = vec![(1u32, 2.5f64), (3, -4.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, f64)>>(&json).unwrap(), v);
        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn float_precision_is_exact() {
        let x = 0.1f64 + 0.2;
        let json = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<f64>("1.0 extra").is_err());
    }
}
