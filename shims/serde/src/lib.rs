//! In-workspace stand-in for `serde`, built because the build environment
//! has no network access to crates.io.
//!
//! It keeps the parts of serde's surface this workspace actually uses —
//! `Serialize` / `Deserialize` traits usable as derive macros and as
//! bounds — over a simple self-describing [`Value`] data model instead of
//! serde's visitor architecture. The companion `serde_json` shim renders
//! [`Value`] to JSON text with the same externally-tagged enum conventions
//! real serde_json uses, so specs written against this shim keep working
//! if the real dependency is ever restored.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for unit structs and non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map (objects, structs, enum payloads).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the shim data model.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from the shim data model.
    ///
    /// # Errors
    ///
    /// [`de::Error`] when the value's shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, de::Error>;
}

/// Deserialization error type and helpers used by generated code.
pub mod de {
    use super::Value;
    use std::fmt;

    /// A deserialization failure with a human-readable message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl Error {
        /// A type-mismatch error.
        pub fn expected(what: &str, context: &str) -> Error {
            Error(format!("expected {what} while deserializing {context}"))
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deserialization error: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Looks up a required struct field in a serialized map.
    ///
    /// # Errors
    ///
    /// [`Error`] if the field is absent.
    pub fn field<'v>(
        map: &'v [(String, Value)],
        name: &str,
        context: &str,
    ) -> Result<&'v Value, Error> {
        map.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error(format!("missing field `{name}` in {context}")))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, de::Error> {
                let raw = match value {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    _ => return Err(de::Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, de::Error> {
                let raw = match value {
                    Value::I64(i) => *i,
                    Value::U64(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(de::Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    // Real serde_json emits non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(de::Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| de::Error::expected("string", "String"))
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        value
            .as_seq()
            .ok_or_else(|| de::Error::expected("sequence", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize(&self) -> Value {
        (*self).serialize()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+ $(,)?)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, de::Error> {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| de::Error::expected("sequence", "tuple"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(de::Error::expected("tuple of matching arity", "tuple"));
                }
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, de::Error> {
        value
            .as_map()
            .ok_or_else(|| de::Error::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&3u32.serialize()).unwrap(), 3);
        assert_eq!(i64::deserialize(&(-5i64).serialize()).unwrap(), -5);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(f64::deserialize(&Value::Null).unwrap().is_nan());
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(u32, f64)>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u64> = Some(9);
        assert_eq!(Option::<u64>::deserialize(&o.serialize()).unwrap(), o);
        let n: Option<u64> = None;
        assert_eq!(Option::<u64>::deserialize(&n.serialize()).unwrap(), n);
    }

    #[test]
    fn mismatches_error() {
        assert!(u32::deserialize(&Value::Str("x".into())).is_err());
        assert!(Vec::<u32>::deserialize(&Value::Bool(true)).is_err());
        assert!(u8::deserialize(&Value::U64(300)).is_err());
    }
}
