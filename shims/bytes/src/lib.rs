//! In-workspace stand-in for the `bytes` crate (offline build environment).
//!
//! Provides the subset the wire format uses: [`BytesMut`] as an append
//! buffer with little-endian put methods, [`Bytes`] as a cheaply cloneable
//! shared view with cursor-style little-endian reads, and the [`Buf`] /
//! [`BufMut`] traits those methods live on.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Cursor-style reads over a byte buffer. Each `get_*` consumes from the
/// front.
pub trait Buf {
    /// Remaining bytes.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn take_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Append-style writes onto a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A cheaply cloneable, shared, immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer (shares the underlying allocation).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&i) => i,
            std::ops::Bound::Excluded(&i) => i + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&i) => i + 1,
            std::ops::Bound::Excluded(&i) => i,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range {len}");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the readable bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "buffer underflow: {n} > {}", self.len());
        let out = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        out
    }
}

/// A growable byte buffer for building frames.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable, shareable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Clears the buffer, keeping its allocation — the frame-arena
    /// recycling primitive: a cleared `BytesMut` re-encodes the next
    /// frame into the same storage.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_fields() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(7);
        buf.put_f64_le(-2.5);
        buf.put_u64_le(u64::MAX);
        let mut frozen = buf.freeze();
        assert_eq!(frozen.len(), 20);
        assert_eq!(frozen.get_u32_le(), 7);
        assert_eq!(frozen.get_f64_le(), -2.5);
        assert_eq!(frozen.get_u64_le(), u64::MAX);
        assert!(frozen.is_empty());
    }

    #[test]
    fn slices_share_and_narrow() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let tail = s.slice(1..);
        assert_eq!(&tail[..], &[3, 4]);
        assert_eq!(b.slice(..2).to_vec(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
