//! In-workspace stand-in for the `rand` crate (offline build environment).
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — fast,
//! well-mixed, and fully deterministic, which is all `dpbyz-tensor::Prng`
//! requires (every experiment in the workspace must be a pure function of
//! its seed; no golden values from the real rand crate exist).

#![forbid(unsafe_code)]

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods, in the style of rand 0.9's `Rng`.
pub trait RngExt {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a supported type: `u32`/`u64` uniform over the
    /// full range, `f64` uniform in `[0, 1)`.
    fn random<T: SampleUniform>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        let span = range
            .end
            .checked_sub(range.start)
            .filter(|&s| s > 0)
            .expect("random_range requires a non-empty range");
        // Lemire's multiply-shift; the slight bias at 2^64 scale is far
        // below anything the statistical tests in this workspace resolve.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as usize;
        range.start + hi
    }
}

/// Types [`RngExt::random`] can produce from 64 raw bits.
pub trait SampleUniform {
    /// Maps raw bits to a sample.
    fn sample(bits: u64) -> Self;
}

impl SampleUniform for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl SampleUniform for u32 {
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl SampleUniform for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 high bits → [0, 1) with full double precision.
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed through SplitMix64, per the xoshiro authors'
            // recommendation (avoids the all-zero state).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_in_unit_interval_with_reasonable_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.random_range(7..8), 7);
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).random_range(3..3);
    }
}
