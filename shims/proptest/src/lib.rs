//! In-workspace stand-in for `proptest` (offline build environment).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, range strategies
//! for the numeric primitives, `collection::vec`, and the `prop_assert*`
//! macros. Sampling is deterministic (fixed seed, fixed case count) so
//! test runs are reproducible; there is no shrinking.

#![forbid(unsafe_code)]

/// Number of sampled cases per property test.
pub const CASES: u32 = 64;

/// A deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one property test.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Something that can produce values for a property-test argument.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// A fair coin flip.
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// The length specification of a [`VecStrategy`]: an exact size or a
    /// half-open range, as in real proptest's `SizeRange`.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    /// A strategy producing `Vec`s of elements from `elem`, with length
    /// drawn uniformly from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = (self.len.lo..self.len.hi).sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestRng};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Vary the stream per test via the name so sibling tests
                // do not see identical sequences.
                let mut __seed: u64 = 0xDB4C_2021;
                for b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
                }
                let mut __rng = $crate::TestRng::new(__seed);
                for __case in 0..$crate::CASES {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -2.0..2.0f64, n in 1usize..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(v in collection::vec(0.0..1.0f64, 0..7)) {
            prop_assert!(v.len() < 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..16 {
            prop_assert_eq!((0u64..100).sample(&mut a), (0u64..100).sample(&mut b));
        }
    }
}
