//! Feasibility planner: "can my deployment be both DP and Byzantine
//! resilient?"
//!
//! A practitioner tool built on `dpbyz::theory`: given a model size,
//! topology, and privacy budget, it prints every GAR's Table 1 necessary
//! condition, the minimum feasible batch size, and the ResNet-50 worked
//! example from §3 of the paper.
//!
//! Run with:
//! `cargo run -p dpbyz-examples --bin feasibility_planner -- [d] [n] [f] [eps] [delta] [b]`
//! (defaults: d = 69, n = 11, f = 5, eps = 0.2, delta = 1e-6, b = 50)

use dpbyz::theory::table1::{self, Condition};
use dpbyz::{analysis, GarKind, PrivacyBudget};

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let d: usize = arg(1, 69);
    let n: usize = arg(2, 11);
    let f: usize = arg(3, 5);
    let eps: f64 = arg(4, 0.2);
    let delta: f64 = arg(5, 1e-6);
    let b: usize = arg(6, 50);

    let budget = match PrivacyBudget::new(eps, delta) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("invalid privacy budget: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "deployment: d = {d}, n = {n}, f = {f}, batch b = {b}, budget (ε = {eps}, δ = {delta})"
    );
    println!("C = ε/√ln(1.25/δ) = {:.5}\n", budget.c_constant());

    println!("Table 1 necessary conditions (Propositions 1-3):");
    println!(
        "{:<14} {:<44} {:>10} {:>12}",
        "GAR", "necessary condition at this deployment", "status", "min batch"
    );
    for row in table1::table(n, f, d, b, budget) {
        let (desc, status) = match row.condition {
            Condition::MinBatch(min_b) => (
                format!("batch size b >= {min_b:.0}"),
                if row.satisfied { "OK" } else { "VIOLATED" },
            ),
            Condition::MaxByzantineFraction(t) => (
                format!(
                    "Byzantine fraction f/n <= {t:.5} (have {:.3})",
                    f as f64 / n as f64
                ),
                if row.satisfied { "OK" } else { "VIOLATED" },
            ),
        };
        let min_batch = table1::required_batch(row.gar, n, f, d, budget)
            .map_or("-".to_string(), |v| v.to_string());
        println!(
            "{:<14} {:<44} {:>10} {:>12}",
            row.gar.name(),
            desc,
            status,
            min_batch
        );
    }

    println!("\nBatch frontier for Krum across model sizes (b ∈ Ω(√(n·d))):");
    for (dim, min_b) in analysis::batch_frontier(
        GarKind::Krum,
        n,
        f,
        &[69, 1_000, 100_000, 1_000_000, 25_600_000],
        budget,
    ) {
        println!("  d = {dim:>10}  =>  b >= {min_b}");
    }

    println!("\nMDA's tolerable Byzantine fraction at b = {b} (f/n ∈ O(b/(√d + b))):");
    for (dim, tau) in
        analysis::mda_fraction_frontier(b, &[69, 1_000, 100_000, 1_000_000, 25_600_000], budget)
    {
        println!("  d = {dim:>10}  =>  f/n <= {tau:.6}");
    }

    let ex = analysis::resnet50_example(budget);
    println!(
        "\nResNet-50 worked example (§3): d = {}, √d = {:.0}",
        ex.dim, ex.sqrt_d
    );
    for (gar, req) in ex.required_batches {
        match req {
            Some(b) => println!("  {:<14} needs b >= {b}", gar.name()),
            None => println!("  {:<14} condition vacuous at f/n = 5/11", gar.name()),
        }
    }
    println!("\n=> at contemporary model sizes, no statistically-robust GAR retains its");
    println!("   certificate under (0,1)²-budget DP noise with practical batch sizes.");
}
