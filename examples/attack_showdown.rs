//! Attack showdown: every robust GAR against every attack, with and
//! without DP noise.
//!
//! Reproduces the qualitative claim behind Fig. 2 across the *whole* GAR
//! zoo rather than just MDA: without DP, the robust rules keep training
//! under ALIE/FoE; with the paper's (0.2, 1e-6) budget at b = 50, their
//! protection collapses.
//!
//! The grid is driven entirely by registry ids — registering a custom GAR
//! or attack (see `dpbyz::register_gar`) makes it sweepable here with one
//! string added to the arrays — and every cell runs concurrently on the
//! parallel sweep executor (`dpbyz::sweep`), with results read back in
//! deterministic label order.
//!
//! Run with: `cargo run --release -p dpbyz-examples --bin attack_showdown`

use dpbyz::prelude::*;

const GARS: [&str; 7] = [
    "mda",
    "krum",
    "median",
    "trimmed-mean",
    "meamed",
    "phocas",
    "bulyan",
];
const ATTACKS: [&str; 2] = ["alie", "foe"];

fn cell(gar: &str, attack: &str, epsilon: Option<f64>) -> Experiment {
    // The paper protocol with the GAR swapped in; the Byzantine count is
    // clamped to each rule's tolerance (Krum: 4, Bulyan: 2 at n = 11) so
    // every rule is compared at full declared strength.
    let f = 5.min(
        dpbyz::build_gar(&gar.into())
            .expect("registered gar")
            .max_byzantine(11),
    );
    let mut builder = Experiment::builder()
        .batch_size(50)
        .steps(200)
        .dataset_size(2000)
        .gar(gar)
        .attack(attack)
        .byzantine(f);
    if let Some(epsilon) = epsilon {
        builder = builder.epsilon(epsilon);
    }
    builder.build().expect("valid configuration")
}

fn main() {
    // All 28 (GAR × attack × DP) cells in one parallel executor run.
    let mut sweep = SweepBuilder::new().seeds(&[1]);
    for (tag, eps) in [("nodp", None), ("dp", Some(0.2))] {
        for gar in GARS {
            for attack in ATTACKS {
                sweep = sweep.cell(format!("{gar}/{attack}/{tag}"), cell(gar, attack, eps));
            }
        }
    }
    let results = sweep.run().expect("showdown cells run");
    let tail = |gar: &str, attack: &str, tag: &str| {
        results
            .get(&format!("{gar}/{attack}/{tag}"))
            .expect("cell ran")
            .histories[0]
            .tail_loss(20)
    };

    println!("final training loss after 200 steps (b = 50, n = 11, reduced scale)");
    println!("lower is better; compare the two blocks column-wise\n");

    for (title, tag) in [
        ("WITHOUT DP noise", "nodp"),
        ("WITH DP noise (ε = 0.2)", "dp"),
    ] {
        println!("== {title}");
        print!("{:<14}", "GAR \\ attack");
        for a in ATTACKS {
            print!(" {a:>10}");
        }
        println!();
        for gar in GARS {
            print!("{gar:<14}");
            for attack in ATTACKS {
                print!(" {:>10.5}", tail(gar, attack, tag));
            }
            println!();
        }
        println!();
    }

    println!("Expected shape: the left block stays low (robustness without privacy");
    println!("works); the right block rises across the board — DP noise at this");
    println!("batch size removes the GARs' protection (the paper's antagonism).");
}
