//! Attack showdown: every robust GAR against every attack, with and
//! without DP noise.
//!
//! Reproduces the qualitative claim behind Fig. 2 across the *whole* GAR
//! zoo rather than just MDA: without DP, the robust rules keep training
//! under ALIE/FoE; with the paper's (0.2, 1e-6) budget at b = 50, their
//! protection collapses.
//!
//! The grid is driven entirely by registry ids — registering a custom GAR
//! or attack (see `dpbyz::register_gar`) makes it sweepable here with one
//! string added to the arrays.
//!
//! Run with: `cargo run --release -p dpbyz-examples --bin attack_showdown`

use dpbyz::prelude::*;

fn run_cell(gar: &str, attack: &str, epsilon: Option<f64>) -> f64 {
    // The paper protocol with the GAR swapped in; the Byzantine count is
    // clamped to each rule's tolerance (Krum: 4, Bulyan: 2 at n = 11) so
    // every rule is compared at full declared strength.
    let f = 5.min(
        dpbyz::build_gar(&gar.into())
            .expect("registered gar")
            .max_byzantine(11),
    );
    let mut builder = Experiment::builder()
        .batch_size(50)
        .steps(200)
        .dataset_size(2000)
        .gar(gar)
        .attack(attack)
        .byzantine(f);
    if let Some(epsilon) = epsilon {
        builder = builder.epsilon(epsilon);
    }
    let exp = builder.build().expect("valid configuration");
    exp.run(1).expect("run succeeds").tail_loss(20)
}

fn main() {
    let gars = [
        "mda",
        "krum",
        "median",
        "trimmed-mean",
        "meamed",
        "phocas",
        "bulyan",
    ];
    let attacks = ["alie", "foe"];

    println!("final training loss after 200 steps (b = 50, n = 11, reduced scale)");
    println!("lower is better; compare the two blocks column-wise\n");

    for (title, eps) in [
        ("WITHOUT DP noise", None),
        ("WITH DP noise (ε = 0.2)", Some(0.2)),
    ] {
        println!("== {title}");
        print!("{:<14}", "GAR \\ attack");
        for a in attacks {
            print!(" {a:>10}");
        }
        println!();
        for gar in gars {
            print!("{gar:<14}");
            for attack in attacks {
                print!(" {:>10.5}", run_cell(gar, attack, eps));
            }
            println!();
        }
        println!();
    }

    println!("Expected shape: the left block stays low (robustness without privacy");
    println!("works); the right block rises across the board — DP noise at this");
    println!("batch size removes the GARs' protection (the paper's antagonism).");
}
