//! Attack showdown: every registered GAR against every registered
//! attack, with and without DP noise — driven by the `attack-zoo`
//! scenario pack.
//!
//! Reproduces the qualitative claim behind Fig. 2 across the *whole* GAR
//! zoo rather than just MDA: without DP, the robust rules keep training
//! under the attacks; with the paper's (0.2, 1e-6) budget at b = 50,
//! their protection collapses.
//!
//! The grid is one line per block: `with_pack("attack-zoo")` expands
//! every registered GAR that tolerates f ≥ 1 at n = 11 (Byzantine count
//! clamped per rule) against every registered attack, computed at
//! resolve time — registering a custom GAR or attack (see
//! `dpbyz::register_gar`) grows the matrix with **zero** edits here. The
//! same pack runs twice over two bases: a plain one and one carrying the
//! paper's budget.
//!
//! Run with: `cargo run --release -p dpbyz-examples --bin attack_showdown`

use dpbyz::prelude::*;

fn run_block(epsilon: Option<f64>) -> SweepResults {
    let mut base = Experiment::builder()
        .batch_size(50)
        .steps(200)
        .dataset_size(2000);
    if let Some(epsilon) = epsilon {
        base = base.epsilon(epsilon);
    }
    SweepBuilder::over(base)
        .with_pack("attack-zoo")
        .seeds(&[1])
        .run()
        .expect("attack-zoo runs")
}

fn main() {
    // The axis labels come from the pack itself, so the table tracks the
    // registry: cell labels are "attack-zoo/{gar}/{attack}".
    let zoo = scenario_pack("attack-zoo").expect("built-in pack");
    let mut gars: Vec<String> = Vec::new();
    let mut attacks: Vec<String> = Vec::new();
    for cell in &zoo.cells {
        let (gar, attack) = cell.label.split_once('/').expect("gar/attack label");
        if !gars.iter().any(|g| g == gar) {
            gars.push(gar.to_string());
        }
        if !attacks.iter().any(|a| a == attack) {
            attacks.push(attack.to_string());
        }
    }

    println!(
        "final training loss after 200 steps (b = 50, n = 11, reduced scale); \
         {} GARs x {} attacks",
        gars.len(),
        attacks.len()
    );
    println!("lower is better; compare the two blocks column-wise\n");

    for (title, eps) in [
        ("WITHOUT DP noise", None),
        ("WITH DP noise (ε = 0.2)", Some(0.2)),
    ] {
        let results = run_block(eps);
        println!("== {title}");
        print!("{:<18}", "GAR \\ attack");
        for a in &attacks {
            print!(" {a:>12}");
        }
        println!();
        for gar in &gars {
            print!("{gar:<18}");
            for attack in &attacks {
                let tail = results
                    .get(&format!("attack-zoo/{gar}/{attack}"))
                    .expect("cell ran")
                    .histories[0]
                    .tail_loss(20);
                print!(" {tail:>12.5}");
            }
            println!();
        }
        println!();
    }

    println!("Expected shape: the top block stays low (robustness without privacy");
    println!("works); the bottom block rises across the board — DP noise at this");
    println!("batch size removes the GARs' protection (the paper's antagonism).");
}
