//! Attack showdown: every robust GAR against every attack, with and
//! without DP noise.
//!
//! Reproduces the qualitative claim behind Fig. 2 across the *whole* GAR
//! zoo rather than just MDA: without DP, the robust rules keep training
//! under ALIE/FoE; with the paper's (0.2, 1e-6) budget at b = 50, their
//! protection collapses.
//!
//! Run with: `cargo run --release -p dpbyz-examples --bin attack_showdown`

use dpbyz_core::pipeline::{Experiment, FigureConfig};
use dpbyz_core::{AttackKind, GarKind};

fn run_cell(gar: GarKind, attack: AttackKind, epsilon: Option<f64>) -> f64 {
    // The paper protocol with the GAR swapped in; the Byzantine count is
    // clamped to each rule's tolerance (Krum: 4, Bulyan: 2 at n = 11) so
    // every rule is compared at full declared strength.
    let exp = Experiment::paper_figure_with_gar(
        FigureConfig {
            batch_size: 50,
            epsilon,
            attack: Some(attack),
            steps: 200,
            dataset_size: 2000,
            ..FigureConfig::default()
        },
        gar,
        5,
    )
    .expect("valid configuration");
    exp.run(1).expect("run succeeds").tail_loss(20)
}

fn main() {
    let gars = [
        GarKind::Mda,
        GarKind::Krum,
        GarKind::Median,
        GarKind::TrimmedMean,
        GarKind::Meamed,
        GarKind::Phocas,
        GarKind::Bulyan,
    ];
    let attacks = [AttackKind::PAPER_ALIE, AttackKind::PAPER_FOE];

    println!("final training loss after 200 steps (b = 50, n = 11, reduced scale)");
    println!("lower is better; compare the two blocks column-wise\n");

    for (title, eps) in [("WITHOUT DP noise", None), ("WITH DP noise (ε = 0.2)", Some(0.2))] {
        println!("== {title}");
        print!("{:<14}", "GAR \\ attack");
        for a in attacks {
            print!(" {:>10}", a.name());
        }
        println!();
        for gar in gars {
            print!("{:<14}", gar.name());
            for attack in attacks {
                print!(" {:>10.5}", run_cell(gar, attack, eps));
            }
            println!();
        }
        println!();
    }

    println!("Expected shape: the left block stays low (robustness without privacy");
    println!("works); the right block rises across the board — DP noise at this");
    println!("batch size removes the GARs' protection (the paper's antagonism).");
}
