//! Why the paper wants DP at all: a curious parameter server reconstructs
//! training samples from the gradients workers share in the clear
//! (Zhu et al. 2019 — the paper's \[43\]), and worker-local DP noise
//! destroys the attack.
//!
//! For the generalized linear models of this workspace the inversion is
//! closed-form (`x = ∇_w / ∇_b` on a single-sample gradient), so the demo
//! is exact rather than optimization-based.
//!
//! Run with: `cargo run -p dpbyz-examples --bin gradient_leakage`

use dpbyz::attacks::inversion;
use dpbyz::data::synthetic;
use dpbyz::dp::{GaussianMechanism, Mechanism, PrivacyBudget};
use dpbyz::models::{LogisticRegression, LossKind, Model};
use dpbyz::tensor::Prng;

fn main() {
    let mut rng = Prng::seed_from_u64(2021);
    let ds = synthetic::phishing_like(&mut rng, 50);
    let model = LogisticRegression::new(ds.num_features(), LossKind::SigmoidMse);
    let params = rng.normal_vector(model.dim(), 0.3);

    println!("curious-server gradient inversion on d = 69 logistic regression");
    println!("(single-sample gradients, i.e. worker batch size b = 1)\n");

    let budget = PrivacyBudget::new(0.2, 1e-6).expect("paper budget");
    let mech = GaussianMechanism::for_clipped_gradients(budget, 0.01, 1).expect("calibrates");

    println!(
        "{:>8} {:>22} {:>22}",
        "sample", "clear-gradient MSE", "DP-gradient MSE"
    );
    let mut clear_exact = 0;
    let mut dp_exact = 0;
    let samples = 10;
    for i in 0..samples {
        let (x, _) = ds.example(i);
        let batch = ds.batch(&[i]);
        let grad = model.gradient(&params, &batch);

        let clear_mse = inversion::reconstruction_mse(&grad, x);
        let noisy = mech.perturb(&grad.clipped_l2(0.01), &mut rng);
        let dp_mse = inversion::reconstruction_mse(&noisy, x);

        if clear_mse < 1e-12 {
            clear_exact += 1;
        }
        if dp_mse < 1e-2 {
            dp_exact += 1;
        }
        println!("{i:>8} {clear_mse:>22.3e} {dp_mse:>22.3e}");
    }

    println!(
        "\nexact reconstructions: {clear_exact}/{samples} from clear gradients, \
         {dp_exact}/{samples} from DP gradients"
    );
    println!("\nThe asymmetry is the paper's starting point: gradients in the clear");
    println!("leak the training data (so workers inject DP noise) — and §3/§4 then");
    println!("show that this same noise breaks the Byzantine-resilience certificate.");
}
