//! Privacy accounting over a full training run.
//!
//! The paper reasons about the *per-step* budget (ε, δ); this example shows
//! what a whole T = 1000-step training costs under the three composition
//! accountants, and how the noise multiplier trades off against the total
//! spend — the practitioner's view of §2.3's composition remark.
//!
//! Run with: `cargo run -p dpbyz-examples --bin privacy_accounting`

use dpbyz::dp::accountant::{advanced_composition, basic_composition, RdpAccountant};
use dpbyz::dp::{GaussianMechanism, Mechanism, PrivacyBudget};

fn main() {
    let per_step = PrivacyBudget::new(0.2, 1e-6).expect("paper budget");
    let steps = 1000u32;

    println!("per-step budget: (ε = 0.2, δ = 1e-6); T = {steps} steps (the paper's run)\n");

    let (be, bd) = basic_composition(per_step, steps);
    println!("basic composition:     ε_total = {be:.1}, δ_total = {bd:.1e}");

    let (ae, ad) = advanced_composition(per_step, steps, 1e-6).expect("valid slack");
    println!("advanced composition:  ε_total = {ae:.1}, δ_total = {ad:.1e}");

    let mut rdp = RdpAccountant::from_budget(per_step).expect("valid budget");
    rdp.step_many(steps as u64);
    println!(
        "RDP (moments-style):   ε_total = {:.1} at δ = 1e-5\n",
        rdp.epsilon(1e-5)
    );

    println!("interpretation: even the tightest accountant leaves a multi-digit ε");
    println!("after 1000 steps — the per-step budget the Byzantine analysis fights");
    println!("against is already the *optimistic* quantity.\n");

    // How the per-step noise scales with the budget, at the paper's
    // G_max = 0.01, b = 50 calibration (Eq. 6).
    println!("Eq. 6 noise std per coordinate (G_max = 0.01, b = 50):");
    println!("{:>8} {:>14} {:>22}", "ε", "s", "total noise E‖y‖², d=69");
    for eps in [0.05, 0.1, 0.2, 0.4, 0.8] {
        let budget = PrivacyBudget::new(eps, 1e-6).expect("valid");
        let mech = GaussianMechanism::for_clipped_gradients(budget, 0.01, 50).expect("valid");
        println!(
            "{:>8.2} {:>14.6} {:>22.6}",
            eps,
            mech.sigma(),
            mech.total_noise_variance(69)
        );
    }

    println!("\ncompare E‖y‖² with the largest possible signal ‖∇Q‖² ≤ G_max² = 1e-4:");
    println!("at ε = 0.2 the injected noise energy exceeds the signal energy by ~77×,");
    println!("which is Eq. 8's numerator in action.");
}
