//! Theorem 1, empirically: the training error of DP + Byzantine-resilient
//! SGD on a strongly convex cost scales as Θ(d·log(1/δ)/(T·b²·ε²)).
//!
//! Runs the mean-estimation workload (`Q(w) = ½E‖w − x‖²`,
//! `D = N(x̄, σ²/d·I)`) across a dimension sweep, with and without DP,
//! and prints measured suboptimality against the theorem's upper and lower
//! bounds.
//!
//! Run with: `cargo run --release -p dpbyz-examples --bin theorem1_scaling`

use dpbyz::theory::convergence;
use dpbyz::{Experiment, PrivacyBudget};

fn measure(dim: usize, budget: Option<PrivacyBudget>, steps: u32, b: usize) -> f64 {
    // n = 1 worker: the lower bound's construction observes exactly one
    // noisy gradient per step, so a single honest worker compares 1:1.
    let exp = Experiment::theorem1(dim, 1.0, budget, steps, b, 1).expect("valid spec");
    let dist = exp.mean_estimation_instance().expect("mean estimation");
    // Average suboptimality over a few seeds to tame run-to-run variance.
    let seeds = [1u64, 2, 3];
    let mut total = 0.0;
    for &s in &seeds {
        let h = exp.run(s).expect("run succeeds");
        total += 0.5 * h.final_params.l2_distance_squared(dist.true_mean());
    }
    total / seeds.len() as f64
}

fn main() {
    let budget = PrivacyBudget::new(0.2, 1e-6).expect("paper budget");
    let (steps, b) = (400u32, 10usize);

    println!("mean estimation: T = {steps}, b = {b}, σ² = 1, γ_t = 1/t, n = 1 honest worker\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "d", "no-DP error", "DP error", "thm lower", "thm upper"
    );

    let mut prev_dp: Option<(usize, f64)> = None;
    for dim in [8usize, 32, 128, 512] {
        let no_dp = measure(dim, None, steps, b);
        let dp = measure(dim, Some(budget), steps, b);
        let lo = convergence::lower_bound(1.0, 2.0, steps, b, dim, Some(budget));
        let hi = convergence::upper_bound(
            &convergence::ProblemConstants::mean_estimation(1.0, 2.0),
            steps,
            b,
            dim,
            Some(budget),
        );
        println!("{dim:>6} {no_dp:>14.6} {dp:>14.6} {lo:>14.6} {hi:>14.6}");
        if let Some((pd, pe)) = prev_dp {
            let measured_ratio = dp / pe;
            let dim_ratio = dim as f64 / pd as f64;
            println!(
                "       └─ d×{dim_ratio:.0} ⇒ DP error ×{measured_ratio:.2} (theory: ×{dim_ratio:.0} once noise dominates)"
            );
        }
        prev_dp = Some((dim, dp));
    }

    println!("\nExpected shape: the no-DP column is flat in d (O(1/T), dimension-free);");
    println!("the DP column grows ≈ linearly with d and sits between the theorem's");
    println!("lower and upper bounds — the curse of dimensionality of Theorem 1.");
}
