//! Quickstart: the paper's headline phenomenon in one run each.
//!
//! Trains the d = 69 logistic model on the phishing-like dataset in four
//! configurations (the cells of Fig. 2) and prints the final losses and
//! accuracies:
//!
//! 1. no DP, no attack (averaging, 11 honest workers);
//! 2. no DP, ALIE attack (MDA, f = 5) — Byzantine resilience alone works;
//! 3. DP ε = 0.2, no attack — privacy alone works;
//! 4. DP ε = 0.2 + ALIE — the combination collapses.
//!
//! Run with: `cargo run --release -p dpbyz-examples --bin quickstart`

use dpbyz::prelude::*;

fn main() {
    // A reduced-size dataset and step count keep this under a few seconds;
    // the bench harness (`dpbyz-bench --bin figures`) runs the full-scale
    // version.
    let steps = 300;
    let dataset_size = 3000;

    // Components are named by registry id: "mda" and "alie" resolve through
    // the extensible component registry (see `dpbyz::registry`).
    let cells: [(&str, Option<f64>, Option<&str>); 4] = [
        ("no DP, no attack      ", None, None),
        ("no DP, ALIE attack    ", None, Some("alie")),
        ("DP(eps=0.2), no attack", Some(0.2), None),
        ("DP(eps=0.2) + ALIE    ", Some(0.2), Some("alie")),
    ];

    println!("dp-byz-sgd quickstart — logistic regression, d = 69, n = 11, f = 5, b = 50");
    println!("(configurations of the paper's Fig. 2; 1 seed, reduced scale)\n");
    println!(
        "{:<24} {:>12} {:>12} {:>10}",
        "configuration", "min loss", "final loss", "accuracy"
    );

    for (label, epsilon, attack) in cells {
        let mut builder = Experiment::builder()
            .batch_size(50)
            .steps(steps)
            .dataset_size(dataset_size);
        if let Some(attack) = attack {
            builder = builder.gar("mda").attack(attack);
        }
        if let Some(epsilon) = epsilon {
            builder = builder.epsilon(epsilon);
        }
        let exp = builder.build().expect("valid configuration");
        let h = exp.run(1).expect("run succeeds");
        println!(
            "{:<24} {:>12.5} {:>12.5} {:>9.1}%",
            label,
            h.min_loss(),
            h.tail_loss(20),
            h.final_accuracy().unwrap_or(f64::NAN) * 100.0
        );
    }

    println!();
    println!("Expected shape (cf. Fig. 2): rows 1-3 reach a similar low loss; row 4");
    println!("(DP + attack) stalls at a visibly higher loss / lower accuracy — the");
    println!("antagonism between DP noise and (alpha,f)-Byzantine resilience.");
}
