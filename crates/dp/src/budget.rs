//! The `(ε, δ)` privacy budget.

use crate::DpError;
use serde::{Deserialize, Serialize};

/// A per-step differential-privacy budget `(ε, δ)`.
///
/// Construction accepts any `ε > 0` and `δ ∈ (0, 1)`; the *classical
/// Gaussian mechanism* additionally requires `ε < 1` (the paper assumes
/// `(ε, δ) ∈ (0,1)²` throughout, Remark 3), which
/// [`PrivacyBudget::is_classical_gaussian_valid`] checks and the Gaussian
/// constructor enforces.
///
/// # Example
///
/// ```
/// use dpbyz_dp::PrivacyBudget;
///
/// let b = PrivacyBudget::new(0.2, 1e-6).unwrap();
/// assert!(b.is_classical_gaussian_valid());
/// assert!(PrivacyBudget::new(-1.0, 1e-6).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyBudget {
    epsilon: f64,
    delta: f64,
}

impl PrivacyBudget {
    /// Creates a budget, validating `ε > 0` (finite) and `δ ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidEpsilon`] / [`DpError::InvalidDelta`] on violation.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, DpError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(DpError::InvalidEpsilon {
                value: epsilon,
                expected: "(0, inf)",
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(DpError::InvalidDelta {
                value: delta,
                expected: "(0, 1)",
            });
        }
        Ok(PrivacyBudget { epsilon, delta })
    }

    /// The privacy parameter ε (privacy/utility trade-off knob).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The failure parameter δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Whether `(ε, δ) ∈ (0,1)²`, the validity domain of the classical
    /// Gaussian mechanism calibration (and the paper's standing assumption).
    pub fn is_classical_gaussian_valid(&self) -> bool {
        self.epsilon < 1.0 && self.delta < 1.0
    }

    /// The constant `C = ε / √(ln(1.25/δ))` from the paper's Table 1
    /// conditions — "negligible w.r.t. b and d" for budgets in `(0,1)²`.
    pub fn c_constant(&self) -> f64 {
        self.epsilon / (1.25 / self.delta).ln().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accepts_paper_budget() {
        // The experimental budget of §5.1: ε = 0.2, δ = 1e-6.
        let b = PrivacyBudget::new(0.2, 1e-6).unwrap();
        assert_eq!(b.epsilon(), 0.2);
        assert_eq!(b.delta(), 1e-6);
        assert!(b.is_classical_gaussian_valid());
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(matches!(
            PrivacyBudget::new(0.0, 1e-6),
            Err(DpError::InvalidEpsilon { .. })
        ));
        assert!(PrivacyBudget::new(-0.5, 1e-6).is_err());
        assert!(PrivacyBudget::new(f64::NAN, 1e-6).is_err());
        assert!(PrivacyBudget::new(f64::INFINITY, 1e-6).is_err());
    }

    #[test]
    fn rejects_bad_delta() {
        assert!(matches!(
            PrivacyBudget::new(0.2, 0.0),
            Err(DpError::InvalidDelta { .. })
        ));
        assert!(PrivacyBudget::new(0.2, 1.0).is_err());
        assert!(PrivacyBudget::new(0.2, -0.1).is_err());
    }

    #[test]
    fn large_epsilon_allowed_but_not_classical() {
        let b = PrivacyBudget::new(5.0, 1e-6).unwrap();
        assert!(!b.is_classical_gaussian_valid());
    }

    #[test]
    fn c_constant_matches_formula() {
        let b = PrivacyBudget::new(0.2, 1e-6).unwrap();
        let expected = 0.2 / (1.25f64 / 1e-6).ln().sqrt();
        assert!((b.c_constant() - expected).abs() < 1e-15);
        // For the paper's budgets C << 1.
        assert!(b.c_constant() < 0.06);
    }

    proptest! {
        #[test]
        fn prop_valid_budgets_roundtrip(e in 1e-6..0.999f64, d in 1e-12..0.999f64) {
            let b = PrivacyBudget::new(e, d).unwrap();
            prop_assert_eq!(b.epsilon(), e);
            prop_assert_eq!(b.delta(), d);
            prop_assert!(b.is_classical_gaussian_valid());
            prop_assert!(b.c_constant() > 0.0);
        }
    }
}
