//! Error type for DP configuration.

use std::fmt;

/// Errors produced while configuring privacy mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// `ε` out of the accepted range.
    InvalidEpsilon {
        /// Supplied value.
        value: f64,
        /// Human-readable constraint, e.g. `"(0, 1)"`.
        expected: &'static str,
    },
    /// `δ` out of the accepted range.
    InvalidDelta {
        /// Supplied value.
        value: f64,
        /// Human-readable constraint.
        expected: &'static str,
    },
    /// A sensitivity / clipping parameter was not positive.
    InvalidSensitivity(f64),
    /// A batch size of zero was supplied.
    ZeroBatch,
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidEpsilon { value, expected } => {
                write!(f, "epsilon must be in {expected}, got {value}")
            }
            DpError::InvalidDelta { value, expected } => {
                write!(f, "delta must be in {expected}, got {value}")
            }
            DpError::InvalidSensitivity(v) => {
                write!(f, "sensitivity must be positive and finite, got {v}")
            }
            DpError::ZeroBatch => write!(f, "batch size must be positive"),
        }
    }
}

impl std::error::Error for DpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DpError::InvalidEpsilon {
            value: 2.0,
            expected: "(0, 1)",
        };
        assert!(e.to_string().contains("epsilon"));
        assert!(DpError::InvalidDelta {
            value: 2.0,
            expected: "(0, 1)"
        }
        .to_string()
        .contains("delta"));
        assert!(DpError::InvalidSensitivity(-1.0).to_string().contains("-1"));
        assert!(DpError::ZeroBatch.to_string().contains("batch"));
    }
}
