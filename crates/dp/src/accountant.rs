//! Privacy composition across training steps.
//!
//! The paper studies the *per-step* budget (ε, δ); the privacy of a whole
//! `T`-step training run follows from composition (§2.3). Three accountants
//! are provided, from loosest to tightest for the Gaussian mechanism:
//!
//! * [`basic_composition`] — `(T·ε, T·δ)` (the classical theorem cited in
//!   §2.3);
//! * [`advanced_composition`] — `(ε·√(2T·ln(1/δ′)) + T·ε·(e^ε − 1),
//!   T·δ + δ′)` (Dwork & Roth, Thm. 3.20);
//! * [`RdpAccountant`] — Rényi-DP / moments-accountant style tracking for
//!   the Gaussian mechanism ("more refined tools, such as the moments
//!   accountant" — §2.3).

use crate::{DpError, PrivacyBudget};

/// Basic sequential composition: `T` runs of an `(ε, δ)`-DP mechanism are
/// `(T·ε, T·δ)`-DP.
///
/// Returns `(epsilon_total, delta_total)` (unvalidated — totals routinely
/// exceed 1, which is the paper's point about long trainings).
pub fn basic_composition(per_step: PrivacyBudget, steps: u32) -> (f64, f64) {
    (
        per_step.epsilon() * steps as f64,
        per_step.delta() * steps as f64,
    )
}

/// Advanced composition (Dwork–Roth Theorem 3.20): `T` runs of an
/// `(ε, δ)`-DP mechanism are `(ε′, T·δ + δ_slack)`-DP with
/// `ε′ = ε·√(2T·ln(1/δ_slack)) + T·ε·(e^ε − 1)`.
///
/// # Errors
///
/// [`DpError::InvalidDelta`] unless `δ_slack ∈ (0, 1)`.
pub fn advanced_composition(
    per_step: PrivacyBudget,
    steps: u32,
    delta_slack: f64,
) -> Result<(f64, f64), DpError> {
    if !(delta_slack > 0.0 && delta_slack < 1.0) {
        return Err(DpError::InvalidDelta {
            value: delta_slack,
            expected: "(0, 1)",
        });
    }
    let e = per_step.epsilon();
    let t = steps as f64;
    let eps_total = e * (2.0 * t * (1.0 / delta_slack).ln()).sqrt() + t * e * (e.exp() - 1.0);
    Ok((eps_total, t * per_step.delta() + delta_slack))
}

/// Rényi-DP accountant for the Gaussian mechanism.
///
/// A Gaussian mechanism with noise multiplier `ν = s/Δ₂` satisfies RDP of
/// order `α` with `ε_RDP(α) = α / (2ν²)`; RDP composes additively over
/// steps, and converts to `(ε, δ)`-DP via
/// `ε(δ) = min_α [ ε_RDP(α)·T + ln(1/δ)/(α − 1) ]`.
///
/// # Example
///
/// ```
/// use dpbyz_dp::accountant::RdpAccountant;
///
/// let mut acc = RdpAccountant::new(2.0).unwrap(); // noise multiplier ν = 2
/// acc.step_many(1000);
/// let eps = acc.epsilon(1e-6);
/// assert!(eps > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RdpAccountant {
    noise_multiplier: f64,
    steps: u64,
}

impl RdpAccountant {
    /// Orders scanned during RDP→DP conversion.
    const ORDERS: [f64; 20] = [
        1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 32.0, 48.0,
        64.0, 96.0, 128.0, 256.0,
    ];

    /// Creates an accountant for a Gaussian mechanism with the given noise
    /// multiplier `ν = s / Δ₂`.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidSensitivity`] for non-positive `ν`.
    pub fn new(noise_multiplier: f64) -> Result<Self, DpError> {
        if !(noise_multiplier > 0.0 && noise_multiplier.is_finite()) {
            return Err(DpError::InvalidSensitivity(noise_multiplier));
        }
        Ok(RdpAccountant {
            noise_multiplier,
            steps: 0,
        })
    }

    /// Convenience: the noise multiplier implied by a per-step budget under
    /// the classical calibration, `ν = √(2·ln(1.25/δ)) / ε`.
    ///
    /// # Errors
    ///
    /// Propagates [`RdpAccountant::new`] errors.
    pub fn from_budget(per_step: PrivacyBudget) -> Result<Self, DpError> {
        let nu = (2.0 * (1.25 / per_step.delta()).ln()).sqrt() / per_step.epsilon();
        Self::new(nu)
    }

    /// Records one mechanism invocation.
    pub fn step(&mut self) {
        self.steps += 1;
    }

    /// Records `n` invocations.
    pub fn step_many(&mut self, n: u64) {
        self.steps += n;
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// RDP ε at order `α` after the recorded steps.
    pub fn rdp_epsilon(&self, alpha: f64) -> f64 {
        self.steps as f64 * alpha / (2.0 * self.noise_multiplier * self.noise_multiplier)
    }

    /// Converts the accumulated RDP to an `(ε, δ)`-DP guarantee for the
    /// given `δ`, minimizing over the order grid.
    ///
    /// # Panics
    ///
    /// Panics unless `δ ∈ (0, 1)`.
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        Self::ORDERS
            .iter()
            .map(|&a| self.rdp_epsilon(a) + (1.0 / delta).ln() / (a - 1.0))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_budget() -> PrivacyBudget {
        PrivacyBudget::new(0.2, 1e-6).unwrap()
    }

    #[test]
    fn basic_is_linear() {
        let (e, d) = basic_composition(paper_budget(), 1000);
        assert!((e - 200.0).abs() < 1e-9);
        assert!((d - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn advanced_beats_basic_for_many_steps() {
        let b = paper_budget();
        let (basic_e, _) = basic_composition(b, 1000);
        let (adv_e, adv_d) = advanced_composition(b, 1000, 1e-6).unwrap();
        assert!(adv_e < basic_e, "advanced {adv_e} vs basic {basic_e}");
        assert!(adv_d < 1.0);
    }

    #[test]
    fn advanced_rejects_bad_slack() {
        assert!(advanced_composition(paper_budget(), 10, 0.0).is_err());
        assert!(advanced_composition(paper_budget(), 10, 1.0).is_err());
    }

    #[test]
    fn rdp_beats_advanced_for_long_runs() {
        let b = paper_budget();
        let mut acc = RdpAccountant::from_budget(b).unwrap();
        acc.step_many(1000);
        let rdp_e = acc.epsilon(1e-5);
        let (adv_e, _) = advanced_composition(b, 1000, 1e-5 - 1000.0 * 1e-6 * 0.0).unwrap();
        assert!(rdp_e < adv_e, "rdp {rdp_e} vs advanced {adv_e}");
    }

    #[test]
    fn rdp_grows_linearly_in_steps_at_fixed_order() {
        let mut acc = RdpAccountant::new(2.0).unwrap();
        acc.step_many(10);
        let e10 = acc.rdp_epsilon(4.0);
        acc.step_many(10);
        let e20 = acc.rdp_epsilon(4.0);
        assert!((e20 / e10 - 2.0).abs() < 1e-12);
        assert_eq!(acc.steps(), 20);
    }

    #[test]
    fn rdp_epsilon_monotone_in_steps() {
        let mut acc = RdpAccountant::new(1.5).unwrap();
        acc.step();
        let e1 = acc.epsilon(1e-6);
        acc.step_many(99);
        let e100 = acc.epsilon(1e-6);
        assert!(e100 > e1);
    }

    #[test]
    fn more_noise_means_less_epsilon() {
        let mut a = RdpAccountant::new(1.0).unwrap();
        let mut b = RdpAccountant::new(4.0).unwrap();
        a.step_many(100);
        b.step_many(100);
        assert!(b.epsilon(1e-6) < a.epsilon(1e-6));
    }

    #[test]
    fn new_rejects_bad_multiplier() {
        assert!(RdpAccountant::new(0.0).is_err());
        assert!(RdpAccountant::new(-1.0).is_err());
        assert!(RdpAccountant::new(f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn epsilon_rejects_bad_delta() {
        let acc = RdpAccountant::new(1.0).unwrap();
        let _ = acc.epsilon(0.0);
    }
}
