//! Noise-injection mechanisms.

use crate::{sensitivity, DpError, PrivacyBudget};
use dpbyz_tensor::{Prng, Vector};
use serde::{Deserialize, Serialize};

/// A local randomizer `M_i` applied by each honest worker to its clipped
/// gradient before submission (Eq. 6–7).
pub trait Mechanism: Send + Sync {
    /// Returns `gradient + noise`.
    fn perturb(&self, gradient: &Vector, rng: &mut Prng) -> Vector;

    /// Adds the noise directly into `gradient` — the zero-copy counterpart
    /// of [`Mechanism::perturb`] used by the buffer-reusing worker loop.
    /// Must consume the RNG stream identically to `perturb` and produce
    /// the same coordinates, bit for bit.
    ///
    /// The default delegates to `perturb` (one allocation per call), so
    /// out-of-tree mechanisms keep working unchanged; the built-ins
    /// override it with allocation-free sampling loops.
    fn perturb_in_place(&self, gradient: &mut Vector, rng: &mut Prng) {
        let noisy = self.perturb(gradient, rng);
        *gradient = noisy;
    }

    /// Per-coordinate noise standard deviation (0 for [`NoNoise`]).
    fn per_coordinate_std(&self) -> f64;

    /// Total injected noise energy `E‖y‖²` in dimension `dim` — the `d·s²`
    /// term that Eq. 8 adds to the VN-ratio numerator.
    fn total_noise_variance(&self, dim: usize) -> f64;

    /// Mechanism name for reports.
    fn name(&self) -> &'static str;
}

/// The Gaussian mechanism of Eq. 6: adds `y ~ N(0, I_d·s²)`.
///
/// For a map with L2 sensitivity `Δ₂` and a budget `(ε, δ) ∈ (0,1)²`,
/// `s = Δ₂·√(2·ln(1.25/δ)) / ε` gives `(ε, δ)`-DP
/// (Dwork & Roth 2014, Thm. A.1).
///
/// # Example
///
/// ```
/// use dpbyz_dp::{GaussianMechanism, Mechanism, PrivacyBudget};
///
/// let budget = PrivacyBudget::new(0.2, 1e-6).unwrap();
/// // Paper's Eq. 6: s = 2·G_max·√(2·ln(1.25/δ)) / (b·ε).
/// let mech = GaussianMechanism::for_clipped_gradients(budget, 0.01, 50).unwrap();
/// assert!(mech.per_coordinate_std() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMechanism {
    sigma: f64,
}

impl GaussianMechanism {
    /// Calibrates to a generic L2 sensitivity.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidEpsilon`] if the budget has `ε ≥ 1` (outside the
    /// classical mechanism's validity), [`DpError::InvalidSensitivity`] for
    /// a non-positive sensitivity.
    pub fn calibrate(budget: PrivacyBudget, l2_sensitivity: f64) -> Result<Self, DpError> {
        if !budget.is_classical_gaussian_valid() {
            return Err(DpError::InvalidEpsilon {
                value: budget.epsilon(),
                expected: "(0, 1) for the classical Gaussian mechanism",
            });
        }
        if !(l2_sensitivity > 0.0 && l2_sensitivity.is_finite()) {
            return Err(DpError::InvalidSensitivity(l2_sensitivity));
        }
        let sigma = l2_sensitivity * (2.0 * (1.25 / budget.delta()).ln()).sqrt() / budget.epsilon();
        Ok(GaussianMechanism { sigma })
    }

    /// Eq. 6's calibration for the clipped batch-mean gradient map:
    /// `s = 2·g_max·√(2·ln(1.25/δ)) / (b·ε)`.
    ///
    /// # Errors
    ///
    /// As [`GaussianMechanism::calibrate`], plus [`DpError::ZeroBatch`].
    pub fn for_clipped_gradients(
        budget: PrivacyBudget,
        g_max: f64,
        batch_size: usize,
    ) -> Result<Self, DpError> {
        Self::calibrate(budget, sensitivity::l2_clipped_mean(g_max, batch_size)?)
    }

    /// Builds directly from a noise standard deviation (for tests and
    /// ablations).
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidSensitivity`] for negative/non-finite `sigma`.
    pub fn with_sigma(sigma: f64) -> Result<Self, DpError> {
        if !(sigma >= 0.0 && sigma.is_finite()) {
            return Err(DpError::InvalidSensitivity(sigma));
        }
        Ok(GaussianMechanism { sigma })
    }

    /// The calibrated per-coordinate noise std `s`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Mechanism for GaussianMechanism {
    fn perturb(&self, gradient: &Vector, rng: &mut Prng) -> Vector {
        gradient + &rng.normal_vector(gradient.dim(), self.sigma)
    }

    fn perturb_in_place(&self, gradient: &mut Vector, rng: &mut Prng) {
        // Same per-coordinate draw order as `normal_vector`, added in
        // place: the stream and the sums match `perturb` bit for bit.
        for x in gradient.as_mut_slice() {
            *x += rng.normal(0.0, self.sigma);
        }
    }

    fn per_coordinate_std(&self) -> f64 {
        self.sigma
    }

    fn total_noise_variance(&self, dim: usize) -> f64 {
        dim as f64 * self.sigma * self.sigma
    }

    fn name(&self) -> &'static str {
        "gaussian"
    }
}

/// The Laplace mechanism: adds i.i.d. `Lap(0, scale)` per coordinate,
/// `scale = Δ₁ / ε`, giving pure `ε`-DP.
///
/// For the clipped batch-mean gradient, `Δ₁ = 2·g_max·√d / b`, so the
/// per-coordinate noise already carries a `√d` factor and the total noise
/// energy grows as `d²` — Remark 3's observation that switching mechanisms
/// does not rescue the DP/Byzantine combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaplaceMechanism {
    scale: f64,
}

impl LaplaceMechanism {
    /// Calibrates to an L1 sensitivity and a pure-DP `ε`.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidEpsilon`] for non-positive `ε`,
    /// [`DpError::InvalidSensitivity`] for non-positive sensitivity.
    pub fn calibrate(epsilon: f64, l1_sensitivity: f64) -> Result<Self, DpError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(DpError::InvalidEpsilon {
                value: epsilon,
                expected: "(0, inf)",
            });
        }
        if !(l1_sensitivity > 0.0 && l1_sensitivity.is_finite()) {
            return Err(DpError::InvalidSensitivity(l1_sensitivity));
        }
        Ok(LaplaceMechanism {
            scale: l1_sensitivity / epsilon,
        })
    }

    /// Calibration for the clipped batch-mean gradient map in dimension
    /// `dim`.
    ///
    /// # Errors
    ///
    /// As [`LaplaceMechanism::calibrate`] plus [`DpError::ZeroBatch`].
    pub fn for_clipped_gradients(
        epsilon: f64,
        g_max: f64,
        batch_size: usize,
        dim: usize,
    ) -> Result<Self, DpError> {
        Self::calibrate(
            epsilon,
            sensitivity::l1_clipped_mean(g_max, batch_size, dim)?,
        )
    }

    /// The noise scale `b` of `Lap(0, b)`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Mechanism for LaplaceMechanism {
    fn perturb(&self, gradient: &Vector, rng: &mut Prng) -> Vector {
        gradient + &rng.laplace_vector(gradient.dim(), self.scale)
    }

    fn perturb_in_place(&self, gradient: &mut Vector, rng: &mut Prng) {
        for x in gradient.as_mut_slice() {
            *x += rng.laplace(self.scale);
        }
    }

    fn per_coordinate_std(&self) -> f64 {
        // Var[Lap(0, b)] = 2 b².
        self.scale * 2f64.sqrt()
    }

    fn total_noise_variance(&self, dim: usize) -> f64 {
        dim as f64 * 2.0 * self.scale * self.scale
    }

    fn name(&self) -> &'static str {
        "laplace"
    }
}

/// The identity mechanism — no privacy, no noise. Used by all of the
/// paper's "without privacy noise" baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NoNoise;

impl Mechanism for NoNoise {
    fn perturb(&self, gradient: &Vector, _rng: &mut Prng) -> Vector {
        gradient.clone()
    }

    fn perturb_in_place(&self, _gradient: &mut Vector, _rng: &mut Prng) {}

    fn per_coordinate_std(&self) -> f64 {
        0.0
    }

    fn total_noise_variance(&self, _dim: usize) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::stats::Welford;

    fn paper_budget() -> PrivacyBudget {
        PrivacyBudget::new(0.2, 1e-6).unwrap()
    }

    #[test]
    fn gaussian_sigma_matches_eq6() {
        // s = 2·G_max·√(2·ln(1.25/δ)) / (b·ε)
        let mech = GaussianMechanism::for_clipped_gradients(paper_budget(), 0.01, 50).unwrap();
        let expected = 2.0 * 0.01 * (2.0 * (1.25f64 / 1e-6).ln()).sqrt() / (50.0 * 0.2);
        assert!((mech.sigma() - expected).abs() < 1e-15);
    }

    #[test]
    fn gaussian_rejects_large_epsilon() {
        let b = PrivacyBudget::new(2.0, 1e-6).unwrap();
        assert!(matches!(
            GaussianMechanism::calibrate(b, 1.0),
            Err(DpError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn gaussian_noise_variance_is_d_s_squared() {
        let mech = GaussianMechanism::with_sigma(0.5).unwrap();
        assert_eq!(mech.total_noise_variance(100), 25.0);
        assert_eq!(mech.per_coordinate_std(), 0.5);
        assert_eq!(mech.name(), "gaussian");
    }

    #[test]
    fn gaussian_perturb_empirical_std() {
        let mech = GaussianMechanism::with_sigma(0.3).unwrap();
        let mut rng = Prng::seed_from_u64(1);
        let zero = Vector::zeros(1);
        let mut w = Welford::new();
        for _ in 0..30_000 {
            w.push(mech.perturb(&zero, &mut rng)[0]);
        }
        assert!(w.mean().abs() < 0.01, "mean {}", w.mean());
        assert!(
            (w.sample_std() - 0.3).abs() < 0.01,
            "std {}",
            w.sample_std()
        );
    }

    #[test]
    fn gaussian_perturb_preserves_signal() {
        let mech = GaussianMechanism::with_sigma(0.01).unwrap();
        let mut rng = Prng::seed_from_u64(2);
        let g = Vector::from(vec![5.0, -5.0]);
        let noisy = mech.perturb(&g, &mut rng);
        assert!(noisy.l2_distance(&g) < 0.2);
    }

    #[test]
    fn laplace_scale_and_variance() {
        let mech = LaplaceMechanism::calibrate(0.5, 2.0).unwrap();
        assert_eq!(mech.scale(), 4.0);
        // Var per coordinate = 2·scale² = 32; total over 3 dims = 96.
        assert!((mech.total_noise_variance(3) - 96.0).abs() < 1e-12);
        assert_eq!(mech.name(), "laplace");
    }

    #[test]
    fn laplace_for_gradients_carries_sqrt_d() {
        let m4 = LaplaceMechanism::for_clipped_gradients(0.2, 0.01, 50, 4).unwrap();
        let m16 = LaplaceMechanism::for_clipped_gradients(0.2, 0.01, 50, 16).unwrap();
        assert!((m16.scale() / m4.scale() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn laplace_empirical_variance() {
        let mech = LaplaceMechanism::calibrate(1.0, 1.0).unwrap();
        let mut rng = Prng::seed_from_u64(3);
        let zero = Vector::zeros(1);
        let mut w = Welford::new();
        for _ in 0..40_000 {
            w.push(mech.perturb(&zero, &mut rng)[0]);
        }
        // Var = 2·1² = 2.
        assert!(
            (w.sample_variance() - 2.0).abs() < 0.1,
            "var {}",
            w.sample_variance()
        );
    }

    #[test]
    fn no_noise_is_identity() {
        let mech = NoNoise;
        let mut rng = Prng::seed_from_u64(4);
        let g = Vector::from(vec![1.0, 2.0]);
        assert_eq!(mech.perturb(&g, &mut rng), g);
        assert_eq!(mech.total_noise_variance(10), 0.0);
        assert_eq!(mech.per_coordinate_std(), 0.0);
        assert_eq!(mech.name(), "none");
    }

    #[test]
    fn perturb_in_place_matches_perturb_bitwise() {
        let mechs: Vec<Box<dyn Mechanism>> = vec![
            Box::new(NoNoise),
            Box::new(GaussianMechanism::with_sigma(0.7).unwrap()),
            Box::new(LaplaceMechanism::calibrate(0.5, 1.0).unwrap()),
        ];
        for m in &mechs {
            let g = Vector::from(vec![1.0, -2.5, 0.25, 1e6]);
            let allocating = m.perturb(&g, &mut Prng::seed_from_u64(9));
            let mut in_place = g.clone();
            let mut rng = Prng::seed_from_u64(9);
            m.perturb_in_place(&mut in_place, &mut rng);
            for (a, b) in allocating.iter().zip(in_place.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} diverged", m.name());
            }
            // The in-place path must consume the RNG stream identically.
            let mut rng2 = Prng::seed_from_u64(9);
            let _ = m.perturb(&g, &mut rng2);
            assert_eq!(rng.uniform().to_bits(), rng2.uniform().to_bits());
        }
    }

    #[test]
    fn mechanisms_are_object_safe() {
        let mechs: Vec<Box<dyn Mechanism>> = vec![
            Box::new(NoNoise),
            Box::new(GaussianMechanism::with_sigma(0.1).unwrap()),
            Box::new(LaplaceMechanism::calibrate(0.5, 1.0).unwrap()),
        ];
        let mut rng = Prng::seed_from_u64(5);
        let g = Vector::zeros(3);
        for m in &mechs {
            assert_eq!(m.perturb(&g, &mut rng).dim(), 3);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_sigma_monotone_in_epsilon(
                e1 in 0.01..0.99f64,
                e2 in 0.01..0.99f64,
                d in 1e-9..1e-3f64,
            ) {
                let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
                let tight = GaussianMechanism::calibrate(
                    PrivacyBudget::new(lo, d).unwrap(), 1.0).unwrap();
                let loose = GaussianMechanism::calibrate(
                    PrivacyBudget::new(hi, d).unwrap(), 1.0).unwrap();
                // More privacy (smaller ε) never means less noise.
                prop_assert!(tight.sigma() >= loose.sigma());
            }

            #[test]
            fn prop_sigma_monotone_in_delta(
                e in 0.01..0.99f64,
                d1 in 1e-12..0.9f64,
                d2 in 1e-12..0.9f64,
            ) {
                let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
                let strict = GaussianMechanism::calibrate(
                    PrivacyBudget::new(e, lo).unwrap(), 1.0).unwrap();
                let lax = GaussianMechanism::calibrate(
                    PrivacyBudget::new(e, hi).unwrap(), 1.0).unwrap();
                prop_assert!(strict.sigma() >= lax.sigma());
            }

            #[test]
            fn prop_sigma_linear_in_sensitivity(
                e in 0.01..0.99f64,
                s in 0.001..100.0f64,
            ) {
                let b = PrivacyBudget::new(e, 1e-6).unwrap();
                let one = GaussianMechanism::calibrate(b, 1.0).unwrap();
                let scaled = GaussianMechanism::calibrate(b, s).unwrap();
                prop_assert!((scaled.sigma() / one.sigma() - s).abs() < 1e-9 * s.max(1.0));
            }

            #[test]
            fn prop_laplace_variance_formula(scale in 0.01..100.0f64, dim in 1usize..256) {
                let m = LaplaceMechanism { scale };
                let total = m.total_noise_variance(dim);
                prop_assert!((total - dim as f64 * 2.0 * scale * scale).abs() < 1e-6 * total);
            }
        }
    }

    #[test]
    fn sigma_scaling_in_batch_and_epsilon() {
        // s ∝ 1/(b·ε): doubling either halves the noise.
        let b = paper_budget();
        let base = GaussianMechanism::for_clipped_gradients(b, 0.01, 50).unwrap();
        let big_batch = GaussianMechanism::for_clipped_gradients(b, 0.01, 100).unwrap();
        assert!((base.sigma() / big_batch.sigma() - 2.0).abs() < 1e-12);

        let loose = PrivacyBudget::new(0.4, 1e-6).unwrap();
        let loose_mech = GaussianMechanism::for_clipped_gradients(loose, 0.01, 50).unwrap();
        assert!((base.sigma() / loose_mech.sigma() - 2.0).abs() < 1e-12);
    }
}
