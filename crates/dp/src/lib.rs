//! Differential-privacy substrate for `dp-byz-sgd`.
//!
//! Implements the worker-local noise-injection scheme of the paper's §2.3:
//! every honest worker clips its stochastic gradient to L2 norm `G_max`,
//! then adds noise calibrated to the sensitivity of the batch-mean gradient
//! map `h` (Eq. 4–5) before sending it to the honest-but-curious server.
//!
//! * [`PrivacyBudget`] — a validated per-step `(ε, δ)` pair.
//! * [`GaussianMechanism`] — Eq. 6: `s = 2·G_max·√(2·ln(1.25/δ)) / (b·ε)`,
//!   giving `(ε, δ)`-DP for `(ε, δ) ∈ (0,1)²`.
//! * [`LaplaceMechanism`] — the ε-DP alternative mentioned in Remark 3.
//! * [`NoNoise`] — the identity mechanism (the paper's no-DP baselines).
//! * [`accountant`] — basic, advanced, and RDP (moments-accountant style)
//!   composition across the `T` training steps.
//!
//! # Example
//!
//! ```
//! use dpbyz_dp::{GaussianMechanism, Mechanism, PrivacyBudget};
//! use dpbyz_tensor::{Prng, Vector};
//!
//! let budget = PrivacyBudget::new(0.2, 1e-6).unwrap();
//! let mech = GaussianMechanism::for_clipped_gradients(budget, 0.01, 50).unwrap();
//! let mut rng = Prng::seed_from_u64(0);
//! let clipped = Vector::from(vec![0.005, -0.003]);
//! let noisy = mech.perturb(&clipped, &mut rng);
//! assert_eq!(noisy.dim(), 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod accountant;
pub mod amplification;
mod budget;
mod error;
mod mechanism;
pub mod sensitivity;

pub use budget::PrivacyBudget;
pub use error::DpError;
pub use mechanism::{GaussianMechanism, LaplaceMechanism, Mechanism, NoNoise};
