//! Privacy amplification by shuffling — the paper's §7 future-work
//! direction \[44\] (Erlingsson et al., SODA 2019), implemented.
//!
//! If each of `n` workers applies an `ε₀`-local randomizer and an anonymous
//! shuffler permutes the reports before the curious server sees them, the
//! shuffled collection satisfies *central* `(ε, δ)`-DP with
//!
//! ```text
//! ε = 12·ε₀·√(ln(1/δ) / n)        (valid for ε₀ ≤ 1/2, n ≥ 1000·ln(1/δ))
//! ```
//!
//! The interesting implication for this paper: amplification works in the
//! *other direction* too — to hit a fixed central target ε with a shuffler,
//! each worker may use a larger local ε₀ = ε·√n / (12·√ln(1/δ)), i.e.
//! **less local noise**, relaxing the VN-ratio pressure of Eq. 8 by a
//! factor √n. The calculators below quantify exactly that trade.

use crate::DpError;

/// Central ε after shuffling `n` reports from `ε₀`-local randomizers, at
/// failure probability `δ` (Erlingsson et al., Theorem 1 constants).
///
/// # Errors
///
/// [`DpError::InvalidEpsilon`] if `ε₀ > 1/2` (outside the theorem's
/// validity) or non-positive, [`DpError::InvalidDelta`] for `δ ∉ (0, 1)`
/// or `n < 1000·ln(1/δ)` (the theorem's population requirement, folded
/// into the delta error as it is a joint condition).
pub fn shuffled_central_epsilon(eps_local: f64, n: usize, delta: f64) -> Result<f64, DpError> {
    if !(eps_local > 0.0 && eps_local <= 0.5) {
        return Err(DpError::InvalidEpsilon {
            value: eps_local,
            expected: "(0, 1/2] for shuffle amplification",
        });
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(DpError::InvalidDelta {
            value: delta,
            expected: "(0, 1)",
        });
    }
    let ln_inv_delta = (1.0 / delta).ln();
    if (n as f64) < 1000.0 * ln_inv_delta {
        return Err(DpError::InvalidDelta {
            value: delta,
            expected: "n >= 1000*ln(1/delta) for shuffle amplification",
        });
    }
    Ok(12.0 * eps_local * (ln_inv_delta / n as f64).sqrt())
}

/// The largest local ε₀ each worker may spend so that shuffling `n`
/// reports still meets a central target `(ε, δ)` — the noise *relaxation*
/// a shuffler buys. Capped at the theorem's 1/2 validity limit.
///
/// # Errors
///
/// Same domain errors as [`shuffled_central_epsilon`].
pub fn local_epsilon_budget(eps_central: f64, n: usize, delta: f64) -> Result<f64, DpError> {
    if !(eps_central > 0.0 && eps_central.is_finite()) {
        return Err(DpError::InvalidEpsilon {
            value: eps_central,
            expected: "(0, inf)",
        });
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(DpError::InvalidDelta {
            value: delta,
            expected: "(0, 1)",
        });
    }
    let ln_inv_delta = (1.0 / delta).ln();
    if (n as f64) < 1000.0 * ln_inv_delta {
        return Err(DpError::InvalidDelta {
            value: delta,
            expected: "n >= 1000*ln(1/delta) for shuffle amplification",
        });
    }
    Ok((eps_central * (n as f64 / ln_inv_delta).sqrt() / 12.0).min(0.5))
}

/// Privacy amplification by Poisson subsampling: running an `ε`-DP
/// mechanism on a `q`-subsample of the data is
/// `ln(1 + q·(e^ε − 1))`-DP (with `δ' = q·δ`).
///
/// This is the lens through which mini-batch sampling itself buys privacy:
/// a worker whose batch is a `q = b/N` Poisson sample of its local dataset
/// gets a per-step budget roughly `q·ε` for small `ε` — context for why
/// per-step budgets in `(0, 1)` are attainable at all in practice.
///
/// # Errors
///
/// [`DpError::InvalidEpsilon`] for non-positive `ε`,
/// [`DpError::InvalidDelta`] for `q ∉ (0, 1]`.
pub fn subsampled_epsilon(eps: f64, sampling_rate: f64) -> Result<f64, DpError> {
    if !(eps > 0.0 && eps.is_finite()) {
        return Err(DpError::InvalidEpsilon {
            value: eps,
            expected: "(0, inf)",
        });
    }
    if !(sampling_rate > 0.0 && sampling_rate <= 1.0) {
        return Err(DpError::InvalidDelta {
            value: sampling_rate,
            expected: "(0, 1] as a sampling rate",
        });
    }
    Ok((1.0 + sampling_rate * (eps.exp() - 1.0)).ln())
}

/// By what factor shuffling shrinks the per-coordinate Gaussian noise std
/// needed for a central target `(ε, δ)`, relative to pure local DP
/// (`s ∝ 1/ε₀`): `relaxation = ε₀(shuffled) / ε₀(local-only)`.
///
/// Returns `None` when amplification does not apply (domain violations).
pub fn noise_reduction_factor(eps_central: f64, n: usize, delta: f64) -> Option<f64> {
    let relaxed = local_epsilon_budget(eps_central, n, delta).ok()?;
    Some(relaxed / eps_central)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_shrinks_epsilon() {
        // 100k workers at ε₀ = 0.5, δ = 1e-6.
        let eps = shuffled_central_epsilon(0.5, 100_000, 1e-6).unwrap();
        assert!(eps < 0.5, "no amplification: {eps}");
        // 12·0.5·√(13.8/1e5) ≈ 0.0705.
        assert!((eps - 12.0 * 0.5 * (13.815_510_6f64 / 1e5).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn amplification_scales_as_inverse_sqrt_n() {
        let e1 = shuffled_central_epsilon(0.5, 100_000, 1e-6).unwrap();
        let e2 = shuffled_central_epsilon(0.5, 400_000, 1e-6).unwrap();
        assert!((e1 / e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_out_of_domain() {
        assert!(shuffled_central_epsilon(0.6, 100_000, 1e-6).is_err());
        assert!(shuffled_central_epsilon(0.0, 100_000, 1e-6).is_err());
        assert!(shuffled_central_epsilon(0.5, 100, 1e-6).is_err()); // n too small
        assert!(shuffled_central_epsilon(0.5, 100_000, 0.0).is_err());
    }

    #[test]
    fn local_budget_inverts_the_bound() {
        let n = 1_000_000;
        let delta = 1e-6;
        let local = local_epsilon_budget(0.2, n, delta).unwrap();
        if local < 0.5 {
            let central = shuffled_central_epsilon(local, n, delta).unwrap();
            assert!((central - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn local_budget_caps_at_half() {
        // Enormous populations would allow ε₀ > 1/2; the theorem caps it.
        let local = local_epsilon_budget(0.4, 100_000_000, 1e-6).unwrap();
        assert_eq!(local, 0.5);
    }

    #[test]
    fn noise_reduction_grows_with_population() {
        // A small central target keeps ε₀ below the 1/2 cap so the √n
        // scaling is visible.
        let f_small = noise_reduction_factor(0.01, 100_000, 1e-6).unwrap();
        let f_large = noise_reduction_factor(0.01, 1_000_000, 1e-6).unwrap();
        assert!(f_large > f_small * 3.0, "{f_small} vs {f_large}");
        // Relaxation means ε₀ ≥ ε_central ⇒ factor ≥ 1 in this regime.
        assert!(f_small > 1.0);
    }

    #[test]
    fn noise_reduction_none_on_domain_violation() {
        assert!(noise_reduction_factor(0.2, 10, 1e-6).is_none());
    }

    #[test]
    fn subsampling_identity_at_full_rate() {
        let e = subsampled_epsilon(0.7, 1.0).unwrap();
        assert!((e - 0.7).abs() < 1e-12);
    }

    #[test]
    fn subsampling_scales_linearly_for_small_epsilon() {
        // ln(1 + q(e^ε − 1)) ≈ q·ε for small ε.
        let e = subsampled_epsilon(0.01, 0.1).unwrap();
        assert!((e - 0.001).abs() < 1e-5, "got {e}");
    }

    #[test]
    fn subsampling_monotone_in_rate() {
        let lo = subsampled_epsilon(1.0, 0.1).unwrap();
        let hi = subsampled_epsilon(1.0, 0.5).unwrap();
        assert!(lo < hi && hi < 1.0);
    }

    #[test]
    fn subsampling_rejects_bad_inputs() {
        assert!(subsampled_epsilon(0.0, 0.5).is_err());
        assert!(subsampled_epsilon(1.0, 0.0).is_err());
        assert!(subsampled_epsilon(1.0, 1.5).is_err());
    }
}
