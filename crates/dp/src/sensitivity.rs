//! Sensitivity of the batch-mean gradient map.
//!
//! The map `h : ξ → (1/b)·Σ_j ∇Q(w, x_j)` (Eq. 4) is what each worker
//! releases. Two batches are *adjacent* when they differ in at most one
//! sample (the paper's §2.3 definition); with every per-sample gradient
//! clipped to L2 norm `g_max`, replacing one sample moves the mean by at
//! most `2·g_max / b` in L2 (Eq. 5's bound `Δh ≤ 2·G_max/b`).

use crate::DpError;

/// L2 sensitivity of the clipped batch-mean gradient: `2·g_max / b`.
///
/// # Errors
///
/// [`DpError::InvalidSensitivity`] if `g_max` is not positive/finite,
/// [`DpError::ZeroBatch`] if `batch_size == 0`.
pub fn l2_clipped_mean(g_max: f64, batch_size: usize) -> Result<f64, DpError> {
    if !(g_max > 0.0 && g_max.is_finite()) {
        return Err(DpError::InvalidSensitivity(g_max));
    }
    if batch_size == 0 {
        return Err(DpError::ZeroBatch);
    }
    Ok(2.0 * g_max / batch_size as f64)
}

/// L1 sensitivity of the clipped batch-mean gradient in dimension `d`:
/// `2·g_max·√d / b` (via `‖v‖₁ ≤ √d·‖v‖₂`). This is what the Laplace
/// mechanism must be calibrated to — note the extra `√d`, which is why
/// Laplace noise makes the paper's dimensionality problem *worse*.
///
/// # Errors
///
/// Same as [`l2_clipped_mean`].
pub fn l1_clipped_mean(g_max: f64, batch_size: usize, dim: usize) -> Result<f64, DpError> {
    Ok(l2_clipped_mean(g_max, batch_size)? * (dim as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_formula() {
        // Paper's experimental setting: G_max = 0.01, b = 50.
        let s = l2_clipped_mean(0.01, 50).unwrap();
        assert!((s - 0.0004).abs() < 1e-15);
    }

    #[test]
    fn l2_shrinks_with_batch() {
        let s10 = l2_clipped_mean(1.0, 10).unwrap();
        let s100 = l2_clipped_mean(1.0, 100).unwrap();
        assert!((s10 / s100 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn l1_carries_sqrt_d() {
        let l2 = l2_clipped_mean(0.5, 20).unwrap();
        let l1 = l1_clipped_mean(0.5, 20, 64).unwrap();
        assert!((l1 - 8.0 * l2).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid() {
        assert!(matches!(
            l2_clipped_mean(0.0, 10),
            Err(DpError::InvalidSensitivity(_))
        ));
        assert!(l2_clipped_mean(-1.0, 10).is_err());
        assert!(l2_clipped_mean(f64::NAN, 10).is_err());
        assert!(matches!(l2_clipped_mean(1.0, 0), Err(DpError::ZeroBatch)));
    }
}
