//! `dpbyz` — the facade crate for the *DP + Byzantine SGD* workspace.
//!
//! One dependency, one import, the whole system: the fluent
//! [`ExperimentBuilder`], the extensible component [`registry`], streaming
//! [`RunObserver`]s, and re-exports of every subsystem crate
//! (reproducing *Differential Privacy and Byzantine Resilience in SGD: Do
//! They Add Up?*, Guerraoui et al., PODC 2021).
//!
//! # Quickstart
//!
//! Build an experiment from string component ids, run it over seeds:
//!
//! ```
//! use dpbyz::prelude::*;
//!
//! let exp = Experiment::builder()
//!     .steps(20)
//!     .dataset_size(300)
//!     .gar("mda")
//!     .attack("alie")
//!     .epsilon(0.2)
//!     .build()
//!     .unwrap();
//! let histories = exp.run_seeds(&[1, 2, 3]).unwrap();
//! assert_eq!(histories.len(), 3);
//! assert_eq!(histories[0].train_loss.len(), 20);
//! ```
//!
//! # Streaming metrics
//!
//! Attach a [`RunObserver`] to consume per-step telemetry while the run
//! executes (observation is passive — histories stay bit-identical):
//!
//! ```
//! use dpbyz::prelude::*;
//! use std::sync::{Arc, Mutex};
//!
//! let exp = Experiment::builder()
//!     .steps(5)
//!     .dataset_size(200)
//!     .build()
//!     .unwrap();
//! let streamed = Arc::new(Mutex::new(Vec::new()));
//! let sink = streamed.clone();
//! let history = exp
//!     .run_with_observer(
//!         1,
//!         Box::new(FnObserver::new(move |m: &StepMetrics<'_>| {
//!             sink.lock().unwrap().push(m.train_loss);
//!         })),
//!     )
//!     .unwrap();
//! assert_eq!(*streamed.lock().unwrap(), history.train_loss);
//! ```
//!
//! # Extending the component zoo
//!
//! Third-party GARs/attacks/mechanisms register by id — no core edits:
//!
//! ```
//! use dpbyz::prelude::*;
//! use dpbyz::gars::{Gar, GarError};
//! use dpbyz::tensor::Vector;
//! use std::sync::Arc;
//!
//! struct Clamp;
//! impl Gar for Clamp {
//!     fn name(&self) -> &'static str { "clamp-demo" }
//!     fn aggregate(&self, g: &[Vector], _f: usize) -> Result<Vector, GarError> {
//!         Vector::mean(g).map_err(|_| GarError::Empty)
//!     }
//!     fn kappa(&self, _n: usize, _f: usize) -> Option<f64> { None }
//!     fn max_byzantine(&self, _n: usize) -> usize { 0 }
//! }
//!
//! register_gar("clamp-demo", |_spec| Ok(Arc::new(Clamp))).unwrap();
//! let exp = Experiment::builder()
//!     .steps(3)
//!     .dataset_size(200)
//!     .gar("clamp-demo")
//!     .build()
//!     .unwrap();
//! assert_eq!(exp.run(1).unwrap().train_loss.len(), 3);
//! ```
//!
//! # Scenario packs
//!
//! Curated GAR × attack studies resolve by id too: a
//! [`ScenarioPack`] is a registered bundle of labelled cells that
//! [`SweepBuilder::with_pack`](sweep::SweepBuilder::with_pack) expands
//! over any base experiment (see the [`scenarios`] catalog for every
//! built-in pack and component id):
//!
//! ```
//! use dpbyz::prelude::*;
//!
//! let results = SweepBuilder::over(Experiment::builder().steps(3).dataset_size(200))
//!     .with_pack("paper-core") // the seed §5 grid: clean/ALIE/FoE × DP on/off
//!     .seeds(&[1])
//!     .run()
//!     .unwrap();
//! assert_eq!(results.cells.len(), 6);
//! assert!(results.get("paper-core/mda/alie/dp").is_some());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

// ---- the redesigned experiment API --------------------------------------
/// The parallel sweep executor: [`SweepBuilder`](sweep::SweepBuilder)
/// fans a grid of experiment cells × seeds over a work-sharing thread
/// pool and returns histories in deterministic grid order, bit-identical
/// to the serial loop. See the module docs for the grid API.
pub mod sweep {
    pub use dpbyz_core::sweep::{
        CellRun, JobInfo, ObserverFactory, SweepBuilder, SweepCell, SweepEvent, SweepResults,
    };
}
pub use dpbyz_core::pack::{
    register_scenario_pack, register_scenario_pack_with, scenario_pack, scenario_pack_ids,
    PackCell, ScenarioPack,
};
pub use dpbyz_core::pipeline::{FigureConfig, PipelineError, Workload};
pub use dpbyz_core::registry::{
    self, attack_ids, build_attack, build_gar, build_mechanism, gar_ids, mechanism_capabilities,
    mechanism_ids, register_attack, register_gar, register_mechanism, register_mechanism_with,
    MechanismCapabilities,
};
pub use dpbyz_core::{
    AttackKind, ComponentSpec, Experiment, ExperimentBuilder, GarKind, MechanismKind, ParamValue,
    Registry, RegistryError,
};

/// The scenario catalog (`docs/SCENARIOS.md`, rendered as rustdoc): every
/// registered GAR, attack, mechanism, and scenario pack — ids,
/// parameters, semantics, paper references — with runnable snippets that
/// `cargo test --doc` executes, so the catalog cannot go stale.
#[doc = include_str!("../../../docs/SCENARIOS.md")]
pub mod scenarios {}

// ---- engines and telemetry ----------------------------------------------
pub use dpbyz_server::{
    AttackVisibility, BatchGrowth, ConfigError, FnObserver, LrSchedule, MomentumMode, RunHistory,
    RunObserver, RunScratch, SeedSummary, StepMetrics, ThreadedTrainer, Trainer, TrainingConfig,
    TrainingConfigBuilder,
};

// ---- privacy ------------------------------------------------------------
pub use dpbyz_dp::PrivacyBudget;

// ---- theory and analysis ------------------------------------------------
pub use dpbyz_core::{analysis, report, theory};

// ---- subsystem crates, namespaced ---------------------------------------
/// Byzantine attack implementations and the `Attack` trait.
pub use dpbyz_attacks as attacks;
/// Dataset substrate: LIBSVM parsing, synthetic generators, samplers.
pub use dpbyz_data as data;
/// Differential-privacy mechanisms, budgets, accountants, amplification.
pub use dpbyz_dp as dp;
/// Aggregation rules and the `Gar` trait.
pub use dpbyz_gars as gars;
/// Differentiable models and losses.
pub use dpbyz_models as models;
/// The multi-process distributed engine: TCP coordinator/worker
/// deployment behind the `"tcp"` backend id (call
/// [`net::install`] once to register it).
pub use dpbyz_net as net;
/// The parameter-server simulator crate.
pub use dpbyz_server as server;
/// Dense linear algebra, statistics, and seeded randomness.
pub use dpbyz_tensor as tensor;

/// One-line import for experiment scripts: the builder, kinds, registry
/// registration hooks, observers, and run artifacts.
pub mod prelude {
    pub use crate::sweep::{CellRun, SweepBuilder, SweepEvent, SweepResults};
    pub use crate::{
        register_attack, register_gar, register_mechanism, register_mechanism_with,
        register_scenario_pack, register_scenario_pack_with, scenario_pack, scenario_pack_ids,
        AttackKind, ComponentSpec, Experiment, ExperimentBuilder, FigureConfig, FnObserver,
        GarKind, LrSchedule, MechanismCapabilities, MechanismKind, MomentumMode, PackCell,
        PipelineError, PrivacyBudget, RunHistory, RunObserver, ScenarioPack, SeedSummary,
        StepMetrics, TrainingConfig, Workload,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn builder_runs_through_facade() {
        let exp = Experiment::builder()
            .steps(8)
            .dataset_size(250)
            .gar("median")
            .attack("sign-flip")
            .build()
            .unwrap();
        let h = exp.run(1).unwrap();
        assert_eq!(h.train_loss.len(), 8);
    }

    #[test]
    fn observer_streams_every_step_and_matches_history() {
        let exp = Experiment::builder()
            .steps(6)
            .dataset_size(250)
            .build()
            .unwrap();
        let streamed: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = streamed.clone();
        let h = exp
            .run_with_observer(
                3,
                Box::new(FnObserver::new(move |m: &StepMetrics<'_>| {
                    sink.lock().unwrap().push(m.train_loss);
                })),
            )
            .unwrap();
        assert_eq!(*streamed.lock().unwrap(), h.train_loss);
        // Passive observation: the observed run is bit-identical to a
        // plain one.
        assert_eq!(h, exp.run(3).unwrap());
    }

    #[test]
    fn observed_threaded_run_matches_sequential() {
        let mut exp = Experiment::builder()
            .steps(5)
            .dataset_size(250)
            .gar("mda")
            .attack("foe")
            .epsilon(0.2)
            .build()
            .unwrap();
        let seq = exp.run(2).unwrap();
        exp.backend = "threaded".into();
        let steps = Arc::new(Mutex::new(0u32));
        let counter = steps.clone();
        let thr = exp
            .run_with_observer(
                2,
                Box::new(FnObserver::new(move |_m: &StepMetrics<'_>| {
                    *counter.lock().unwrap() += 1;
                })),
            )
            .unwrap();
        assert_eq!(seq, thr);
        assert_eq!(*steps.lock().unwrap(), 5);
    }
}
