//! Plain-text reporting: CSV, Markdown tables, and ASCII line plots.
//!
//! The bench harness uses these to print the same rows and series the
//! paper's tables and figures report, without a plotting stack.

use std::fmt::Write as _;

/// Renders rows as CSV (header first; fields are escaped if they contain
/// commas or quotes).
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&join_csv(
        header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&join_csv(row.clone()));
        out.push('\n');
    }
    out
}

fn join_csv(fields: Vec<String>) -> String {
    fields
        .into_iter()
        .map(|f| {
            if f.contains(',') || f.contains('"') || f.contains('\n') {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders rows as a GitHub-flavoured Markdown table.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// A labelled series for [`ascii_plot`].
#[derive(Debug, Clone)]
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// Y values (X is the index).
    pub values: &'a [f64],
    /// Plot glyph (must be unique across series for a readable plot).
    pub glyph: char,
}

impl<'a> Series<'a> {
    /// Creates a series whose glyph is the label's first character.
    pub fn new(label: &'a str, values: &'a [f64]) -> Self {
        Series {
            label,
            values,
            glyph: label.chars().next().unwrap_or('*'),
        }
    }

    /// Creates a series with an explicit glyph.
    pub fn with_glyph(label: &'a str, values: &'a [f64], glyph: char) -> Self {
        Series {
            label,
            values,
            glyph,
        }
    }
}

/// Renders one or more series as an ASCII line plot (log-friendly: pass
/// pre-transformed values if you want a log axis). Non-finite values are
/// skipped.
pub fn ascii_plot(series: &[Series<'_>], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 2, "plot too small");
    let finite: Vec<f64> = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    if finite.is_empty() {
        return String::from("(no finite data)\n");
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let max_len = series.iter().map(|s| s.values.len()).max().unwrap_or(1);

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.glyph;
        for (i, &v) in s.values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let x = if max_len <= 1 {
                0
            } else {
                i * (width - 1) / (max_len - 1)
            };
            let y = ((v - lo) / span * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{hi:>12.4e} ┤");
    for row in grid {
        let _ = writeln!(out, "             │{}", row.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "{lo:>12.4e} ┤{}", "─".repeat(width));
    for s in series {
        let _ = writeln!(out, "  {} = {}", s.glyph, s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escapes_fields() {
        let out = csv(&["a", "b"], &[vec!["1,5".into(), "say \"hi\"".into()]]);
        assert_eq!(out, "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn markdown_table_shape() {
        let out = markdown_table(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("x | y"));
        assert!(lines[1].contains("---"));
        assert!(lines[2].contains("1 | 2"));
    }

    #[test]
    fn ascii_plot_contains_glyphs_and_bounds() {
        let values = [0.0, 1.0, 4.0, 9.0];
        let plot = ascii_plot(&[Series::new("loss", &values)], 20, 6);
        assert!(plot.contains('l'));
        assert!(plot.contains("9.0000e0"));
        assert!(plot.contains("0.0000e0"));
        assert!(plot.contains("l = loss"));
    }

    #[test]
    fn ascii_plot_handles_constant_and_nan() {
        let plot = ascii_plot(&[Series::new("c", &[2.0, f64::NAN, 2.0])], 10, 3);
        assert!(plot.contains('c'));
        let empty = ascii_plot(&[Series::new("e", &[f64::NAN])], 10, 3);
        assert!(empty.contains("no finite data"));
    }
}
