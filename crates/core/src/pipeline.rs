//! The experiment pipeline: declarative, seeded, reproducible runs of the
//! combined DP + Byzantine-resilient SGD system.

use crate::registry::{self, ComponentSpec, RegistryError};
use crate::{AttackKind, GarKind, MechanismKind};
use dpbyz_data::sampler::{BatchSource, DatasetSource, SamplingMode};
use dpbyz_data::synthetic::{self, MeanEstimation, MeanEstimationSource};
use dpbyz_data::Dataset;
use dpbyz_dp::{DpError, PrivacyBudget};
use dpbyz_gars::GarError;
use dpbyz_models::{LogisticRegression, LossKind, Model, QuadraticMean};
use dpbyz_server::{
    ConfigError, LrSchedule, MomentumMode, RunHistory, RunObserver, RunScratch, Trainer,
    TrainingConfig,
};
use dpbyz_tensor::{Prng, Vector};
use std::fmt;
use std::sync::Arc;

/// Errors surfaced while assembling or running an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Invalid training configuration.
    Config(ConfigError),
    /// Invalid privacy configuration.
    Dp(DpError),
    /// The GAR rejected the topology at run time.
    Gar(GarError),
    /// A component id failed to resolve or build through the registry.
    Registry(RegistryError),
    /// Inconsistent specification (message explains).
    Spec(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Config(e) => write!(f, "config: {e}"),
            PipelineError::Dp(e) => write!(f, "privacy: {e}"),
            PipelineError::Gar(e) => write!(f, "aggregation: {e}"),
            PipelineError::Registry(e) => write!(f, "registry: {e}"),
            PipelineError::Spec(m) => write!(f, "spec: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ConfigError> for PipelineError {
    fn from(e: ConfigError) -> Self {
        PipelineError::Config(e)
    }
}
impl From<DpError> for PipelineError {
    fn from(e: DpError) -> Self {
        PipelineError::Dp(e)
    }
}
impl From<GarError> for PipelineError {
    fn from(e: GarError) -> Self {
        PipelineError::Gar(e)
    }
}
impl From<RegistryError> for PipelineError {
    fn from(e: RegistryError) -> Self {
        PipelineError::Registry(e)
    }
}

/// What the workers train on.
#[derive(Debug, Clone)]
pub enum Workload {
    /// The phishing-like synthetic classification task (the documented
    /// substitute for the paper's LIBSVM `phishing` dataset): d = 69
    /// logistic regression with sigmoid-MSE loss.
    PhishingLike {
        /// Seed of the dataset generator (fixed across run seeds so every
        /// seed trains on the same data, as in the paper).
        data_seed: u64,
        /// Total number of examples (the paper's dataset has 11 055).
        size: usize,
    },
    /// A user-provided dataset (e.g. the *real* `phishing` file loaded via
    /// `dpbyz_data::libsvm`): logistic regression over its features.
    Provided {
        /// Training split.
        train: Arc<Dataset>,
        /// Test split.
        test: Arc<Dataset>,
    },
    /// Theorem 1's mean-estimation instance: `Q(w) = ½·E‖w − x‖²` with
    /// `D = N(x̄, σ²/d·I_d)` and `‖x̄‖ = 1` (unit-norm mean keeps `G_max`
    /// d-independent so the measured error scaling is the noise's).
    MeanEstimation {
        /// Dimension `d`.
        dim: usize,
        /// Total sampling std σ.
        sigma: f64,
        /// Seed generating `x̄`.
        data_seed: u64,
    },
}

/// A fully specified experiment: run it with any number of seeds.
///
/// Components are named by registry [`ComponentSpec`]s, so any registered
/// GAR/attack/mechanism — built-in or third-party — can appear here; the
/// `*Kind` enums convert `Into<ComponentSpec>` for the built-ins.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The data/model workload.
    pub workload: Workload,
    /// Topology and hyper-parameters.
    pub config: TrainingConfig,
    /// Aggregation rule (resolved through the GAR registry).
    pub gar: ComponentSpec,
    /// Attack mounted by the `config.n_byzantine` colluders (`None` ⇒ all
    /// workers honest), resolved through the attack registry.
    pub attack: Option<ComponentSpec>,
    /// Per-step privacy budget (`None` ⇒ no DP noise).
    pub budget: Option<PrivacyBudget>,
    /// Noise mechanism, resolved through the mechanism registry with the
    /// calibration context (`epsilon`, `delta`, `g_max`, `batch_size`,
    /// `dim`) injected at run time. While [`Experiment::budget`] is
    /// `None`, mechanisms whose factory declared the `requires_budget`
    /// capability (the built-in `gaussian`/`laplace`, or any third-party
    /// mechanism registered via
    /// [`registry::register_mechanism_with`]
    /// with [`MechanismCapabilities::budget_calibrated`](crate::registry::MechanismCapabilities::budget_calibrated))
    /// degrade to the identity mechanism (the paper's no-DP baselines);
    /// all other registered ids are always resolved as specified.
    pub mechanism: ComponentSpec,
    /// Execution backend, resolved through the engine-backend registry at
    /// run time (`"sequential"`, `"threaded"`, or any registered id —
    /// e.g. `"tcp"` once `dpbyz-net`'s `install()` has run). Resolution
    /// is deliberately deferred to `run`: backends registered after this
    /// experiment was built still resolve, and an unknown id surfaces as
    /// a [`PipelineError::Spec`] naming the available backends instead of
    /// a panic.
    pub backend: ComponentSpec,
    /// `G_max` reference used to *calibrate* the DP noise, when different
    /// from the actual clip threshold (`None` ⇒ use `config.clip`, the
    /// faithful clip-then-noise protocol). The Theorem 1 workload sets
    /// this: its quadratic cost has no global gradient bound (Assumption 1
    /// cannot hold), and the theorem's lower-bound analysis adds noise
    /// without clipping — so it calibrates at a nominal `G_max` while
    /// setting the clip high enough to never bite.
    pub dp_reference_g_max: Option<f64>,
}

/// Knobs of the paper's §5 figure experiments, with §5.1 defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureConfig {
    /// Batch size `b` (Fig. 2: 50, Fig. 3: 10, Fig. 4: 500).
    pub batch_size: usize,
    /// Privacy `ε` (`None` = no DP; the paper's DP panels use 0.2).
    pub epsilon: Option<f64>,
    /// Privacy `δ` (paper: 10⁻⁶).
    pub delta: f64,
    /// The attack, if any. Unattacked runs aggregate with plain averaging
    /// over all `n` honest workers; attacked runs use MDA with `f = 5`
    /// (exactly the paper's protocol).
    pub attack: Option<AttackKind>,
    /// Steps `T` (paper: 1000).
    pub steps: u32,
    /// Synthetic dataset size (paper: 11 055; shrink for quick runs).
    pub dataset_size: usize,
    /// Dataset generator seed.
    pub data_seed: u64,
}

impl Default for FigureConfig {
    fn default() -> Self {
        FigureConfig {
            batch_size: 50,
            epsilon: None,
            delta: 1e-6,
            attack: None,
            steps: 1000,
            dataset_size: synthetic::PHISHING_SIZE,
            data_seed: 0xD1B2_2021,
        }
    }
}

impl Experiment {
    /// Builds one cell of the paper's Figs. 2–4 grid (§5.1 protocol:
    /// n = 11 workers, f = 5, lr = 2, momentum 0.99, `G_max = 10⁻²`,
    /// accuracy every 50 steps; unattacked ⇒ averaging over 11 honest
    /// workers, attacked ⇒ MDA).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Dp`] for an invalid `(ε, δ)`.
    pub fn paper_figure(fig: FigureConfig) -> Result<Self, PipelineError> {
        let budget = match fig.epsilon {
            None => None,
            Some(e) => Some(PrivacyBudget::new(e, fig.delta)?),
        };
        let (n_byz, gar) = if fig.attack.is_some() {
            (5, GarKind::Mda.spec())
        } else {
            (0, GarKind::Average.spec())
        };
        // Momentum lives at the *workers* (El-Mhamdi et al. 2021, the
        // paper's [16] — same authors, same experimental codebase): each
        // honest worker submits its momentum-ed clipped gradient. This is
        // load-bearing for Fig. 2's left panel — worker momentum shrinks
        // the variance-to-norm ratio of the submitted vectors over time,
        // which is what lets MDA survive ALIE without DP; with server-side
        // momentum ALIE defeats MDA even noise-free. The server-side
        // variant remains available as an ablation (`sweep` binary).
        let config = TrainingConfig::builder()
            .workers(11, n_byz)
            .batch_size(fig.batch_size)
            .steps(fig.steps)
            .lr(LrSchedule::Constant(2.0))
            .momentum(0.99)
            .momentum_mode(MomentumMode::Worker)
            .clip(1e-2)
            .eval_every(50)
            .build()?;
        Ok(Experiment {
            workload: Workload::PhishingLike {
                data_seed: fig.data_seed,
                size: fig.dataset_size,
            },
            config,
            gar,
            attack: fig.attack.map(AttackKind::spec),
            budget,
            mechanism: MechanismKind::Gaussian.spec(),
            backend: ComponentSpec::new("sequential"),
            dp_reference_g_max: None,
        })
    }

    /// Builds the Theorem 1 validation workload: mean estimation in
    /// dimension `dim` with a hypothetical ideal GAR stand-in (averaging
    /// over honest workers — the theorem's statement is GAR-agnostic, and
    /// the lower-bound construction uses an honest-output GAR), `γ_t = 1/t`
    /// (λ = 1, α = 0), DP noise calibrated at a nominal `G_max = 2` with
    /// clipping effectively disabled (see
    /// [`Experiment::dp_reference_g_max`]). Use `n_workers = 1` to compare
    /// against the Cramér–Rao lower bound exactly (its construction
    /// observes one noisy gradient per step); more workers divide the
    /// variance by `n`.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Dp`] / [`PipelineError::Config`] on bad inputs.
    pub fn theorem1(
        dim: usize,
        sigma: f64,
        budget: Option<PrivacyBudget>,
        steps: u32,
        batch_size: usize,
        n_workers: usize,
    ) -> Result<Self, PipelineError> {
        let config = TrainingConfig::builder()
            .workers(n_workers, 0)
            .batch_size(batch_size)
            .steps(steps)
            .lr(LrSchedule::InvT { gamma0: 1.0 })
            .momentum(0.0)
            .clip(1e9)
            .eval_every(0)
            .build()?;
        Ok(Experiment {
            workload: Workload::MeanEstimation {
                dim,
                sigma,
                data_seed: 0x7E01,
            },
            config,
            gar: GarKind::Average.spec(),
            attack: None,
            budget,
            mechanism: MechanismKind::Gaussian.spec(),
            backend: ComponentSpec::new("sequential"),
            dp_reference_g_max: Some(2.0),
        })
    }

    /// A paper-protocol figure cell with a *different* aggregation rule
    /// and Byzantine count — the grid the `attack_showdown` example and
    /// the GAR-robustness matrix sweep over. `f` is clamped to the rule's
    /// tolerance at n = 11 (e.g. Krum: 4, Bulyan: 2).
    ///
    /// # Errors
    ///
    /// As [`Experiment::paper_figure`].
    pub fn paper_figure_with_gar(
        fig: FigureConfig,
        gar: GarKind,
        f: usize,
    ) -> Result<Self, PipelineError> {
        let mut exp = Self::paper_figure(fig)?;
        let f = f.min(gar.build().max_byzantine(11));
        exp.gar = gar.spec();
        exp.config.n_byzantine = if exp.attack.is_some() { f } else { 0 };
        Ok(exp)
    }

    /// For [`Workload::MeanEstimation`]: reconstructs the exact sampling
    /// distribution (including `x̄ = w*`), so callers can compute
    /// suboptimality `Q(w) − Q* = ½‖w − x̄‖²` from a run's final
    /// parameters.
    pub fn mean_estimation_instance(&self) -> Option<MeanEstimation> {
        match self.workload {
            Workload::MeanEstimation {
                dim,
                sigma,
                data_seed,
            } => Some(make_mean_estimation(dim, sigma, data_seed)),
            _ => None,
        }
    }

    /// Runs the experiment with one seed.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run(&self, seed: u64) -> Result<RunHistory, PipelineError> {
        self.run_inner(seed, None, &mut RunScratch::new())
    }

    /// Runs the experiment with one seed, streaming per-step metrics into
    /// `observer` while the run executes. Observation is passive: the
    /// produced history is bit-identical to [`Experiment::run`]'s.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run_with_observer(
        &self,
        seed: u64,
        observer: Box<dyn RunObserver>,
    ) -> Result<RunHistory, PipelineError> {
        self.run_inner(seed, Some(observer), &mut RunScratch::new())
    }

    /// Runs the experiment with one seed, recycling the engine buffers in
    /// `scratch` — the cross-job hot path the sweep executor's pool
    /// workers and [`Experiment::run_seeds`] drive. Bit-identical to
    /// [`Experiment::run`] regardless of what a previous run (even of a
    /// different experiment) left in the scratch.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run_with_scratch(
        &self,
        seed: u64,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, PipelineError> {
        self.run_inner(seed, None, scratch)
    }

    pub(crate) fn run_inner(
        &self,
        seed: u64,
        observer: Option<Box<dyn RunObserver>>,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, PipelineError> {
        let backend = crate::engine::build_backend(&self.backend).map_err(|e| match e {
            RegistryError::UnknownId { id, available } => PipelineError::Spec(format!(
                "unknown engine backend `{id}`; available backends: [{}] \
                 (in-process engines are built in; out-of-process backends \
                 register at startup, e.g. dpbyz-net's install() for `tcp`)",
                available.join(", ")
            )),
            other => other.into(),
        })?;
        backend.run(self, seed, observer, scratch)
    }

    /// Materializes the experiment into a ready-to-run [`Trainer`]: the
    /// workload's datasets, model, and per-worker batch sources, the
    /// GAR/attack resolved through their registries, and the noise
    /// mechanism calibrated against the budget (or degraded to the
    /// identity for budget-calibrated mechanisms without one). This is
    /// the single construction path every execution backend shares — an
    /// engine that dismantles the returned trainer (e.g. via
    /// `Trainer::into_distributed_parts`) is guaranteed the same
    /// components, in the same order, as the in-process engines.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn build_trainer(&self) -> Result<Trainer, PipelineError> {
        let (model, sources, test): WorkloadParts = match &self.workload {
            Workload::PhishingLike { data_seed, size } => {
                let mut rng = Prng::seed_from_u64(*data_seed);
                let ds = synthetic::phishing_like(&mut rng, *size);
                let n_train = ((*size as f64) * 0.76).round() as usize;
                let (train, test) = ds
                    .split_at(n_train)
                    .map_err(|e| PipelineError::Spec(format!("dataset too small: {e}")))?;
                let train = Arc::new(train);
                let model = Arc::new(LogisticRegression::new(
                    train.num_features(),
                    LossKind::SigmoidMse,
                ));
                let sources = dataset_sources(&train, self.config.n_workers);
                (model, sources, Some(Arc::new(test)))
            }
            Workload::Provided { train, test } => {
                let model = Arc::new(LogisticRegression::new(
                    train.num_features(),
                    LossKind::SigmoidMse,
                ));
                let sources = dataset_sources(train, self.config.n_workers);
                (model, sources, Some(test.clone()))
            }
            Workload::MeanEstimation {
                dim,
                sigma,
                data_seed,
            } => {
                let dist = make_mean_estimation(*dim, *sigma, *data_seed);
                let model = Arc::new(QuadraticMean::new(*dim));
                let sources: Vec<Box<dyn BatchSource>> = (0..self.config.n_workers)
                    .map(|_| Box::new(MeanEstimationSource(dist.clone())) as Box<dyn BatchSource>)
                    .collect();
                (model, sources, None)
            }
        };

        // Resolve the mechanism through the registry. Mechanisms whose
        // factory declared the `requires_budget` capability (the built-in
        // `gaussian`/`laplace`, plus any third-party budget-calibrated
        // registration) degrade to the identity mechanism when no budget
        // is set (the paper's no-DP baselines); every other mechanism is
        // always resolved as specified, with the calibration context
        // injected for factories that want it.
        let degrade_to_identity = self.budget.is_none()
            && registry::mechanism_capabilities(&self.mechanism.id).requires_budget;
        let mechanism_spec = if degrade_to_identity {
            ComponentSpec::new("none")
        } else {
            let mut spec = self.mechanism.clone();
            if let Some(budget) = &self.budget {
                spec.default_param("epsilon", budget.epsilon());
                spec.default_param("delta", budget.delta());
            }
            spec.default_param("g_max", self.dp_reference_g_max.unwrap_or(self.config.clip));
            spec.default_param("batch_size", self.config.batch_size);
            spec.default_param("dim", model.dim());
            spec
        };
        let mechanism = registry::build_mechanism(&mechanism_spec)?;

        let mut trainer = Trainer::new(self.config.clone(), model, sources, test)
            .gar(registry::build_gar(&self.gar)?)
            .mechanism(mechanism);
        if let Some(attack) = &self.attack {
            trainer = trainer.attack(registry::build_attack(attack)?);
        }
        Ok(trainer)
    }

    /// Runs the experiment across several seeds (the paper repeats each
    /// configuration with seeds 1–5).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Spec`] on an empty seed list (an empty result
    /// would silently poison every downstream aggregate), otherwise fails
    /// on the first erroring seed.
    pub fn run_seeds(&self, seeds: &[u64]) -> Result<Vec<RunHistory>, PipelineError> {
        check_seeds(seeds)?;
        // One scratch across the whole seed loop: consecutive runs reuse
        // the working set (bit-invisible — see `run_with_scratch`).
        let mut scratch = RunScratch::new();
        seeds
            .iter()
            .map(|&s| self.run_with_scratch(s, &mut scratch))
            .collect()
    }

    /// Runs the experiment across several seeds in parallel on a
    /// work-sharing thread pool — the single-cell fast path of the
    /// [`sweep`](crate::sweep) executor. Results come back in seed order
    /// and are bit-identical to [`Experiment::run_seeds`]'s, at any pool
    /// size (`None` = the machine's available parallelism).
    ///
    /// # Errors
    ///
    /// As [`Experiment::run_seeds`]; when several seeds fail, the error
    /// of the first failing seed in *seed order* is returned
    /// (deterministic regardless of completion order).
    pub fn run_seeds_parallel(
        &self,
        seeds: &[u64],
        pool_size: Option<usize>,
    ) -> Result<Vec<RunHistory>, PipelineError> {
        crate::sweep::run_one_parallel(self, seeds, pool_size)
    }

    /// The paper's seeds, 1 through 5.
    pub const PAPER_SEEDS: [u64; 5] = [1, 2, 3, 4, 5];
}

/// Rejects an empty seed list: an empty history vector would silently
/// poison every downstream cross-seed aggregate (`hs[0]`, mean curves).
pub(crate) fn check_seeds(seeds: &[u64]) -> Result<(), PipelineError> {
    if seeds.is_empty() {
        return Err(PipelineError::Spec(
            "no seeds given: running an experiment needs at least one seed".into(),
        ));
    }
    Ok(())
}

fn dataset_sources(train: &Arc<Dataset>, n: usize) -> Vec<Box<dyn BatchSource>> {
    (0..n)
        .map(|_| {
            Box::new(DatasetSource::new(
                train.clone(),
                SamplingMode::WithReplacement,
            )) as Box<dyn BatchSource>
        })
        .collect()
}

/// The instantiated pieces of a workload: model, per-worker batch
/// sources, and optional test split.
type WorkloadParts = (
    Arc<dyn Model>,
    Vec<Box<dyn BatchSource>>,
    Option<Arc<Dataset>>,
);

/// `x̄` is a deterministic unit-norm vector derived from `data_seed`.
fn make_mean_estimation(dim: usize, sigma: f64, data_seed: u64) -> MeanEstimation {
    let mut rng = Prng::seed_from_u64(data_seed);
    let raw = rng.normal_vector(dim, 1.0);
    let norm = raw.l2_norm();
    let mean: Vector = if norm > 0.0 {
        raw.scaled(1.0 / norm)
    } else {
        Vector::basis(dim, 0).expect("dim >= 1") // lint:allow(panic-unwrap, reason = "dim >= 1 is validated by the experiment config before any instance is built")
    };
    MeanEstimation::new(mean, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_fig(
        batch: usize,
        eps: Option<f64>,
        attack: Option<AttackKind>,
        steps: u32,
    ) -> Experiment {
        Experiment::paper_figure(FigureConfig {
            batch_size: batch,
            epsilon: eps,
            attack,
            steps,
            dataset_size: 400,
            ..FigureConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn paper_figure_wires_protocol() {
        let unattacked = quick_fig(50, None, None, 10);
        assert_eq!(unattacked.gar, GarKind::Average);
        assert_eq!(unattacked.config.n_byzantine, 0);
        assert_eq!(unattacked.config.momentum, 0.99);

        let attacked = quick_fig(50, Some(0.2), Some(AttackKind::PAPER_ALIE), 10);
        assert_eq!(attacked.gar, GarKind::Mda);
        assert_eq!(attacked.config.n_byzantine, 5);
        assert!(attacked.budget.is_some());
    }

    #[test]
    fn run_is_reproducible() {
        let exp = quick_fig(10, None, None, 15);
        let a = exp.run(3).unwrap();
        let b = exp.run(3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.train_loss.len(), 15);
    }

    #[test]
    fn threaded_backend_matches_sequential() {
        let mut exp = quick_fig(10, Some(0.2), Some(AttackKind::PAPER_FOE), 8);
        let seq = exp.run(2).unwrap();
        exp.backend = "threaded".into();
        let thr = exp.run(2).unwrap();
        assert_eq!(seq, thr);
    }

    #[test]
    fn unknown_backend_is_a_spec_error_naming_available_ids() {
        let mut exp = quick_fig(10, None, None, 3);
        exp.backend = "smoke-signals".into();
        match exp.run(1) {
            Err(PipelineError::Spec(msg)) => {
                assert!(msg.contains("smoke-signals"), "{msg}");
                assert!(msg.contains("sequential"), "{msg}");
                assert!(msg.contains("threaded"), "{msg}");
            }
            other => panic!("expected Spec error, got {other:?}"),
        }
    }

    #[test]
    fn run_seeds_produces_one_history_per_seed() {
        let exp = quick_fig(10, None, None, 5);
        let hs = exp.run_seeds(&Experiment::PAPER_SEEDS).unwrap();
        assert_eq!(hs.len(), 5);
        // Different seeds, different trajectories.
        assert_ne!(hs[0], hs[1]);
    }

    #[test]
    fn paper_figure_with_gar_swaps_rule_and_clamps_f() {
        let fig = FigureConfig {
            steps: 5,
            dataset_size: 300,
            attack: Some(AttackKind::PAPER_ALIE),
            ..FigureConfig::default()
        };
        let krum = Experiment::paper_figure_with_gar(fig, GarKind::Krum, 5).unwrap();
        assert_eq!(krum.gar, GarKind::Krum);
        assert_eq!(krum.config.n_byzantine, 4); // clamped to Krum's max at n = 11
        let bulyan = Experiment::paper_figure_with_gar(fig, GarKind::Bulyan, 5).unwrap();
        assert_eq!(bulyan.config.n_byzantine, 2);
        // Runs end-to-end.
        assert!(krum.run(1).is_ok());
    }

    #[test]
    fn theorem1_workload_runs_and_exposes_instance() {
        let exp = Experiment::theorem1(8, 1.0, None, 50, 4, 3).unwrap();
        let dist = exp.mean_estimation_instance().unwrap();
        assert_eq!(dist.dim(), 8);
        assert!((dist.true_mean().l2_norm() - 1.0).abs() < 1e-12);
        let h = exp.run(1).unwrap();
        // Convergence toward x̄: final suboptimality far below the start
        // (w0 = 0 ⇒ Q(w0) − Q* = ½).
        let sub = 0.5 * h.final_params.l2_distance_squared(dist.true_mean());
        assert!(sub < 0.1, "suboptimality {sub}");
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let err = Experiment::paper_figure(FigureConfig {
            epsilon: Some(-1.0),
            ..FigureConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, PipelineError::Dp(_)));
    }

    #[test]
    fn provided_workload_trains() {
        let mut rng = Prng::seed_from_u64(5);
        let ds = synthetic::gaussian_blobs(&mut rng, 300, 4, 4.0);
        let (train, test) = ds.split(0.8, &mut rng).unwrap();
        let exp = Experiment {
            workload: Workload::Provided {
                train: Arc::new(train),
                test: Arc::new(test),
            },
            config: TrainingConfig::builder()
                .workers(3, 0)
                .batch_size(16)
                .steps(60)
                .lr(LrSchedule::Constant(2.0))
                .momentum(0.9)
                .clip(0.5)
                .eval_every(20)
                .build()
                .unwrap(),
            gar: GarKind::Average.spec(),
            attack: None,
            budget: None,
            mechanism: MechanismKind::Gaussian.spec(),
            backend: ComponentSpec::new("sequential"),
            dp_reference_g_max: None,
        };
        let h = exp.run(1).unwrap();
        assert!(h.final_accuracy().unwrap() > 0.9);
    }

    #[test]
    fn error_display_covers_variants() {
        let e = PipelineError::Spec("nope".into());
        assert!(e.to_string().contains("nope"));
        let e: PipelineError = GarError::Empty.into();
        assert!(e.to_string().contains("aggregation"));
    }
}
