//! The extensible component registry: GARs, attacks, and noise mechanisms
//! resolved by stable string ids.
//!
//! The experiment vocabulary used to be three *closed* enums — adding a
//! scenario meant editing this crate. The registry inverts that: each
//! component family ([`Gar`], [`Attack`], [`Mechanism`]) has a global
//! [`Registry`] keyed by id and pre-populated with every built-in, and
//! downstream code (or third-party crates) can [`register_gar`] /
//! [`register_attack`] / [`register_mechanism`] new implementations
//! without touching core. Experiment specs name components by
//! [`ComponentSpec`] — an id plus a flat parameter map — which is what
//! makes them serializable, sweepable, and CLI-addressable.
//!
//! The old `GarKind` / `AttackKind` / `MechanismKind` enums survive as
//! thin serde-compatible wrappers whose `build` methods resolve through
//! the registry, so existing specs and JSON round-trip unchanged.
//!
//! # Registering a custom component
//!
//! ```
//! use dpbyz_core::registry::{self, ComponentSpec};
//! use dpbyz_gars::{Gar, GarError};
//! use dpbyz_tensor::Vector;
//! use std::sync::Arc;
//!
//! struct FirstVector;
//!
//! impl Gar for FirstVector {
//!     fn name(&self) -> &'static str { "first-vector" }
//!     fn aggregate(&self, gradients: &[Vector], _f: usize) -> Result<Vector, GarError> {
//!         gradients.first().cloned().ok_or(GarError::Empty)
//!     }
//!     fn kappa(&self, _n: usize, _f: usize) -> Option<f64> { None }
//!     fn max_byzantine(&self, _n: usize) -> usize { 0 }
//! }
//!
//! registry::register_gar("first-vector", |_spec| Ok(Arc::new(FirstVector))).unwrap();
//! let gar = registry::build_gar(&ComponentSpec::new("first-vector")).unwrap();
//! assert_eq!(gar.name(), "first-vector");
//! ```

use dpbyz_attacks::{
    Attack, FallOfEmpires, InnerProductManipulation, LargeNorm, LittleIsEnough, Mimic, RandomNoise,
    Rescaling, SignFlip, Zero,
};
use dpbyz_dp::{GaussianMechanism, LaplaceMechanism, Mechanism, NoNoise, PrivacyBudget};
use dpbyz_gars::{
    Average, Bucketing, Bulyan, CenteredClipping, CoordinateMedian, Gar, GeometricMedian, Krum,
    Mda, Meamed, MultiKrum, Phocas, StalenessDamped, TrimmedMean,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// A scalar component parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// A floating-point parameter (e.g. ALIE's ν).
    F64(f64),
    /// An unsigned integer parameter (e.g. Mimic's target index).
    U64(u64),
    /// A string parameter (e.g. the inner rule id of the `bucketing`
    /// meta-GAR) — lets one registered component reference another by id.
    Str(String),
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::F64(v)
    }
}

impl From<u64> for ParamValue {
    fn from(v: u64) -> Self {
        ParamValue::U64(v)
    }
}

impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::U64(v as u64)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// A serializable component reference: a stable string id plus parameters.
///
/// This is the open replacement for the closed `*Kind` enums: any
/// registered component — built-in or third-party — can be named in an
/// experiment spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Registry id, e.g. `"krum"` or `"alie"`.
    pub id: String,
    /// Scalar parameters consumed by the component's factory.
    pub params: BTreeMap<String, ParamValue>,
}

impl ComponentSpec {
    /// A spec with no parameters.
    pub fn new(id: impl Into<String>) -> Self {
        ComponentSpec {
            id: id.into(),
            params: BTreeMap::new(),
        }
    }

    /// Adds (or overrides) a parameter, builder-style.
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl Into<ParamValue>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Inserts a parameter only if absent (used by the pipeline to inject
    /// calibration context without clobbering explicit settings).
    pub fn default_param(&mut self, key: &str, value: impl Into<ParamValue>) {
        self.params.entry(key.to_string()).or_insert(value.into());
    }

    /// Reads a parameter as `f64` (integers widen; strings don't).
    pub fn f64(&self, key: &str) -> Option<f64> {
        match self.params.get(key) {
            Some(ParamValue::F64(v)) => Some(*v),
            Some(ParamValue::U64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// Reads a parameter as `f64` with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.f64(key).unwrap_or(default)
    }

    /// Reads a parameter as `u64` (floats must be integral).
    pub fn u64(&self, key: &str) -> Option<u64> {
        match self.params.get(key) {
            Some(ParamValue::U64(v)) => Some(*v),
            Some(ParamValue::F64(v)) if v.fract() == 0.0 && *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Reads a parameter as `u64` with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.u64(key).unwrap_or(default)
    }

    /// Reads a string parameter.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.params.get(key) {
            Some(ParamValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Reads a string parameter with a default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.str(key).unwrap_or(default)
    }

    fn wrong_type(&self, key: &str, expected: &str) -> RegistryError {
        RegistryError::Build {
            id: self.id.clone(),
            message: format!(
                "parameter `{key}` must be {expected}, got {:?}",
                self.params.get(key)
            ),
        }
    }

    /// Like [`ComponentSpec::f64_or`], but a *present* value of the wrong
    /// type (e.g. a string under a numeric key) is a
    /// [`RegistryError::Build`] instead of a silent fall-back to the
    /// default — the contract built-in factories use, so a mistyped
    /// parameter fails the build rather than quietly running with an
    /// untuned component.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Build`] when the key is present but not numeric.
    pub fn f64_or_reject(&self, key: &str, default: f64) -> Result<f64, RegistryError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(_) => self
                .f64(key)
                .ok_or_else(|| self.wrong_type(key, "a number")),
        }
    }

    /// [`ComponentSpec::u64_or`] with the same present-but-wrong-type
    /// rejection as [`ComponentSpec::f64_or_reject`].
    ///
    /// # Errors
    ///
    /// [`RegistryError::Build`] when the key is present but not an
    /// unsigned integer.
    pub fn u64_or_reject(&self, key: &str, default: u64) -> Result<u64, RegistryError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(_) => self
                .u64(key)
                .ok_or_else(|| self.wrong_type(key, "an unsigned integer")),
        }
    }

    /// [`ComponentSpec::str_or`] with the same present-but-wrong-type
    /// rejection as [`ComponentSpec::f64_or_reject`].
    ///
    /// # Errors
    ///
    /// [`RegistryError::Build`] when the key is present but not a string.
    pub fn str_or_reject<'a>(
        &'a self,
        key: &str,
        default: &'a str,
    ) -> Result<&'a str, RegistryError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(ParamValue::Str(s)) => Ok(s),
            Some(_) => Err(self.wrong_type(key, "a string id")),
        }
    }
}

impl From<&str> for ComponentSpec {
    fn from(id: &str) -> Self {
        ComponentSpec::new(id)
    }
}

impl From<String> for ComponentSpec {
    fn from(id: String) -> Self {
        ComponentSpec::new(id)
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// An id was registered twice (ids are stable API; shadowing a
    /// built-in silently would change every spec naming it).
    DuplicateId(String),
    /// No component is registered under the requested id.
    UnknownId {
        /// The id that failed to resolve.
        id: String,
        /// Every id currently registered in the family, sorted.
        available: Vec<String>,
    },
    /// The factory rejected the spec (bad or missing parameters).
    Build {
        /// The id whose factory failed.
        id: String,
        /// Human-readable cause.
        message: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateId(id) => {
                write!(f, "component id `{id}` is already registered")
            }
            RegistryError::UnknownId { id, available } => write!(
                f,
                "unknown component id `{id}`; available: [{}]",
                available.join(", ")
            ),
            RegistryError::Build { id, message } => {
                write!(f, "building component `{id}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A factory producing a component from its spec.
pub type Factory<T> = Arc<dyn Fn(&ComponentSpec) -> Result<Arc<T>, RegistryError> + Send + Sync>;

/// An id-keyed registry for one component family (`dyn Gar`, `dyn Attack`,
/// or `dyn Mechanism` — any `?Sized` target works).
pub struct Registry<T: ?Sized> {
    entries: BTreeMap<String, Factory<T>>,
}

impl<T: ?Sized> Default for Registry<T> {
    fn default() -> Self {
        Registry {
            entries: BTreeMap::new(),
        }
    }
}

impl<T: ?Sized> Registry<T> {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory under a new id.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateId`] if the id is taken.
    pub fn register(
        &mut self,
        id: impl Into<String>,
        factory: impl Fn(&ComponentSpec) -> Result<Arc<T>, RegistryError> + Send + Sync + 'static,
    ) -> Result<(), RegistryError> {
        let id = id.into();
        if self.entries.contains_key(&id) {
            return Err(RegistryError::DuplicateId(id));
        }
        self.entries.insert(id, Arc::new(factory));
        Ok(())
    }

    /// Resolves a spec to a component instance.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownId`] (listing every available id) or the
    /// factory's own [`RegistryError::Build`].
    pub fn create(&self, spec: &ComponentSpec) -> Result<Arc<T>, RegistryError> {
        self.factory(&spec.id)?(spec)
    }

    /// The factory registered under `id` (a cheap `Arc` clone). The global
    /// `build_*` helpers fetch the factory under the registry lock but
    /// *invoke* it after releasing, so a factory may itself resolve other
    /// components (the `bucketing` meta-GAR builds its inner rule this
    /// way) without re-entering the lock.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownId`] listing every available id.
    pub fn factory(&self, id: &str) -> Result<Factory<T>, RegistryError> {
        self.entries
            .get(id)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownId {
                id: id.to_string(),
                available: self.ids(),
            })
    }

    /// Whether an id is registered.
    pub fn contains(&self, id: &str) -> bool {
        self.entries.contains_key(id)
    }

    /// All registered ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// [`Registry::register`] for seeding built-ins into a registry under
    /// construction. The built-in id set is a compile-time constant, so a
    /// duplicate id is a programmer error, not a runtime condition — every
    /// seeding site funnels through here so the policy (and its waiver)
    /// lives in exactly one place.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn seed(
        &mut self,
        id: impl Into<String>,
        factory: impl Fn(&ComponentSpec) -> Result<Arc<T>, RegistryError> + Send + Sync + 'static,
    ) {
        // lint:allow(panic-unwrap, reason = "seeding a fresh registry with compile-time-constant built-in ids; a duplicate is a programmer error every registry test catches immediately")
        self.register(id, factory).expect("fresh registry");
    }
}

/// Acquires the read side of a component-registry lock. Poisoning is
/// fatal by design: these locks only guard id-map mutation, so a poisoned
/// lock means another thread already panicked mid-registration, and every
/// public caller documents the propagation under `# Panics`.
pub(crate) fn read_guard<T: ?Sized>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    // lint:allow(panic-unwrap, reason = "lock poisoning means another thread already panicked; propagating is the documented registry policy")
    lock.read().expect("registry lock")
}

/// The write-side counterpart of [`read_guard`], same poisoning policy.
pub(crate) fn write_guard<T: ?Sized>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    // lint:allow(panic-unwrap, reason = "lock poisoning means another thread already panicked; propagating is the documented registry policy")
    lock.write().expect("registry lock")
}

// ------------------------------------------------------------------------
// Global per-family registries, pre-populated with the built-ins.

fn gar_registry() -> &'static RwLock<Registry<dyn Gar>> {
    static REGISTRY: OnceLock<RwLock<Registry<dyn Gar>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(built_in_gars()))
}

fn attack_registry() -> &'static RwLock<Registry<dyn Attack>> {
    static REGISTRY: OnceLock<RwLock<Registry<dyn Attack>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(built_in_attacks()))
}

fn mechanism_registry() -> &'static RwLock<Registry<dyn Mechanism>> {
    static REGISTRY: OnceLock<RwLock<Registry<dyn Mechanism>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(built_in_mechanisms()))
}

/// Factory-declared capabilities of a registered noise mechanism.
///
/// Capabilities describe how the pipeline should treat a mechanism id —
/// today a single flag, declared at registration time so the behaviour is
/// a property of the *factory*, not of hard-coded built-in id strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MechanismCapabilities {
    /// The mechanism calibrates its noise from a privacy budget. When an
    /// experiment has **no** budget, the pipeline degrades such a
    /// mechanism to the identity (`"none"`) — the paper's no-DP baselines
    /// — instead of asking the factory to calibrate against nothing.
    /// Mechanisms without this capability are always resolved as
    /// specified.
    pub requires_budget: bool,
}

impl MechanismCapabilities {
    /// Capabilities of a budget-calibrated mechanism (degrades to the
    /// identity in no-DP sweeps, like the built-in `gaussian`/`laplace`).
    pub fn budget_calibrated() -> Self {
        MechanismCapabilities {
            requires_budget: true,
        }
    }
}

fn mechanism_caps() -> &'static RwLock<BTreeMap<String, MechanismCapabilities>> {
    static CAPS: OnceLock<RwLock<BTreeMap<String, MechanismCapabilities>>> = OnceLock::new();
    CAPS.get_or_init(|| {
        let mut caps = BTreeMap::new();
        caps.insert(
            "gaussian".to_string(),
            MechanismCapabilities::budget_calibrated(),
        );
        caps.insert(
            "laplace".to_string(),
            MechanismCapabilities::budget_calibrated(),
        );
        caps.insert("none".to_string(), MechanismCapabilities::default());
        RwLock::new(caps)
    })
}

fn built_in_gars() -> Registry<dyn Gar> {
    let mut r = Registry::new();
    r.seed("average", |_| Ok(Arc::new(Average::new()) as Arc<dyn Gar>));
    r.seed("krum", |_| Ok(Arc::new(Krum::new()) as Arc<dyn Gar>));
    r.seed("multi-krum", |_| {
        Ok(Arc::new(MultiKrum::new()) as Arc<dyn Gar>)
    });
    r.seed("mda", |_| Ok(Arc::new(Mda::new()) as Arc<dyn Gar>));
    r.seed("median", |_| {
        Ok(Arc::new(CoordinateMedian::new()) as Arc<dyn Gar>)
    });
    r.seed("trimmed-mean", |_| {
        Ok(Arc::new(TrimmedMean::new()) as Arc<dyn Gar>)
    });
    r.seed("meamed", |_| Ok(Arc::new(Meamed::new()) as Arc<dyn Gar>));
    r.seed("phocas", |_| Ok(Arc::new(Phocas::new()) as Arc<dyn Gar>));
    r.seed("bulyan", |_| Ok(Arc::new(Bulyan::new()) as Arc<dyn Gar>));
    r.seed("geometric-median", |_| {
        Ok(Arc::new(GeometricMedian::new()) as Arc<dyn Gar>)
    });
    r.seed("centered-clipping", |spec| {
        let tau = spec.f64_or_reject("tau", 1.0)?;
        // NaN must take the Build-error path too, not the constructor's
        // assert.
        if tau.is_nan() || tau <= 0.0 {
            return Err(RegistryError::Build {
                id: "centered-clipping".into(),
                message: format!("`tau` must be strictly positive, got {tau}"),
            });
        }
        let iters = spec.u64_or_reject("iters", 3)? as usize;
        Ok(Arc::new(CenteredClipping::new(tau, iters)) as Arc<dyn Gar>)
    });
    r.seed("bucketing", |spec| {
        let s = spec.u64_or_reject("s", 2)?;
        if s == 0 {
            return Err(RegistryError::Build {
                id: "bucketing".into(),
                message: "bucket size `s` must be at least 1".into(),
            });
        }
        // The inner rule is itself resolved through the registry, so any
        // registered GAR — built-in or third-party — can sit under the
        // bucketing wrapper by id. Every parameter except bucketing's own
        // (`s`, `inner`) is forwarded to the inner factory, so e.g.
        // `bucketing{inner: "centered-clipping", tau: 0.01}` tunes the
        // inner radius instead of silently dropping it.
        let mut inner_spec = ComponentSpec::new(spec.str_or_reject("inner", "median")?);
        for (key, value) in &spec.params {
            if key != "s" && key != "inner" {
                inner_spec.params.insert(key.clone(), value.clone());
            }
        }
        let inner = build_gar(&inner_spec).map_err(|e| RegistryError::Build {
            id: "bucketing".into(),
            message: format!("inner rule failed to resolve: {e}"),
        })?;
        Ok(Arc::new(Bucketing::new(inner, s as usize)) as Arc<dyn Gar>)
    });
    r.seed("staleness-damped", |spec| {
        let lambda = spec.f64_or_reject("lambda", 0.5)?;
        // NaN must take the Build-error path too, not the constructor's
        // assert.
        if lambda.is_nan() || lambda <= 0.0 || lambda > 1.0 {
            return Err(RegistryError::Build {
                id: "staleness-damped".into(),
                message: format!("`lambda` must be in (0, 1], got {lambda}"),
            });
        }
        // The inner rule is resolved through the registry exactly as
        // `bucketing` resolves its wrapped rule: every parameter except
        // this wrapper's own (`lambda`, `inner`) is forwarded, so e.g.
        // `staleness-damped{inner: "centered-clipping", tau: 0.01}` tunes
        // the inner radius instead of silently dropping it.
        let mut inner_spec = ComponentSpec::new(spec.str_or_reject("inner", "median")?);
        for (key, value) in &spec.params {
            if key != "lambda" && key != "inner" {
                inner_spec.params.insert(key.clone(), value.clone());
            }
        }
        let inner = build_gar(&inner_spec).map_err(|e| RegistryError::Build {
            id: "staleness-damped".into(),
            message: format!("inner rule failed to resolve: {e}"),
        })?;
        Ok(Arc::new(StalenessDamped::new(inner, lambda)) as Arc<dyn Gar>)
    });
    r
}

fn built_in_attacks() -> Registry<dyn Attack> {
    let mut r = Registry::new();
    r.seed("alie", |spec| {
        Ok(Arc::new(LittleIsEnough::new(spec.f64_or_reject("nu", 1.5)?)) as Arc<dyn Attack>)
    });
    r.seed("foe", |spec| {
        Ok(Arc::new(FallOfEmpires::new(spec.f64_or_reject("nu", 1.1)?)) as Arc<dyn Attack>)
    });
    r.seed("sign-flip", |_| Ok(Arc::new(SignFlip) as Arc<dyn Attack>));
    r.seed("random-noise", |spec| {
        let std = spec.f64_or_reject("std", 1.0)?;
        if std < 0.0 {
            return Err(RegistryError::Build {
                id: "random-noise".into(),
                message: format!("std must be non-negative, got {std}"),
            });
        }
        Ok(Arc::new(RandomNoise::new(std)) as Arc<dyn Attack>)
    });
    r.seed("zero", |_| Ok(Arc::new(Zero) as Arc<dyn Attack>));
    r.seed("large-norm", |spec| {
        Ok(Arc::new(LargeNorm::new(spec.f64_or_reject("scale", 1e6)?)) as Arc<dyn Attack>)
    });
    r.seed("mimic", |spec| {
        Ok(Arc::new(Mimic::new(spec.u64_or_reject("target", 0)? as usize)) as Arc<dyn Attack>)
    });
    r.seed("ipm", |spec| {
        Ok(Arc::new(InnerProductManipulation::new(
            spec.f64_or_reject("epsilon", 0.1)?,
        )) as Arc<dyn Attack>)
    });
    r.seed("rescaling", |spec| {
        Ok(Arc::new(Rescaling::new(spec.f64_or_reject("norm", -1.0)?)) as Arc<dyn Attack>)
    });
    r
}

/// Mechanism factories read their calibration context from spec params —
/// the pipeline injects `epsilon`, `delta`, `g_max`, `batch_size`, and
/// `dim` (without clobbering explicitly set values) before resolving.
fn built_in_mechanisms() -> Registry<dyn Mechanism> {
    fn build_err(id: &str, e: impl fmt::Display) -> RegistryError {
        RegistryError::Build {
            id: id.into(),
            message: e.to_string(),
        }
    }
    fn required(spec: &ComponentSpec, id: &str, key: &str) -> Result<f64, RegistryError> {
        spec.f64(key).ok_or_else(|| {
            build_err(
                id,
                format!("missing required parameter `{key}` (injected by the pipeline)"),
            )
        })
    }

    let mut r = Registry::new();
    r.seed("none", |_| Ok(Arc::new(NoNoise) as Arc<dyn Mechanism>));
    r.seed("gaussian", |spec| {
        let id = "gaussian";
        let budget =
            PrivacyBudget::new(required(spec, id, "epsilon")?, required(spec, id, "delta")?)
                .map_err(|e| build_err(id, e))?;
        let g_max = required(spec, id, "g_max")?;
        let batch = spec
            .u64("batch_size")
            .ok_or_else(|| build_err(id, "missing required parameter `batch_size`"))?;
        let mech = GaussianMechanism::for_clipped_gradients(budget, g_max, batch as usize)
            .map_err(|e| build_err(id, e))?;
        Ok(Arc::new(mech) as Arc<dyn Mechanism>)
    });
    r.seed("laplace", |spec| {
        let id = "laplace";
        let epsilon = required(spec, id, "epsilon")?;
        let g_max = required(spec, id, "g_max")?;
        let batch = spec
            .u64("batch_size")
            .ok_or_else(|| build_err(id, "missing required parameter `batch_size`"))?;
        let dim = spec
            .u64("dim")
            .ok_or_else(|| build_err(id, "missing required parameter `dim`"))?;
        let mech =
            LaplaceMechanism::for_clipped_gradients(epsilon, g_max, batch as usize, dim as usize)
                .map_err(|e| build_err(id, e))?;
        Ok(Arc::new(mech) as Arc<dyn Mechanism>)
    });
    r
}

/// Registers an aggregation rule under a new id.
///
/// # Errors
///
/// [`RegistryError::DuplicateId`] if the id is taken.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn register_gar(
    id: impl Into<String>,
    factory: impl Fn(&ComponentSpec) -> Result<Arc<dyn Gar>, RegistryError> + Send + Sync + 'static,
) -> Result<(), RegistryError> {
    write_guard(gar_registry()).register(id, factory)
}

/// Registers a Byzantine attack under a new id.
///
/// # Errors
///
/// [`RegistryError::DuplicateId`] if the id is taken.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn register_attack(
    id: impl Into<String>,
    factory: impl Fn(&ComponentSpec) -> Result<Arc<dyn Attack>, RegistryError> + Send + Sync + 'static,
) -> Result<(), RegistryError> {
    write_guard(attack_registry()).register(id, factory)
}

/// Registers a noise mechanism under a new id, with default capabilities
/// (not budget-calibrated: the mechanism is always resolved as specified,
/// even in no-DP sweeps).
///
/// # Errors
///
/// [`RegistryError::DuplicateId`] if the id is taken.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn register_mechanism(
    id: impl Into<String>,
    factory: impl Fn(&ComponentSpec) -> Result<Arc<dyn Mechanism>, RegistryError>
        + Send
        + Sync
        + 'static,
) -> Result<(), RegistryError> {
    register_mechanism_with(id, MechanismCapabilities::default(), factory)
}

/// Registers a noise mechanism under a new id with factory-declared
/// [`MechanismCapabilities`]. A third-party budget-calibrated mechanism
/// registered with [`MechanismCapabilities::budget_calibrated`] gets the
/// same no-budget degradation to the identity mechanism as the built-in
/// `gaussian`/`laplace`, so it can participate in no-DP baseline sweeps
/// with identical semantics.
///
/// # Errors
///
/// [`RegistryError::DuplicateId`] if the id is taken.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn register_mechanism_with(
    id: impl Into<String>,
    capabilities: MechanismCapabilities,
    factory: impl Fn(&ComponentSpec) -> Result<Arc<dyn Mechanism>, RegistryError>
        + Send
        + Sync
        + 'static,
) -> Result<(), RegistryError> {
    let id = id.into();
    write_guard(mechanism_registry()).register(id.clone(), factory)?;
    write_guard(mechanism_caps()).insert(id, capabilities);
    Ok(())
}

/// The factory-declared capabilities of a mechanism id (defaults for ids
/// that never declared any, including unregistered ids).
///
/// # Panics
///
/// Panics if the capability lock is poisoned.
pub fn mechanism_capabilities(id: &str) -> MechanismCapabilities {
    read_guard(mechanism_caps())
        .get(id)
        .copied()
        .unwrap_or_default()
}

/// Resolves a GAR spec through the global registry.
///
/// # Errors
///
/// See [`Registry::create`].
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn build_gar(spec: &ComponentSpec) -> Result<Arc<dyn Gar>, RegistryError> {
    // Fetch under the lock, invoke outside it: factories may recursively
    // resolve other ids (meta-rules like `bucketing`).
    let factory = read_guard(gar_registry()).factory(&spec.id)?;
    factory(spec)
}

/// Resolves an attack spec through the global registry.
///
/// # Errors
///
/// See [`Registry::create`].
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn build_attack(spec: &ComponentSpec) -> Result<Arc<dyn Attack>, RegistryError> {
    let factory = read_guard(attack_registry()).factory(&spec.id)?;
    factory(spec)
}

/// Resolves a mechanism spec through the global registry.
///
/// # Errors
///
/// See [`Registry::create`].
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn build_mechanism(spec: &ComponentSpec) -> Result<Arc<dyn Mechanism>, RegistryError> {
    let factory = read_guard(mechanism_registry()).factory(&spec.id)?;
    factory(spec)
}

/// All registered GAR ids.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn gar_ids() -> Vec<String> {
    read_guard(gar_registry()).ids()
}

/// All registered attack ids.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn attack_ids() -> Vec<String> {
    read_guard(attack_registry()).ids()
}

/// All registered mechanism ids.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn mechanism_ids() -> Vec<String> {
    read_guard(mechanism_registry()).ids()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_in_gars_resolve_by_id() {
        for id in [
            "average",
            "krum",
            "multi-krum",
            "mda",
            "median",
            "trimmed-mean",
            "meamed",
            "phocas",
            "bulyan",
            "geometric-median",
            "centered-clipping",
            "bucketing",
            "staleness-damped",
        ] {
            let gar = build_gar(&ComponentSpec::new(id)).unwrap();
            assert_eq!(gar.name(), id);
        }
        assert!(gar_ids().len() >= 13);
    }

    #[test]
    fn built_in_attacks_resolve_with_params() {
        let alie = build_attack(&ComponentSpec::new("alie").with("nu", 2.5)).unwrap();
        assert_eq!(alie.name(), "alie");
        let mimic = build_attack(&ComponentSpec::new("mimic").with("target", 3u64)).unwrap();
        assert_eq!(mimic.name(), "mimic");
        for id in [
            "foe",
            "sign-flip",
            "random-noise",
            "zero",
            "large-norm",
            "ipm",
            "rescaling",
        ] {
            assert_eq!(build_attack(&ComponentSpec::new(id)).unwrap().name(), id);
        }
    }

    #[test]
    fn centered_clipping_params_reach_the_factory() {
        let gar = build_gar(
            &ComponentSpec::new("centered-clipping")
                .with("tau", 0.25)
                .with("iters", 5u64),
        )
        .unwrap();
        assert_eq!(gar.name(), "centered-clipping");
        // A non-positive (or NaN) radius is a build error, not a panic.
        for bad_tau in [-1.0, 0.0, f64::NAN] {
            let err = build_gar(&ComponentSpec::new("centered-clipping").with("tau", bad_tau))
                .err()
                .unwrap();
            assert!(matches!(err, RegistryError::Build { .. }), "{err}");
        }
        // A string under the numeric key is rejected, not silently
        // replaced by the untuned default radius.
        let err = build_gar(&ComponentSpec::new("centered-clipping").with("tau", "0.01"))
            .err()
            .unwrap();
        assert!(err.to_string().contains("tau"), "{err}");
    }

    #[test]
    fn bucketing_factory_resolves_inner_rule_by_string_param() {
        // Default inner: the coordinate median at the bucketed topology.
        let default = build_gar(&ComponentSpec::new("bucketing")).unwrap();
        assert_eq!(default.max_byzantine(11), 2); // median at ⌈11/2⌉ = 6

        // Inner selected via a string param, recursively through the
        // registry (the factory re-enters `build_gar` — no deadlock).
        let krum_inner = build_gar(&ComponentSpec::new("bucketing").with("inner", "krum")).unwrap();
        assert_eq!(krum_inner.max_byzantine(11), 1); // krum at 6: (6−3)/2

        // An unresolvable inner id surfaces as a build error naming it.
        let err = build_gar(&ComponentSpec::new("bucketing").with("inner", "nope"))
            .err()
            .unwrap();
        assert!(err.to_string().contains("nope"), "{err}");

        // Non-bucketing params reach the inner factory: an invalid inner
        // tau errors instead of being silently dropped.
        let err = build_gar(
            &ComponentSpec::new("bucketing")
                .with("inner", "centered-clipping")
                .with("tau", -1.0),
        )
        .err()
        .unwrap();
        assert!(err.to_string().contains("tau"), "{err}");
        assert!(build_gar(
            &ComponentSpec::new("bucketing")
                .with("inner", "centered-clipping")
                .with("tau", 0.01),
        )
        .is_ok());

        // s = 0 is rejected.
        let err = build_gar(&ComponentSpec::new("bucketing").with("s", 0u64))
            .err()
            .unwrap();
        assert!(matches!(err, RegistryError::Build { .. }));
    }

    #[test]
    fn staleness_damped_factory_resolves_inner_rule_by_string_param() {
        // Tolerance delegates at the same (n, f): median tolerates 5 of 11.
        let default = build_gar(&ComponentSpec::new("staleness-damped")).unwrap();
        assert_eq!(default.name(), "staleness-damped");
        assert_eq!(default.max_byzantine(11), 5);

        // Inner selected via a string param, recursively through the
        // registry — including another meta-rule.
        let mda = build_gar(&ComponentSpec::new("staleness-damped").with("inner", "mda")).unwrap();
        assert_eq!(mda.max_byzantine(11), 5);
        let bucketed =
            build_gar(&ComponentSpec::new("staleness-damped").with("inner", "bucketing")).unwrap();
        assert_eq!(bucketed.max_byzantine(11), 2); // median at ⌈11/2⌉ = 6

        // Non-wrapper params reach the inner factory.
        let err = build_gar(
            &ComponentSpec::new("staleness-damped")
                .with("inner", "centered-clipping")
                .with("tau", -1.0),
        )
        .err()
        .unwrap();
        assert!(err.to_string().contains("tau"), "{err}");

        // λ outside (0, 1] (or NaN) is a build error, not a panic.
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = build_gar(&ComponentSpec::new("staleness-damped").with("lambda", bad))
                .err()
                .unwrap();
            assert!(matches!(err, RegistryError::Build { .. }), "{err}");
        }
        // An unresolvable inner id surfaces as a build error naming it.
        let err = build_gar(&ComponentSpec::new("staleness-damped").with("inner", "nope"))
            .err()
            .unwrap();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn mechanisms_require_calibration_context() {
        let err = build_mechanism(&ComponentSpec::new("gaussian"))
            .err()
            .unwrap();
        assert!(matches!(err, RegistryError::Build { .. }));
        assert!(err.to_string().contains("epsilon"));

        let spec = ComponentSpec::new("gaussian")
            .with("epsilon", 0.2)
            .with("delta", 1e-6)
            .with("g_max", 0.01)
            .with("batch_size", 50u64);
        let mech = build_mechanism(&spec).unwrap();
        assert_eq!(mech.name(), "gaussian");
        assert!(mech.per_coordinate_std() > 0.0);

        assert_eq!(
            build_mechanism(&ComponentSpec::new("none")).unwrap().name(),
            "none"
        );
    }

    #[test]
    fn built_in_mechanism_capabilities() {
        assert!(mechanism_capabilities("gaussian").requires_budget);
        assert!(mechanism_capabilities("laplace").requires_budget);
        assert!(!mechanism_capabilities("none").requires_budget);
        // Unregistered ids default to no declared capabilities.
        assert!(!mechanism_capabilities("no-such-mechanism").requires_budget);
    }

    #[test]
    fn register_mechanism_with_records_capabilities() {
        register_mechanism_with(
            "caps-test-budget",
            MechanismCapabilities::budget_calibrated(),
            |_| Ok(Arc::new(NoNoise) as Arc<dyn Mechanism>),
        )
        .unwrap();
        register_mechanism("caps-test-plain", |_| {
            Ok(Arc::new(NoNoise) as Arc<dyn Mechanism>)
        })
        .unwrap();
        assert!(mechanism_capabilities("caps-test-budget").requires_budget);
        assert!(!mechanism_capabilities("caps-test-plain").requires_budget);
        // Duplicate ids are still rejected and leave capabilities intact.
        let err =
            register_mechanism_with("caps-test-budget", MechanismCapabilities::default(), |_| {
                Ok(Arc::new(NoNoise) as Arc<dyn Mechanism>)
            })
            .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateId("caps-test-budget".into()));
        assert!(mechanism_capabilities("caps-test-budget").requires_budget);
    }

    #[test]
    fn unknown_id_lists_available() {
        let err = build_gar(&ComponentSpec::new("no-such-gar")).err().unwrap();
        match &err {
            RegistryError::UnknownId { id, available } => {
                assert_eq!(id, "no-such-gar");
                assert!(available.iter().any(|a| a == "krum"));
            }
            other => panic!("expected UnknownId, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("no-such-gar") && msg.contains("krum"), "{msg}");
    }

    #[test]
    fn duplicate_registration_rejected() {
        let err =
            register_gar("average", |_| Ok(Arc::new(Average::new()) as Arc<dyn Gar>)).unwrap_err();
        assert_eq!(err, RegistryError::DuplicateId("average".into()));
    }

    #[test]
    fn local_registry_is_independent_of_globals() {
        let mut local: Registry<dyn Gar> = Registry::new();
        assert!(local.is_empty());
        local
            .register(
                "only-here",
                |_| Ok(Arc::new(Average::new()) as Arc<dyn Gar>),
            )
            .unwrap();
        assert_eq!(local.len(), 1);
        assert!(local.contains("only-here"));
        assert!(!gar_ids().contains(&"only-here".to_string()));
    }

    #[test]
    fn spec_param_accessors() {
        let spec = ComponentSpec::new("x")
            .with("a", 1.5)
            .with("b", 7u64)
            .with("c", "krum");
        assert_eq!(spec.f64("a"), Some(1.5));
        assert_eq!(spec.f64("b"), Some(7.0));
        assert_eq!(spec.u64("b"), Some(7));
        assert_eq!(spec.u64("a"), None); // 1.5 is not integral
        assert_eq!(spec.f64_or("missing", 9.0), 9.0);
        assert_eq!(spec.str("c"), Some("krum"));
        assert_eq!(spec.str("a"), None); // numbers don't read as strings
        assert_eq!(spec.f64("c"), None); // strings don't read as numbers
        assert_eq!(spec.str_or("missing", "mda"), "mda");
        // The strict accessors: absent falls back, wrong type rejects.
        assert_eq!(spec.f64_or_reject("missing", 2.5).unwrap(), 2.5);
        assert_eq!(spec.f64_or_reject("a", 0.0).unwrap(), 1.5);
        assert_eq!(spec.str_or_reject("c", "mda").unwrap(), "krum");
        for err in [
            spec.f64_or_reject("c", 0.0).unwrap_err(),
            spec.u64_or_reject("c", 0).unwrap_err(),
            spec.str_or_reject("a", "mda").unwrap_err(),
        ] {
            assert!(matches!(err, RegistryError::Build { .. }), "{err}");
            assert!(err.to_string().contains("must be"), "{err}");
        }
        let mut spec = spec;
        spec.default_param("a", 99.0);
        assert_eq!(spec.f64("a"), Some(1.5)); // not clobbered
    }
}
