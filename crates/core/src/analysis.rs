//! Feasibility-frontier explorers and the §3 worked example.

use crate::theory::table1;
use crate::GarKind;
use dpbyz_dp::PrivacyBudget;
use serde::{Deserialize, Serialize};

/// Batch size required by a GAR's Table 1 necessary condition across model
/// sizes — the `b ∈ Ω(√d)` frontier made concrete.
///
/// Entries where the condition is vacuous (e.g. `τ ≥ 1/2` for trimmed
/// rules) are omitted.
pub fn batch_frontier(
    gar: GarKind,
    n: usize,
    f: usize,
    dims: &[usize],
    budget: PrivacyBudget,
) -> Vec<(usize, usize)> {
    dims.iter()
        .filter_map(|&d| table1::required_batch(gar, n, f, d, budget).map(|b| (d, b)))
        .collect()
}

/// Maximum tolerable Byzantine fraction under MDA across model sizes at a
/// fixed batch size — the `f/n ∈ O(b/(√d + b))` frontier.
pub fn mda_fraction_frontier(
    batch_size: usize,
    dims: &[usize],
    budget: PrivacyBudget,
) -> Vec<(usize, f64)> {
    let c = budget.c_constant();
    dims.iter()
        .map(|&d| {
            let cb = c * batch_size as f64;
            (d, cb / (8.0 * (d as f64).sqrt() + cb))
        })
        .collect()
}

/// The smallest `ε` (at fixed `δ`) for which a GAR's Table 1 necessary
/// condition holds at the given deployment — the privacy price of keeping
/// the certificate. Found by bisection on `ε ∈ (lo, 1)`; returns `None`
/// when even `ε → 1` cannot satisfy the condition (or the rule has no
/// condition).
pub fn min_epsilon_for_certificate(
    gar: GarKind,
    n: usize,
    f: usize,
    dim: usize,
    batch_size: usize,
    delta: f64,
) -> Option<f64> {
    let satisfied = |eps: f64| -> Option<bool> {
        let budget = PrivacyBudget::new(eps, delta).ok()?;
        table1::condition_for(gar, n, f, dim, batch_size, budget).map(|row| row.satisfied)
    };
    // The conditions are monotone in ε (larger ε ⇒ larger C ⇒ easier).
    let hi_ok = satisfied(0.999_999)?;
    if !hi_ok {
        return None;
    }
    let (mut lo, mut hi) = (1e-9, 0.999_999);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if satisfied(mid) == Some(true) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// The §3 worked example: ResNet-50-scale models (`d = 25.6·10⁶`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resnet50Example {
    /// Model size used by the paper's example.
    pub dim: usize,
    /// `√d` — the paper's back-of-envelope "b > 5000".
    pub sqrt_d: f64,
    /// Per-GAR exact required batch size at `n = 11, f = 5` (None where
    /// the condition is vacuous).
    pub required_batches: Vec<(GarKind, Option<usize>)>,
}

/// Computes the ResNet-50 example at the paper's topology.
pub fn resnet50_example(budget: PrivacyBudget) -> Resnet50Example {
    let dim = 25_600_000;
    Resnet50Example {
        dim,
        sqrt_d: (dim as f64).sqrt(),
        required_batches: GarKind::ROBUST
            .iter()
            .map(|&g| (g, table1::required_batch(g, 11, 5, dim, budget)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_budget() -> PrivacyBudget {
        PrivacyBudget::new(0.2, 1e-6).unwrap()
    }

    #[test]
    fn batch_frontier_grows_with_dimension() {
        let frontier = batch_frontier(GarKind::Krum, 11, 5, &[100, 400, 1600], paper_budget());
        assert_eq!(frontier.len(), 3);
        assert!(frontier[0].1 < frontier[1].1 && frontier[1].1 < frontier[2].1);
        // Ω(√d): quadrupling d doubles the bound.
        let r = frontier[1].1 as f64 / frontier[0].1 as f64;
        assert!((r - 2.0).abs() < 0.05, "ratio {r}");
    }

    #[test]
    fn mda_fraction_shrinks_with_dimension() {
        let frontier = mda_fraction_frontier(50, &[100, 10_000, 1_000_000], paper_budget());
        assert!(frontier[0].1 > frontier[1].1 && frontier[1].1 > frontier[2].1);
        // O(1/√d) tail: 100× the d, 10× smaller cap (asymptotically).
        let r = frontier[1].1 / frontier[2].1;
        assert!((r - 10.0).abs() < 0.5, "ratio {r}");
    }

    #[test]
    fn min_epsilon_frontier_behaves() {
        // At the Fig. 2 point no ε < 1 rescues MDA's certificate.
        assert!(min_epsilon_for_certificate(GarKind::Mda, 11, 5, 69, 50, 1e-6).is_none());
        // With a huge batch, a moderate ε suffices — and the boundary is
        // consistent with the condition itself.
        let eps = min_epsilon_for_certificate(GarKind::Mda, 11, 5, 69, 5000, 1e-6)
            .expect("feasible at b = 5000");
        assert!(eps > 0.0 && eps < 1.0);
        let at = table1::condition_for(
            GarKind::Mda,
            11,
            5,
            69,
            5000,
            PrivacyBudget::new(eps, 1e-6).unwrap(),
        )
        .unwrap();
        assert!(at.satisfied);
        let below = table1::condition_for(
            GarKind::Mda,
            11,
            5,
            69,
            5000,
            PrivacyBudget::new(eps * 0.9, 1e-6).unwrap(),
        )
        .unwrap();
        assert!(!below.satisfied);
        // Average has no certificate at all.
        assert!(min_epsilon_for_certificate(GarKind::Average, 11, 5, 69, 50, 1e-6).is_none());
    }

    #[test]
    fn resnet50_reproduces_impracticality() {
        let ex = resnet50_example(paper_budget());
        assert!(ex.sqrt_d > 5000.0);
        for (gar, b) in &ex.required_batches {
            if let Some(b) = b {
                assert!(*b > 5000, "{gar:?} requires only b = {b}, contradicting §3");
            }
        }
        // At τ = 5/11 > some caps nothing is vacuous except possibly none:
        // MDA must be present and finite.
        assert!(ex
            .required_batches
            .iter()
            .any(|(g, b)| *g == GarKind::Mda && b.is_some()));
    }
}
