//! The parallel sweep executor: fans the (cell × seed) jobs of an
//! experiment grid out over a thread pool and collects the histories back
//! in **deterministic grid order**, bit-identical to the serial loop.
//!
//! The paper's evidence is a large cross-product of
//! (GAR × attack × mechanism × batch × seed) cells, every one an
//! independent [`Experiment`] run — embarrassingly parallel work. The
//! executor exploits that: a shared `crossbeam` job queue feeds
//! `std::thread` workers that pull the next job as soon as they finish
//! the last (a work-sharing pool: fast cells never wait on slow ones),
//! while results are placed by (cell, seed) index so the output never
//! depends on completion order.
//!
//! Each job runs on the zero-copy round engine: the trainer a job builds
//! keeps its round buffers (worker outputs, submission set, GAR scratch)
//! alive for the whole run, so a `(cell, seed)` job allocates its working
//! set once and then streams rounds allocation-free. The executor
//! multiplies throughput by cores; the buffer-reusing hot path multiplies
//! it per core.
//!
//! ```
//! use dpbyz_core::sweep::SweepBuilder;
//! use dpbyz_core::Experiment;
//!
//! let results = SweepBuilder::over(
//!     Experiment::builder()
//!         .steps(5)
//!         .dataset_size(200)
//!         .gar("mda")
//!         .attack("alie"),
//! )
//! .epsilons(&[0.2, 0.4])
//! .batch_sizes(&[10, 20])
//! .seeds(&[1, 2])
//! .run()
//! .unwrap();
//! // Grid order: epsilon-major, batch-minor — independent of which
//! // worker finished first.
//! let labels: Vec<&str> = results.cells.iter().map(|c| c.label.as_str()).collect();
//! assert_eq!(labels, ["eps0.2/b10", "eps0.2/b20", "eps0.4/b10", "eps0.4/b20"]);
//! assert_eq!(results.cells[0].histories.len(), 2);
//! ```

use crate::builder::ExperimentBuilder;
use crate::pipeline::{check_seeds, Experiment, PipelineError};
use crate::registry::ComponentSpec;
use crossbeam::channel;
use dpbyz_server::{RunHistory, RunObserver, RunScratch};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// Identity of one (cell, seed) job inside a sweep.
#[derive(Debug, Clone, Copy)]
pub struct JobInfo<'a> {
    /// Index of the cell in grid order.
    pub cell: usize,
    /// The cell's label.
    pub label: &'a str,
    /// The seed this job runs.
    pub seed: u64,
}

/// A progress event, delivered on the calling thread each time a job
/// completes. Events arrive in completion order — `completed` is
/// monotonic, the jobs are not — so treat them as telemetry, not as the
/// result stream (results come back grid-ordered from
/// [`SweepBuilder::run`]). Once a job has errored, grid-later jobs that
/// were never started are skipped and emit **no** event, so an erroring
/// sweep can finish with fewer than `total` events.
#[derive(Debug, Clone, Copy)]
pub struct SweepEvent<'a> {
    /// Jobs completed so far, including this one.
    pub completed: usize,
    /// Total jobs in the sweep (`cells × seeds`).
    pub total: usize,
    /// The job that completed.
    pub job: JobInfo<'a>,
}

/// Factory producing one streaming [`RunObserver`] per job. Invoked on
/// the worker thread that executes the job, so it must be `Send + Sync`;
/// observation is passive (see [`RunObserver`]), so attaching observers
/// never perturbs the histories.
pub type ObserverFactory = Arc<dyn Fn(&JobInfo<'_>) -> Box<dyn RunObserver> + Send + Sync>;

type ProgressFn = Box<dyn FnMut(&SweepEvent<'_>)>;

/// One labelled cell of a sweep: a fully assembled experiment plus the
/// label it reports under.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Human-readable label (for grid cells: the swept axis values joined
    /// by `/`, e.g. `"mda/alie/eps0.2/b50"`).
    pub label: String,
    /// The experiment this cell runs.
    pub experiment: Experiment,
}

/// One cell's outcome: its label, the experiment that ran, and one
/// history per seed (in seed order).
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The cell's label.
    pub label: String,
    /// The experiment that ran.
    pub experiment: Experiment,
    /// Histories in the same order as the sweep's seed list; each is
    /// bit-identical to what `experiment.run(seed)` returns serially.
    pub histories: Vec<RunHistory>,
}

/// Every cell of a completed sweep, in deterministic grid order.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// The seeds every cell ran with.
    pub seeds: Vec<u64>,
    /// Cells in grid order (axes expanded outer-to-inner in the order
    /// documented on [`SweepBuilder`], explicit cells appended last).
    pub cells: Vec<CellRun>,
}

impl SweepResults {
    /// The first cell carrying `label`, if any.
    pub fn get(&self, label: &str) -> Option<&CellRun> {
        self.cells.iter().find(|c| c.label == label)
    }

    /// Total number of runs executed (`cells × seeds`).
    pub fn total_runs(&self) -> usize {
        self.cells.len() * self.seeds.len()
    }
}

/// Builder for a parallel experiment sweep.
///
/// A sweep is a grid of cells crossed with a seed list. Cells come from
/// three sources, freely combined:
///
/// * **axes** over a base [`ExperimentBuilder`] — GARs, attacks,
///   mechanisms, privacy budgets, batch sizes. The grid is their cross
///   product, expanded outer-to-inner in the fixed order *gars → attacks
///   → mechanisms → epsilons → batch sizes* (elements in the order they
///   were added to each axis);
/// * **scenario packs** ([`SweepBuilder::with_pack`]) — registered,
///   labelled cell bundles expanded over the base, after the grid cells;
/// * **explicit cells** ([`SweepBuilder::cell`]) for anything the axes
///   cannot express (per-cell worker counts, mutated configs, different
///   workloads). Explicit cells run last.
///
/// If no axis is set, no pack is named, and no explicit cell is added,
/// the base builder itself is the single cell. Seeds default to the
/// paper's [`Experiment::PAPER_SEEDS`].
///
/// Determinism: results are keyed by (cell, seed) index, so
/// [`SweepBuilder::run`] returns the exact histories — bit for bit — that
/// the equivalent serial `run_seeds` loop produces, at any pool size.
pub struct SweepBuilder {
    base: ExperimentBuilder,
    gars: Vec<ComponentSpec>,
    attacks: Vec<Option<ComponentSpec>>,
    mechanisms: Vec<ComponentSpec>,
    epsilons: Vec<Option<f64>>,
    batch_sizes: Vec<usize>,
    packs: Vec<String>,
    explicit: Vec<SweepCell>,
    seeds: Option<Vec<u64>>,
    pool_size: Option<usize>,
    observer_factory: Option<ObserverFactory>,
    progress: Option<ProgressFn>,
}

impl Default for SweepBuilder {
    fn default() -> Self {
        Self::over(Experiment::builder())
    }
}

impl SweepBuilder {
    /// Starts a sweep over the default paper-protocol base experiment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a sweep over an explicit base: every grid cell is `base`
    /// with the cell's axis values applied on top.
    pub fn over(base: ExperimentBuilder) -> Self {
        SweepBuilder {
            base,
            gars: Vec::new(),
            attacks: Vec::new(),
            mechanisms: Vec::new(),
            epsilons: Vec::new(),
            batch_sizes: Vec::new(),
            packs: Vec::new(),
            explicit: Vec::new(),
            seeds: None,
            pool_size: None,
            observer_factory: None,
            progress: None,
        }
    }

    /// Adds aggregation rules to the GAR axis (registry ids, `GarKind`s,
    /// or full specs).
    #[must_use]
    pub fn gars<I>(mut self, gars: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<ComponentSpec>,
    {
        self.gars.extend(gars.into_iter().map(Into::into));
        self
    }

    /// Adds armed attacks to the attack axis. Combine with
    /// [`SweepBuilder::with_unattacked`] for a "clean" control cell.
    #[must_use]
    pub fn attacks<I>(mut self, attacks: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<ComponentSpec>,
    {
        self.attacks
            .extend(attacks.into_iter().map(|a| Some(a.into())));
        self
    }

    /// Adds an unattacked element to the attack axis (labelled `clean`),
    /// at the position of this call relative to [`SweepBuilder::attacks`].
    #[must_use]
    pub fn with_unattacked(mut self) -> Self {
        self.attacks.push(None);
        self
    }

    /// Adds noise mechanisms to the mechanism axis.
    #[must_use]
    pub fn mechanisms<I>(mut self, mechanisms: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<ComponentSpec>,
    {
        self.mechanisms
            .extend(mechanisms.into_iter().map(Into::into));
        self
    }

    /// Adds privacy budgets (per-step ε, with the base builder's δ) to
    /// the DP axis. Combine with [`SweepBuilder::with_no_dp`] for a
    /// noise-free control cell.
    #[must_use]
    pub fn epsilons(mut self, epsilons: &[f64]) -> Self {
        self.epsilons.extend(epsilons.iter().map(|&e| Some(e)));
        self
    }

    /// Adds a no-DP element to the DP axis (labelled `nodp`), at the
    /// position of this call relative to [`SweepBuilder::epsilons`].
    #[must_use]
    pub fn with_no_dp(mut self) -> Self {
        self.epsilons.push(None);
        self
    }

    /// Adds batch sizes to the batch axis.
    #[must_use]
    pub fn batch_sizes(mut self, batch_sizes: &[usize]) -> Self {
        self.batch_sizes.extend_from_slice(batch_sizes);
        self
    }

    /// Expands a registered [`ScenarioPack`](crate::pack::ScenarioPack)
    /// over the base: every cell of the pack is the base builder with the
    /// cell's pinned components/axis values applied, labelled
    /// `"{pack}/{cell}"`. Pack cells run after the grid cells (in
    /// `with_pack` call order) and before explicit cells. The id resolves
    /// when the sweep expands — [`SweepBuilder::cells`] or
    /// [`SweepBuilder::run`] — so an unknown pack fails there, listing
    /// every registered pack.
    #[must_use]
    pub fn with_pack(mut self, id: impl Into<String>) -> Self {
        self.packs.push(id.into());
        self
    }

    /// Appends an explicit, fully assembled cell (run after every grid
    /// and pack cell, in insertion order).
    #[must_use]
    pub fn cell(mut self, label: impl Into<String>, experiment: Experiment) -> Self {
        self.explicit.push(SweepCell {
            label: label.into(),
            experiment,
        });
        self
    }

    /// Sets the seeds every cell runs with (unset:
    /// [`Experiment::PAPER_SEEDS`]; explicitly empty: rejected at run).
    #[must_use]
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = Some(seeds.to_vec());
        self
    }

    /// Sets the worker-thread count (default: the machine's available
    /// parallelism, clamped to the job count; 1 degenerates to a serial
    /// loop on a worker thread).
    #[must_use]
    pub fn pool_size(mut self, pool_size: usize) -> Self {
        self.pool_size = Some(pool_size);
        self
    }

    /// Installs a per-job [`RunObserver`] factory: each (cell, seed) run
    /// streams its per-step metrics into a fresh observer from `factory`.
    /// Built on the engines' observer plumbing, so attaching one never
    /// changes the histories.
    #[must_use]
    pub fn observe_with<F>(mut self, factory: F) -> Self
    where
        F: Fn(&JobInfo<'_>) -> Box<dyn RunObserver> + Send + Sync + 'static,
    {
        self.observer_factory = Some(Arc::new(factory));
        self
    }

    /// Installs a progress callback, invoked on the calling thread once
    /// per completed job (see [`SweepEvent`]).
    #[must_use]
    pub fn progress<F>(mut self, callback: F) -> Self
    where
        F: FnMut(&SweepEvent<'_>) + 'static,
    {
        self.progress = Some(Box::new(callback));
        self
    }

    /// Expands the grid (axes over the base, then explicit cells) without
    /// running it. Cell experiments are validated here, so a bad id or an
    /// intolerable Byzantine count fails before any thread spawns.
    ///
    /// # Errors
    ///
    /// Any [`PipelineError`] the base builder surfaces for a grid cell.
    pub fn cells(&self) -> Result<Vec<SweepCell>, PipelineError> {
        let mut cells = Vec::new();
        let has_axes = !(self.gars.is_empty()
            && self.attacks.is_empty()
            && self.mechanisms.is_empty()
            && self.epsilons.is_empty()
            && self.batch_sizes.is_empty());
        if has_axes || (self.explicit.is_empty() && self.packs.is_empty()) {
            // An unset axis contributes one pass-through element.
            fn axis<T>(values: &[T]) -> Vec<Option<&T>> {
                if values.is_empty() {
                    vec![None]
                } else {
                    values.iter().map(Some).collect()
                }
            }
            for gar in axis(&self.gars) {
                for attack in axis(&self.attacks) {
                    for mechanism in axis(&self.mechanisms) {
                        for epsilon in axis(&self.epsilons) {
                            for batch in axis(&self.batch_sizes) {
                                let mut builder = self.base.clone();
                                let mut label = Vec::new();
                                if let Some(gar) = gar {
                                    builder = builder.gar(gar.clone());
                                    label.push(gar.id.clone());
                                }
                                if let Some(attack) = attack {
                                    match attack {
                                        Some(spec) => {
                                            builder = builder.attack(spec.clone());
                                            label.push(spec.id.clone());
                                        }
                                        None => label.push("clean".into()),
                                    }
                                }
                                if let Some(mechanism) = mechanism {
                                    builder = builder.mechanism(mechanism.clone());
                                    label.push(mechanism.id.clone());
                                }
                                if let Some(epsilon) = epsilon {
                                    match epsilon {
                                        Some(eps) => {
                                            builder = builder.epsilon(*eps);
                                            label.push(format!("eps{eps}"));
                                        }
                                        None => label.push("nodp".into()),
                                    }
                                }
                                if let Some(batch) = batch {
                                    builder = builder.batch_size(*batch);
                                    label.push(format!("b{batch}"));
                                }
                                let label = if label.is_empty() {
                                    "base".to_string()
                                } else {
                                    label.join("/")
                                };
                                cells.push(SweepCell {
                                    label,
                                    experiment: builder.build()?,
                                });
                            }
                        }
                    }
                }
            }
        }
        for pack_id in &self.packs {
            let pack = crate::pack::scenario_pack(pack_id)?;
            for cell in &pack.cells {
                // Labelled with the id the caller swept, not the pack's
                // self-declared one: `results.get("{id}/…")` must find
                // the cells even if a factory's pack carries a different
                // internal id.
                let label = format!("{pack_id}/{}", cell.label);
                let experiment = cell.apply(self.base.clone()).build().map_err(|e| {
                    // Name the failing cell: in a ~100-cell pack a bare
                    // build error is unactionable.
                    PipelineError::Spec(format!("pack cell `{label}` failed to build: {e}"))
                })?;
                cells.push(SweepCell { label, experiment });
            }
        }
        cells.extend(self.explicit.iter().cloned());
        Ok(cells)
    }

    /// Expands the grid and runs every (cell, seed) job on the pool.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Spec`] on an empty seed list; any cell-build
    /// error before execution; otherwise the error of the **grid-first**
    /// failing job (deterministic regardless of completion order — once
    /// an error is recorded, not-yet-started grid-later jobs are skipped
    /// rather than run, since only grid-earlier jobs could displace it).
    pub fn run(mut self) -> Result<SweepResults, PipelineError> {
        let cells = self.cells()?;
        let seeds = self
            .seeds
            .take()
            .unwrap_or_else(|| Experiment::PAPER_SEEDS.to_vec());
        let histories = execute(
            &cells,
            &seeds,
            self.pool_size,
            self.observer_factory.as_ref(),
            self.progress.as_mut(),
        )?;
        Ok(SweepResults {
            seeds,
            cells: cells
                .into_iter()
                .zip(histories)
                .map(|(cell, histories)| CellRun {
                    label: cell.label,
                    experiment: cell.experiment,
                    histories,
                })
                .collect(),
        })
    }
}

/// The single-cell fast path behind [`Experiment::run_seeds_parallel`].
pub(crate) fn run_one_parallel(
    experiment: &Experiment,
    seeds: &[u64],
    pool_size: Option<usize>,
) -> Result<Vec<RunHistory>, PipelineError> {
    let cells = [SweepCell {
        label: "cell".into(),
        experiment: experiment.clone(),
    }];
    let mut grid = execute(&cells, seeds, pool_size, None, None)?;
    Ok(grid.pop().expect("one cell in, one row out")) // lint:allow(panic-unwrap, reason = "one cell in, one row out: the grid passed above is a singleton")
}

fn default_pool_size() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

struct Job {
    cell: usize,
    slot: usize,
    seed: u64,
}

enum JobOutcome {
    /// Boxed: a sealed history (with its churn ledger) dwarfs the other
    /// variants, and every outcome rides a channel.
    Done(Box<RunHistory>),
    Failed(PipelineError),
    /// The job was grid-later than an already-recorded error and was
    /// never run (its history would be discarded anyway).
    Skipped,
}

type JobDone = (usize, usize, u64, JobOutcome);

/// Runs `cells × seeds` jobs on `pool_size` workers; returns one history
/// row per cell, in cell order, each row in seed order.
fn execute(
    cells: &[SweepCell],
    seeds: &[u64],
    pool_size: Option<usize>,
    observer_factory: Option<&ObserverFactory>,
    mut progress: Option<&mut ProgressFn>,
) -> Result<Vec<Vec<RunHistory>>, PipelineError> {
    check_seeds(seeds)?;
    if cells.is_empty() {
        return Err(PipelineError::Spec(
            "sweep has no cells: set an axis or add explicit cells".into(),
        ));
    }
    let total = cells.len() * seeds.len();
    let pool_size = pool_size.unwrap_or_else(default_pool_size).clamp(1, total);

    // The shared job queue: workers pull the next (cell, seed) as soon as
    // they free up, so a slow cell never serializes the rest of the grid.
    let (job_tx, job_rx) = channel::unbounded::<Job>();
    for cell in 0..cells.len() {
        for (slot, &seed) in seeds.iter().enumerate() {
            job_tx
                .send(Job { cell, slot, seed })
                .expect("job queue receiver alive"); // lint:allow(panic-unwrap, reason = "a send fails only when the worker pool hung up, which requires a worker panic; propagating is correct")
        }
    }
    drop(job_tx); // Workers drain the queue, then see the disconnect.

    let (done_tx, done_rx) = channel::unbounded::<JobDone>();
    let mut grid: Vec<Vec<Option<RunHistory>>> =
        (0..cells.len()).map(|_| vec![None; seeds.len()]).collect();
    // First error in (cell, slot) order — deterministic even though jobs
    // complete in scheduler order.
    let mut first_error: Option<(usize, usize, PipelineError)> = None;
    // Flat job order of the grid-first error so far (u64::MAX = none):
    // once set, workers skip grid-*later* jobs instead of running them —
    // their results would be discarded anyway, and only grid-earlier
    // jobs can displace the recorded error, so determinism is preserved.
    let error_watermark = AtomicU64::new(u64::MAX);
    let flat = |cell: usize, slot: usize| (cell * seeds.len() + slot) as u64;

    thread::scope(|scope| {
        for _ in 0..pool_size {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let error_watermark = &error_watermark;
            scope.spawn(move || {
                // One engine scratch per pool worker, reused across every
                // (cell × seed) job this worker pulls: consecutive jobs
                // recycle the round buffers, output slots, and (threaded)
                // frame arena instead of rebuilding them per job. Reuse
                // is bit-invisible, so results stay identical to fresh
                // per-job construction at any pool size.
                let mut scratch = RunScratch::new();
                while let Ok(job) = job_rx.recv() {
                    let outcome =
                        if flat(job.cell, job.slot) > error_watermark.load(Ordering::Relaxed) {
                            JobOutcome::Skipped
                        } else {
                            let cell = &cells[job.cell];
                            let observer = observer_factory.map(|factory| {
                                let info = JobInfo {
                                    cell: job.cell,
                                    label: &cell.label,
                                    seed: job.seed,
                                };
                                factory(&info)
                            });
                            match cell.experiment.run_inner(job.seed, observer, &mut scratch) {
                                Ok(history) => JobOutcome::Done(Box::new(history)),
                                Err(error) => JobOutcome::Failed(error),
                            }
                        };
                    if done_tx
                        .send((job.cell, job.slot, job.seed, outcome))
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        drop(done_tx);
        drop(job_rx);

        let mut completed = 0;
        for _ in 0..total {
            let (cell, slot, seed, outcome) =
                done_rx.recv().expect("a sweep worker thread panicked"); // lint:allow(panic-unwrap, reason = "a recv fails only when every worker vanished, which requires a worker panic; propagating is correct")
            match outcome {
                JobOutcome::Done(history) => grid[cell][slot] = Some(*history),
                JobOutcome::Failed(error) => {
                    if first_error
                        .as_ref()
                        .is_none_or(|(c, s, _)| (cell, slot) < (*c, *s))
                    {
                        first_error = Some((cell, slot, error));
                        error_watermark.fetch_min(flat(cell, slot), Ordering::Relaxed);
                    }
                }
                // Never executed (grid-later than a recorded error): not a
                // completion, so no progress event for it.
                JobOutcome::Skipped => continue,
            }
            completed += 1;
            if let Some(callback) = progress.as_deref_mut() {
                callback(&SweepEvent {
                    completed,
                    total,
                    job: JobInfo {
                        cell,
                        label: &cells[cell].label,
                        seed,
                    },
                });
            }
        }
    });

    if let Some((_, _, error)) = first_error {
        return Err(error);
    }
    Ok(grid
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|h| h.expect("every job completed")) // lint:allow(panic-unwrap, reason = "a vacant slot means a job never completed, which requires a worker panic; propagating is correct")
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GarKind;
    use std::sync::Mutex;

    fn quick_base() -> ExperimentBuilder {
        Experiment::builder().steps(4).dataset_size(200)
    }

    #[test]
    fn grid_order_is_axis_major_and_labels_compose() {
        let cells = SweepBuilder::over(quick_base().gar("mda").attack("alie"))
            .with_no_dp()
            .epsilons(&[0.2])
            .batch_sizes(&[10, 20])
            .cells()
            .unwrap();
        let labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["nodp/b10", "nodp/b20", "eps0.2/b10", "eps0.2/b20"]);
        assert_eq!(cells[3].experiment.config.batch_size, 20);
        assert!(cells[3].experiment.budget.is_some());
        assert!(cells[0].experiment.budget.is_none());
    }

    #[test]
    fn axis_free_builder_is_a_single_base_cell() {
        let cells = SweepBuilder::over(quick_base()).cells().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].label, "base");
    }

    #[test]
    fn explicit_cells_replace_the_grid_when_no_axis_set() {
        let exp = quick_base().build().unwrap();
        let cells = SweepBuilder::new().cell("only", exp).cells().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].label, "only");
    }

    #[test]
    fn gar_and_attack_axes_expand() {
        let cells = SweepBuilder::over(quick_base())
            .gars([GarKind::Mda, GarKind::Median])
            .attacks(["alie", "foe"])
            .cells()
            .unwrap();
        let labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["mda/alie", "mda/foe", "median/alie", "median/foe"]);
    }

    #[test]
    fn invalid_grid_cell_fails_before_running() {
        // Averaging cannot host an armed attack: the cell build rejects
        // the sweep before any thread spawns.
        let err = SweepBuilder::over(quick_base())
            .gars(["average"])
            .attacks(["alie"])
            .seeds(&[1])
            .run()
            .unwrap_err();
        assert!(matches!(err, PipelineError::Spec(_)));
    }

    #[test]
    fn parallel_results_match_serial_in_grid_order() {
        let base = quick_base().gar("mda").attack("alie");
        let seeds = [1u64, 2];
        let results = SweepBuilder::over(base.clone())
            .with_no_dp()
            .epsilons(&[0.2])
            .batch_sizes(&[10, 20])
            .seeds(&seeds)
            .pool_size(4)
            .run()
            .unwrap();
        let serial_cells = SweepBuilder::over(base)
            .with_no_dp()
            .epsilons(&[0.2])
            .batch_sizes(&[10, 20])
            .cells()
            .unwrap();
        for (run, cell) in results.cells.iter().zip(&serial_cells) {
            assert_eq!(run.label, cell.label);
            let serial = cell.experiment.run_seeds(&seeds).unwrap();
            assert_eq!(run.histories, serial, "cell {}", run.label);
        }
        assert_eq!(results.total_runs(), 8);
        assert!(results.get("eps0.2/b20").is_some());
        assert!(results.get("nonexistent").is_none());
    }

    #[test]
    fn with_pack_expands_over_the_base_with_prefixed_labels() {
        let cells = SweepBuilder::over(quick_base())
            .with_pack("paper-core")
            .cells()
            .unwrap();
        let labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "paper-core/clean/nodp",
                "paper-core/clean/dp",
                "paper-core/mda/alie/nodp",
                "paper-core/mda/alie/dp",
                "paper-core/mda/foe/nodp",
                "paper-core/mda/foe/dp",
            ]
        );
        // Pack cells inherit the base's quick scale…
        assert_eq!(cells[0].experiment.config.steps, 4);
        // …and pin their own components/axis values on top.
        assert!(cells[0].experiment.budget.is_none());
        assert_eq!(cells[1].experiment.budget.unwrap().epsilon(), 0.2);
        assert_eq!(cells[2].experiment.gar.id, "mda");
        assert_eq!(cells[2].experiment.config.n_byzantine, 5);
    }

    #[test]
    fn packs_combine_with_grid_and_explicit_cells_in_order() {
        let explicit = quick_base().build().unwrap();
        let cells = SweepBuilder::over(quick_base())
            .batch_sizes(&[10])
            .with_pack("clipping-study")
            .cell("tail", explicit)
            .cells()
            .unwrap();
        assert_eq!(cells[0].label, "b10"); // grid first
        assert!(cells[1].label.starts_with("clipping-study/")); // packs next
        assert_eq!(cells.last().unwrap().label, "tail"); // explicit last
        assert_eq!(cells.len(), 1 + 9 + 1);
    }

    #[test]
    fn pack_labels_use_the_swept_id_even_if_the_factory_disagrees() {
        // A factory may (wrongly) produce a pack whose self-declared id
        // differs from its registered one; result labels must still be
        // findable under the id the caller swept.
        crate::pack::register_scenario_pack_with("sweep-alias-v2", |_| {
            Ok(std::sync::Arc::new(
                crate::pack::ScenarioPack::new("sweep-alias", "internal id differs")
                    .cell(crate::pack::PackCell::new("only").gar("median")),
            ))
        })
        .unwrap();
        let cells = SweepBuilder::over(quick_base())
            .with_pack("sweep-alias-v2")
            .cells()
            .unwrap();
        assert_eq!(cells[0].label, "sweep-alias-v2/only");
    }

    #[test]
    fn unknown_pack_id_fails_at_expansion_listing_available() {
        let err = SweepBuilder::over(quick_base())
            .with_pack("no-such-pack")
            .cells()
            .unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("no-such-pack") && message.contains("paper-core"),
            "{message}"
        );
    }

    #[test]
    fn pack_runs_end_to_end_bit_identically_across_pool_sizes() {
        let base = quick_base();
        let run = |pool: usize| {
            SweepBuilder::over(base.clone())
                .with_pack("paper-core")
                .seeds(&[1, 2])
                .pool_size(pool)
                .run()
                .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.histories, b.histories, "cell {}", a.label);
        }
    }

    #[test]
    fn empty_seed_list_is_rejected() {
        let err = SweepBuilder::over(quick_base())
            .seeds(&[])
            .run()
            .unwrap_err();
        assert!(matches!(err, PipelineError::Spec(_)));
    }

    #[test]
    fn progress_fires_once_per_job_and_observers_stream() {
        let events: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = events.clone();
        let observed_steps = Arc::new(Mutex::new(0usize));
        let counter = observed_steps.clone();
        let results = SweepBuilder::over(quick_base())
            .batch_sizes(&[10, 20])
            .seeds(&[1, 2, 3])
            .pool_size(2)
            .progress(move |e| sink.lock().unwrap().push((e.completed, e.total)))
            .observe_with(move |_job| {
                let counter = counter.clone();
                Box::new(dpbyz_server::FnObserver::new(move |_m| {
                    *counter.lock().unwrap() += 1;
                }))
            })
            .run()
            .unwrap();
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 6);
        assert_eq!(events.first(), Some(&(1, 6)));
        assert_eq!(events.last(), Some(&(6, 6)));
        // 2 cells × 3 seeds × 4 steps streamed through the observers.
        assert_eq!(*observed_steps.lock().unwrap(), 24);
        // Observation is passive: histories still match the serial runs.
        let serial = results.cells[0]
            .experiment
            .run_seeds(&results.seeds)
            .unwrap();
        assert_eq!(results.cells[0].histories, serial);
    }

    #[test]
    fn runtime_error_is_grid_first_deterministic() {
        // A cell that fails at *run* time (not build time): hand-assemble
        // an experiment whose GAR rejects its Byzantine count on step 1.
        let good = quick_base().build().unwrap();
        let mut bad = quick_base().build().unwrap();
        bad.config.n_byzantine = 2;
        bad.attack = Some("alie".into());
        let err = SweepBuilder::new()
            .cell("good", good)
            .cell("bad", bad)
            .seeds(&[1, 2])
            .pool_size(4)
            .run()
            .unwrap_err();
        assert!(matches!(err, PipelineError::Gar(_)), "{err}");
    }
}
