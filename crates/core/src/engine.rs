//! Execution-engine backends behind one registry of string ids.
//!
//! Every way of *running* an [`Experiment`] — the sequential zero-copy
//! engine, the threaded engine, and out-of-process deployments like the
//! TCP coordinator — implements [`EngineBackend`] and registers under a
//! string id, exactly the registry idiom GARs, attacks, and mechanisms
//! use. The experiment stores a backend [`ComponentSpec`]; `run` resolves
//! it at execution time, so backends registered by downstream crates
//! (the `dpbyz-net` crate's `"tcp"`) participate with no changes here.
//!
//! Built-ins:
//!
//! * `"sequential"` — [`Trainer`](dpbyz_server::Trainer), the golden
//!   zero-copy reference engine;
//! * `"threaded"` — [`ThreadedTrainer`], one pooled OS thread per honest
//!   worker over the serialized wire format.
//!
//! Every backend must reproduce the reference engine's histories **bit
//! for bit** on a clean run — that contract is what lets the pipeline
//! treat backend selection as an execution detail rather than a modeling
//! choice.

use crate::pipeline::{Experiment, PipelineError};
use crate::registry::{ComponentSpec, Registry, RegistryError};
use dpbyz_server::{RunHistory, RunObserver, RunScratch, ThreadedTrainer};
use std::sync::{Arc, OnceLock, RwLock};

/// An execution engine: turns an [`Experiment`] plus a seed into a
/// [`RunHistory`].
///
/// Implementations must be **bit-faithful**: on a clean run (no injected
/// faults beyond what the experiment itself configures) the produced
/// history must equal the sequential reference engine's exactly — same
/// RNG-stream derivation, same arithmetic, same float bit patterns. The
/// golden-history tests pin this for the in-process engines; the
/// distributed digest tests pin it across process boundaries.
pub trait EngineBackend: Send + Sync {
    /// The backend's registered id (for diagnostics).
    fn name(&self) -> &str;

    /// Executes one run of the experiment.
    ///
    /// `observer` streams per-step metrics (observation must stay
    /// passive); `scratch` recycles buffers across consecutive runs.
    ///
    /// # Errors
    ///
    /// Anything the underlying engine surfaces — aggregation errors,
    /// spec errors, transport failures — mapped into [`PipelineError`].
    fn run(
        &self,
        exp: &Experiment,
        seed: u64,
        observer: Option<Box<dyn RunObserver>>,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, PipelineError>;
}

/// The sequential reference engine (`"sequential"`).
struct SequentialBackend;

impl EngineBackend for SequentialBackend {
    fn name(&self) -> &str {
        "sequential"
    }

    fn run(
        &self,
        exp: &Experiment,
        seed: u64,
        observer: Option<Box<dyn RunObserver>>,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, PipelineError> {
        let mut trainer = exp.build_trainer()?;
        if let Some(observer) = observer {
            trainer = trainer.observer(observer);
        }
        Ok(trainer.run_with_scratch(seed, scratch)?)
    }
}

/// The threaded in-process engine (`"threaded"`).
struct ThreadedBackend;

impl EngineBackend for ThreadedBackend {
    fn name(&self) -> &str {
        "threaded"
    }

    fn run(
        &self,
        exp: &Experiment,
        seed: u64,
        observer: Option<Box<dyn RunObserver>>,
        scratch: &mut RunScratch,
    ) -> Result<RunHistory, PipelineError> {
        let mut trainer = exp.build_trainer()?;
        if let Some(observer) = observer {
            trainer = trainer.observer(observer);
        }
        Ok(ThreadedTrainer::from(trainer).run_with_scratch(seed, scratch)?)
    }
}

fn built_in_backends() -> Registry<dyn EngineBackend> {
    let mut r = Registry::new();
    r.seed("sequential", |_| {
        Ok(Arc::new(SequentialBackend) as Arc<dyn EngineBackend>)
    });
    r.seed("threaded", |_| {
        Ok(Arc::new(ThreadedBackend) as Arc<dyn EngineBackend>)
    });
    r
}

fn backend_registry() -> &'static RwLock<Registry<dyn EngineBackend>> {
    static REGISTRY: OnceLock<RwLock<Registry<dyn EngineBackend>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(built_in_backends()))
}

/// Registers an execution backend under a new id.
///
/// # Errors
///
/// [`RegistryError::DuplicateId`] if the id is taken.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn register_backend(
    id: impl Into<String>,
    factory: impl Fn(&ComponentSpec) -> Result<Arc<dyn EngineBackend>, RegistryError>
        + Send
        + Sync
        + 'static,
) -> Result<(), RegistryError> {
    crate::registry::write_guard(backend_registry()).register(id, factory)
}

/// Builds a backend from its spec.
///
/// # Errors
///
/// [`RegistryError::UnknownId`] naming the available backends if the id
/// is not registered; the factory's own error otherwise.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn build_backend(spec: &ComponentSpec) -> Result<Arc<dyn EngineBackend>, RegistryError> {
    let factory = crate::registry::read_guard(backend_registry()).factory(&spec.id)?;
    factory(spec)
}

/// Registered backend ids, sorted.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn backend_ids() -> Vec<String> {
    crate::registry::read_guard(backend_registry()).ids()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_ins_present() {
        let ids = backend_ids();
        assert!(ids.contains(&"sequential".to_string()));
        assert!(ids.contains(&"threaded".to_string()));
    }

    #[test]
    fn unknown_backend_names_available() {
        let err = match build_backend(&ComponentSpec::new("carrier-pigeon")) {
            Ok(_) => panic!("unregistered id built"),
            Err(e) => e,
        };
        match err {
            RegistryError::UnknownId { id, available } => {
                assert_eq!(id, "carrier-pigeon");
                assert!(available.contains(&"sequential".to_string()));
            }
            other => panic!("expected UnknownId, got {other}"),
        }
    }

    #[test]
    fn backends_are_buildable_and_named() {
        for id in ["sequential", "threaded"] {
            let backend = build_backend(&ComponentSpec::new(id)).unwrap();
            assert_eq!(backend.name(), id);
        }
    }
}
