//! Theorem 1 — training-error bounds for strongly convex costs.
//!
//! For any `(α, f)`-Byzantine-resilient GAR fed the noisy gradients of
//! Eq. 7, with `γ_t = 1/(λ(1 − sin α)·t)`:
//!
//! * **upper bound** (Eq. 12):
//!   `E[Q(w_{T+1})] − Q* ≤ (1/(T+1)) · (μ·c / (2λ²(1 − sin α)²)) ·
//!   (σ²/b + d·s² + G²max)`;
//! * **lower bound** (Cramér–Rao on the mean-estimation instance):
//!   `E[Q(ŵ)] − Q* ≥ (σ²/b + d·s²) / (2T)`;
//!
//! both `Θ(d·log(1/δ) / (T·b²·ε²))` once `s` is substituted from Eq. 6.
//! Without DP (`s = 0`) the same algorithm achieves `O(1/T)` — the
//! dimension-free rate the noise destroys.

use dpbyz_dp::PrivacyBudget;
use serde::{Deserialize, Serialize};

/// Problem constants for the bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemConstants {
    /// Strong-convexity modulus λ (Assumption 2).
    pub lambda: f64,
    /// Gradient-Lipschitz modulus μ (Assumption 3).
    pub mu: f64,
    /// Per-sample gradient variance σ² (Assumption 4).
    pub sigma2: f64,
    /// Gradient-norm bound `G_max` (Assumption 1).
    pub g_max: f64,
    /// The resilience angle's sine, `sin α ∈ [0, 1)`.
    pub sin_alpha: f64,
    /// The moment constant `c` of Eq. 11 (order 1; the GAR-dependent
    /// constant in condition (2) of Byzantine resilience).
    pub c: f64,
}

impl ProblemConstants {
    /// The constants of the mean-estimation instance used for the lower
    /// bound: λ = μ = 1, exact-resilience angle α = 0, `c = 1`.
    pub fn mean_estimation(sigma2: f64, g_max: f64) -> Self {
        ProblemConstants {
            lambda: 1.0,
            mu: 1.0,
            sigma2,
            g_max,
            sin_alpha: 0.0,
            c: 1.0,
        }
    }
}

/// The Eq. 6 noise std `s = 2·G_max·√(2·ln(1.25/δ)) / (b·ε)`, or 0 without
/// a budget.
pub fn noise_std(budget: Option<PrivacyBudget>, g_max: f64, batch_size: usize) -> f64 {
    match budget {
        None => 0.0,
        Some(b) => {
            2.0 * g_max * (2.0 * (1.25 / b.delta()).ln()).sqrt() / (batch_size as f64 * b.epsilon())
        }
    }
}

/// Theorem 1's upper bound (Eq. 12) on `E[Q(w_{T+1})] − Q*`.
pub fn upper_bound(
    constants: &ProblemConstants,
    steps: u32,
    batch_size: usize,
    dim: usize,
    budget: Option<PrivacyBudget>,
) -> f64 {
    let s = noise_std(budget, constants.g_max, batch_size);
    let variance_term = constants.sigma2 / batch_size as f64
        + dim as f64 * s * s
        + constants.g_max * constants.g_max;
    let prefactor = constants.mu * constants.c
        / (2.0 * constants.lambda * constants.lambda * (1.0 - constants.sin_alpha).powi(2));
    prefactor * variance_term / (steps as f64 + 1.0)
}

/// The Cramér–Rao lower bound on `E[Q(ŵ)] − Q*` for the mean-estimation
/// instance: `(σ²/b + d·s²) / (2T)`.
pub fn lower_bound(
    sigma2: f64,
    g_max: f64,
    steps: u32,
    batch_size: usize,
    dim: usize,
    budget: Option<PrivacyBudget>,
) -> f64 {
    let s = noise_std(budget, g_max, batch_size);
    (sigma2 / batch_size as f64 + dim as f64 * s * s) / (2.0 * steps as f64)
}

/// The headline `Θ` expression, `d·ln(1/δ) / (T·b²·ε²)` — useful for
/// checking *scaling* against measurements without tracking constants.
pub fn theta_rate(dim: usize, budget: PrivacyBudget, steps: u32, batch_size: usize) -> f64 {
    dim as f64 * (1.0 / budget.delta()).ln()
        / (steps as f64 * (batch_size * batch_size) as f64 * budget.epsilon() * budget.epsilon())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_budget() -> PrivacyBudget {
        PrivacyBudget::new(0.2, 1e-6).unwrap()
    }

    #[test]
    fn noise_std_matches_eq6() {
        let s = noise_std(Some(paper_budget()), 0.01, 50);
        let expected = 2.0 * 0.01 * (2.0 * (1.25f64 / 1e-6).ln()).sqrt() / (50.0 * 0.2);
        assert!((s - expected).abs() < 1e-15);
        assert_eq!(noise_std(None, 0.01, 50), 0.0);
    }

    #[test]
    fn upper_bound_decays_as_one_over_t() {
        let c = ProblemConstants::mean_estimation(1.0, 1.0);
        let u100 = upper_bound(&c, 100, 10, 20, None);
        let u1000 = upper_bound(&c, 1000, 10, 20, None);
        let ratio = u100 / u1000;
        assert!((ratio - 1001.0 / 101.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn dp_upper_bound_scales_linearly_in_d() {
        // With noise dominating, doubling d roughly doubles the bound.
        let c = ProblemConstants::mean_estimation(0.0, 1.0);
        let budget = Some(paper_budget());
        let u_d = upper_bound(&c, 100, 10, 1000, budget) - upper_bound(&c, 100, 10, 0, budget);
        let u_2d = upper_bound(&c, 100, 10, 2000, budget) - upper_bound(&c, 100, 10, 0, budget);
        assert!((u_2d / u_d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_below_upper_bound() {
        // Theorem 1 is a Θ statement: the bounds match up to constants.
        // With the tightest moment constant (c = 1) the lower bound can
        // exceed the upper by the T/(T+1) slack, so order them under any
        // valid c ≥ 2 (Eq. 11 only asserts existence of some c).
        let c = ProblemConstants {
            c: 2.0,
            ..ProblemConstants::mean_estimation(1.0, 1.0)
        };
        let budget = Some(paper_budget());
        for &(t, b, d) in &[(10u32, 5usize, 10usize), (100, 50, 100), (1000, 10, 1000)] {
            let lo = lower_bound(c.sigma2, c.g_max, t, b, d, budget);
            let hi = upper_bound(&c, t, b, d, budget);
            assert!(lo <= hi, "lo {lo} > hi {hi} at T={t}, b={b}, d={d}");
        }
    }

    #[test]
    fn bounds_agree_up_to_constant_factor() {
        // The ratio upper/lower stays bounded across three decades of d —
        // the Θ matching.
        let c = ProblemConstants::mean_estimation(1.0, 1.0);
        let budget = Some(paper_budget());
        let mut ratios = Vec::new();
        for &d in &[10usize, 100, 1000, 10_000] {
            let lo = lower_bound(c.sigma2, c.g_max, 100, 10, d, budget);
            let hi = upper_bound(&c, 100, 10, d, budget);
            ratios.push(hi / lo);
        }
        for r in &ratios {
            assert!(*r > 0.3 && *r < 10.0, "ratio {r} escaped Θ window");
        }
    }

    #[test]
    fn bounds_collapse_without_dp() {
        // s = 0: the lower bound loses its d-dependence entirely.
        let lo_small = lower_bound(1.0, 1.0, 100, 10, 10, None);
        let lo_large = lower_bound(1.0, 1.0, 100, 10, 100_000, None);
        assert_eq!(lo_small, lo_large);
    }

    #[test]
    fn theta_rate_scalings() {
        let budget = paper_budget();
        let base = theta_rate(100, budget, 1000, 50);
        // Linear in d.
        assert!((theta_rate(200, budget, 1000, 50) / base - 2.0).abs() < 1e-12);
        // Inverse in T.
        assert!((theta_rate(100, budget, 2000, 50) / base - 0.5).abs() < 1e-12);
        // Inverse-square in b.
        assert!((theta_rate(100, budget, 1000, 100) / base - 0.25).abs() < 1e-12);
        // Inverse-square in ε.
        let loose = PrivacyBudget::new(0.4, 1e-6).unwrap();
        assert!((theta_rate(100, loose, 1000, 50) / base - 0.25).abs() < 1e-12);
    }
}
