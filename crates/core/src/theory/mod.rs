//! Closed-form calculators for the paper's theoretical results.
//!
//! * [`vn`] — the VN-ratio condition with DP noise (Eq. 8);
//! * [`table1`] — the per-GAR necessary conditions (Propositions 1–3);
//! * [`convergence`] — Theorem 1's error-rate bounds.

pub mod convergence;
pub mod table1;
pub mod vn;
