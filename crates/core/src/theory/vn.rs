//! Eq. 8 — the VN-ratio condition under DP noise.
//!
//! A gradient aggregation step that is both `(ε, δ)`-DP (Gaussian
//! mechanism, Eq. 6) and certified `(α, f)`-Byzantine resilient must
//! satisfy
//!
//! ```text
//! √( E‖G − E[G]‖²  +  8·d·G²max·ln(1.25/δ) / (ε²·b²) )
//! ─────────────────────────────────────────────────────  ≤  κ_F(n, f)
//!                      ‖E[G]‖
//! ```
//!
//! The added term is exactly `d·s²` for the Eq. 6 noise std `s`.

use dpbyz_dp::PrivacyBudget;

/// The DP-noise contribution to the VN numerator:
/// `d·s² = 8·d·G²max·ln(1.25/δ) / (ε²·b²)`.
pub fn noise_energy(budget: PrivacyBudget, g_max: f64, batch_size: usize, dim: usize) -> f64 {
    assert!(g_max > 0.0 && batch_size > 0, "invalid calibration inputs");
    8.0 * dim as f64 * g_max * g_max * (1.25 / budget.delta()).ln()
        / (budget.epsilon() * budget.epsilon() * (batch_size * batch_size) as f64)
}

/// The left-hand side of Eq. 8: the noisy VN ratio given the intrinsic
/// gradient variance `σ_G² = E‖G − E[G]‖²` and the true-gradient norm.
///
/// Returns `+∞` when the gradient norm is 0 (the condition can never hold
/// at a critical point, consistent with Eq. 2).
pub fn noisy_vn_ratio(
    gradient_variance: f64,
    grad_norm: f64,
    budget: PrivacyBudget,
    g_max: f64,
    batch_size: usize,
    dim: usize,
) -> f64 {
    assert!(gradient_variance >= 0.0 && grad_norm >= 0.0);
    if grad_norm == 0.0 {
        return f64::INFINITY;
    }
    (gradient_variance + noise_energy(budget, g_max, batch_size, dim)).sqrt() / grad_norm
}

/// Whether Eq. 8 holds against a GAR bound `kappa`.
pub fn condition_holds(
    gradient_variance: f64,
    grad_norm: f64,
    budget: PrivacyBudget,
    g_max: f64,
    batch_size: usize,
    dim: usize,
    kappa: f64,
) -> bool {
    noisy_vn_ratio(gradient_variance, grad_norm, budget, g_max, batch_size, dim) <= kappa
}

/// Steady-state DP-noise energy in a *worker-momentum* submission
/// (El-Mhamdi et al. 2021, the experimental protocol of §5): the worker
/// submits `v_t = Σ_k m^k·o_{t−k}`, so the independent per-step noises
/// accumulate to `d·s² / (1 − m²)` as `t → ∞`.
///
/// At the paper's `m = 0.99` the amplification is `1/(1−0.99²) ≈ 50×` —
/// which is why the Fig. 2 collapse is so much starker than the raw
/// per-gradient Eq. 8 numbers alone suggest.
///
/// # Panics
///
/// Panics unless `m ∈ [0, 1)`.
pub fn momentum_accumulated_noise_energy(
    budget: PrivacyBudget,
    g_max: f64,
    batch_size: usize,
    dim: usize,
    momentum: f64,
) -> f64 {
    assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
    noise_energy(budget, g_max, batch_size, dim) / (1.0 - momentum * momentum)
}

/// The smallest batch size for which Eq. 8 *can* hold in the best case
/// (`σ_G² = 0`, `‖E[G]‖ = G_max` — the most favourable gradient
/// statistics), i.e. the hard floor
/// `b ≥ √(8·d·ln(1.25/δ)) / (ε·κ)` of the proofs of Propositions 1–3.
///
/// Returns `None` if `kappa ≤ 0`.
pub fn min_feasible_batch(budget: PrivacyBudget, dim: usize, kappa: f64) -> Option<usize> {
    if kappa <= 0.0 {
        return None;
    }
    let b = (8.0 * dim as f64 * (1.25 / budget.delta()).ln()).sqrt() / (budget.epsilon() * kappa);
    Some(b.ceil().max(1.0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_dp::{GaussianMechanism, Mechanism};

    fn paper_budget() -> PrivacyBudget {
        PrivacyBudget::new(0.2, 1e-6).unwrap()
    }

    #[test]
    fn noise_energy_equals_d_s_squared() {
        // Consistency with the mechanism's own accounting.
        let budget = paper_budget();
        let (g_max, b, d) = (0.01, 50, 69);
        let mech = GaussianMechanism::for_clipped_gradients(budget, g_max, b).unwrap();
        let via_mech = mech.total_noise_variance(d);
        let via_eq8 = noise_energy(budget, g_max, b, d);
        assert!(
            (via_mech - via_eq8).abs() / via_eq8 < 1e-12,
            "{via_mech} vs {via_eq8}"
        );
    }

    #[test]
    fn ratio_reduces_to_eq2_without_noise_limit() {
        // As b → ∞ the noise term vanishes and the ratio approaches
        // √σ²/‖∇Q‖.
        let budget = paper_budget();
        let r = noisy_vn_ratio(0.04, 0.5, budget, 0.01, 1_000_000, 69);
        assert!((r - 0.2 / 0.5).abs() < 1e-6);
    }

    #[test]
    fn ratio_grows_with_dimension_as_sqrt_d() {
        let budget = paper_budget();
        let r_d = noisy_vn_ratio(0.0, 0.01, budget, 0.01, 50, 100);
        let r_4d = noisy_vn_ratio(0.0, 0.01, budget, 0.01, 50, 400);
        assert!((r_4d / r_d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn condition_fails_in_high_privacy_regime() {
        // Paper's point: at (ε = 0.2, δ = 1e-6), d = 69, b = 50, MDA's
        // κ(11,5) cannot be met even with zero intrinsic variance, because
        // the best possible norm is G_max.
        let budget = paper_budget();
        let kappa = 6.0 / (8f64.sqrt() * 5.0); // MDA, n = 11, f = 5
        assert!(!condition_holds(0.0, 0.01, budget, 0.01, 50, 69, kappa));
        // But a gigantic batch rescues it (the b ∈ Ω(√d) escape).
        assert!(condition_holds(0.0, 0.01, budget, 0.01, 100_000, 69, kappa));
    }

    #[test]
    fn min_feasible_batch_matches_closed_form() {
        let budget = paper_budget();
        let kappa = 6.0 / (8f64.sqrt() * 5.0);
        let b = min_feasible_batch(budget, 69, kappa).unwrap();
        let expected = (8.0 * 69.0 * (1.25f64 / 1e-6).ln()).sqrt() / (0.2 * kappa);
        assert_eq!(b, expected.ceil() as usize);
        // And the boundary actually separates feasible from infeasible at
        // the most favourable statistics.
        assert!(condition_holds(0.0, 0.01, budget, 0.01, b, 69, kappa));
        assert!(!condition_holds(0.0, 0.01, budget, 0.01, b / 2, 69, kappa));
        assert!(min_feasible_batch(budget, 69, 0.0).is_none());
    }

    #[test]
    fn zero_gradient_norm_is_infeasible() {
        let budget = paper_budget();
        assert!(noisy_vn_ratio(0.0, 0.0, budget, 0.01, 50, 69).is_infinite());
    }

    #[test]
    fn momentum_amplifies_noise_energy() {
        let budget = paper_budget();
        let raw = noise_energy(budget, 0.01, 50, 69);
        // m = 0 is the identity.
        assert_eq!(
            momentum_accumulated_noise_energy(budget, 0.01, 50, 69, 0.0),
            raw
        );
        // The paper's m = 0.99 amplifies by ≈ 50×.
        let amplified = momentum_accumulated_noise_energy(budget, 0.01, 50, 69, 0.99);
        let factor = amplified / raw;
        assert!((factor - 1.0 / (1.0 - 0.99f64 * 0.99)).abs() < 1e-9);
        assert!(factor > 50.0 && factor < 51.0, "factor {factor}");
    }
}
