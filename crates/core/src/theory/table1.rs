//! Table 1 — per-GAR necessary conditions for the VN condition under DP
//! (Propositions 1–3).
//!
//! With `C = ε/√(ln(1.25/δ))`, the proofs show the noisy VN condition
//! (Eq. 8) *cannot* hold unless:
//!
//! | GAR | necessary condition |
//! |-----|---------------------|
//! | Krum, Bulyan | `C·b ≥ √(16·d·(n + f²))` |
//! | Median | `C·b ≥ √(4·d·(n + 1))` |
//! | Meamed | `C·b ≥ √(40·d·(n + 1))` |
//! | MDA | `f/n ≤ C·b / (8·√d + C·b)` |
//! | Trimmed Mean | `f/n ≤ C²·b² / (16·d + 2·C²·b²)` |
//! | Phocas | `f/n ≤ C²·b² / (64·d + 2·C²·b²)` |
//!
//! i.e. `b ∈ Ω(√(n·d))` for the first group and `f/n ∈ O(b/(√d + b))` /
//! `O(b²/(d + b²))` for the others — the paper's headline incompatibility.

use crate::GarKind;
use dpbyz_dp::PrivacyBudget;
use serde::{Deserialize, Serialize};

/// The flavour of necessary condition a GAR falls under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// The batch size must be at least this large.
    MinBatch(f64),
    /// The Byzantine fraction `f/n` must be at most this large.
    MaxByzantineFraction(f64),
}

/// One row of (the reproduction of) Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The rule.
    pub gar: GarKind,
    /// The necessary condition evaluated at the given `(n, f, d, b, ε, δ)`.
    pub condition: Condition,
    /// Whether the supplied configuration satisfies the necessary
    /// condition. (Failing it proves the VN certificate is impossible;
    /// passing it is necessary, not sufficient.)
    pub satisfied: bool,
}

/// Evaluates the necessary condition of one GAR.
///
/// Returns `None` for [`GarKind::Average`] (no resilience certificate
/// exists at all) and for Multi-Krum (shares Krum's row).
pub fn condition_for(
    gar: GarKind,
    n: usize,
    f: usize,
    dim: usize,
    batch_size: usize,
    budget: PrivacyBudget,
) -> Option<Table1Row> {
    let c = budget.c_constant();
    let (nf, ff, d, b) = (n as f64, f as f64, dim as f64, batch_size as f64);
    let tau = ff / nf;
    let row = match gar {
        GarKind::Average | GarKind::GeometricMedian => return None,
        GarKind::Krum | GarKind::MultiKrum | GarKind::Bulyan => {
            let min_b = (16.0 * d * (nf + ff * ff)).sqrt() / c;
            Table1Row {
                gar,
                condition: Condition::MinBatch(min_b),
                satisfied: b >= min_b,
            }
        }
        GarKind::Median => {
            let min_b = (4.0 * d * (nf + 1.0)).sqrt() / c;
            Table1Row {
                gar,
                condition: Condition::MinBatch(min_b),
                satisfied: b >= min_b,
            }
        }
        GarKind::Meamed => {
            let min_b = (40.0 * d * (nf + 1.0)).sqrt() / c;
            Table1Row {
                gar,
                condition: Condition::MinBatch(min_b),
                satisfied: b >= min_b,
            }
        }
        GarKind::Mda => {
            let max_tau = c * b / (8.0 * d.sqrt() + c * b);
            Table1Row {
                gar,
                condition: Condition::MaxByzantineFraction(max_tau),
                satisfied: tau <= max_tau,
            }
        }
        GarKind::TrimmedMean => {
            let cb2 = c * c * b * b;
            let max_tau = cb2 / (16.0 * d + 2.0 * cb2);
            Table1Row {
                gar,
                condition: Condition::MaxByzantineFraction(max_tau),
                satisfied: tau <= max_tau,
            }
        }
        GarKind::Phocas => {
            let cb2 = c * c * b * b;
            let max_tau = cb2 / (64.0 * d + 2.0 * cb2);
            Table1Row {
                gar,
                condition: Condition::MaxByzantineFraction(max_tau),
                satisfied: tau <= max_tau,
            }
        }
    };
    Some(row)
}

/// The full table for one configuration — one row per robust GAR.
pub fn table(
    n: usize,
    f: usize,
    dim: usize,
    batch_size: usize,
    budget: PrivacyBudget,
) -> Vec<Table1Row> {
    GarKind::ROBUST
        .iter()
        .filter_map(|&g| condition_for(g, n, f, dim, batch_size, budget))
        .collect()
}

/// The smallest batch size satisfying a GAR's necessary condition at a
/// fixed Byzantine fraction `f/n` (the quantity behind the paper's
/// "ResNet-50 needs b > 5000" worked example).
pub fn required_batch(
    gar: GarKind,
    n: usize,
    f: usize,
    dim: usize,
    budget: PrivacyBudget,
) -> Option<usize> {
    let c = budget.c_constant();
    let (nf, ff, d) = (n as f64, f as f64, dim as f64);
    let b = match gar {
        GarKind::Average | GarKind::GeometricMedian => return None,
        GarKind::Krum | GarKind::MultiKrum | GarKind::Bulyan => {
            (16.0 * d * (nf + ff * ff)).sqrt() / c
        }
        GarKind::Median => (4.0 * d * (nf + 1.0)).sqrt() / c,
        GarKind::Meamed => (40.0 * d * (nf + 1.0)).sqrt() / c,
        GarKind::Mda => {
            // τ ≤ C·b/(8√d + C·b)  ⇔  b ≥ 8√d·τ / (C·(1 − τ)).
            if f == 0 {
                return Some(1);
            }
            let tau = ff / nf;
            8.0 * d.sqrt() * tau / (c * (1.0 - tau))
        }
        GarKind::TrimmedMean => {
            // τ ≤ C²b²/(16d + 2C²b²)  ⇔  b² ≥ 16·d·τ / (C²·(1 − 2τ)).
            if f == 0 {
                return Some(1);
            }
            let tau = ff / nf;
            if 1.0 - 2.0 * tau <= 0.0 {
                return None;
            }
            (16.0 * d * tau / (c * c * (1.0 - 2.0 * tau))).sqrt()
        }
        GarKind::Phocas => {
            if f == 0 {
                return Some(1);
            }
            let tau = ff / nf;
            if 1.0 - 2.0 * tau <= 0.0 {
                return None;
            }
            (64.0 * d * tau / (c * c * (1.0 - 2.0 * tau))).sqrt()
        }
    };
    Some(b.ceil().max(1.0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_budget() -> PrivacyBudget {
        PrivacyBudget::new(0.2, 1e-6).unwrap()
    }

    #[test]
    fn paper_setting_fails_all_rows() {
        // n = 11, f = 5, d = 69, b = 50, (0.2, 1e-6): the paper's Fig. 2
        // configuration violates every necessary condition — exactly why
        // DP + MDA collapses under attack there.
        let rows = table(11, 5, 69, 50, paper_budget());
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(!row.satisfied, "{:?} unexpectedly satisfied", row.gar);
        }
    }

    #[test]
    fn huge_batch_satisfies_min_batch_rows() {
        let rows = table(11, 5, 69, 2_000_000, paper_budget());
        for row in rows {
            match row.condition {
                Condition::MinBatch(_) => assert!(row.satisfied, "{:?}", row.gar),
                // MDA's fraction cap rises toward 1 with b, and τ = 5/11 is
                // below it for b this large.
                Condition::MaxByzantineFraction(cap) => {
                    if row.gar == GarKind::Mda {
                        assert!(row.satisfied, "MDA cap {cap}");
                    }
                }
            }
        }
    }

    #[test]
    fn mda_fraction_cap_matches_formula() {
        let budget = paper_budget();
        let row = condition_for(GarKind::Mda, 11, 5, 69, 50, budget).unwrap();
        let c = budget.c_constant();
        let expected = c * 50.0 / (8.0 * 69f64.sqrt() + c * 50.0);
        match row.condition {
            Condition::MaxByzantineFraction(t) => assert!((t - expected).abs() < 1e-12),
            _ => panic!("MDA must yield a fraction cap"),
        }
    }

    #[test]
    fn krum_min_batch_scales_as_sqrt_nd() {
        let budget = paper_budget();
        let b1 = required_batch(GarKind::Krum, 11, 5, 100, budget).unwrap();
        let b2 = required_batch(GarKind::Krum, 11, 5, 400, budget).unwrap();
        let ratio = b2 as f64 / b1 as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn phocas_needs_larger_batch_than_trimmed_mean() {
        // 64d vs 16d under the same fraction: Phocas is strictly more
        // demanding.
        let budget = paper_budget();
        let tm = required_batch(GarKind::TrimmedMean, 11, 5, 69, budget).unwrap();
        let ph = required_batch(GarKind::Phocas, 11, 5, 69, budget).unwrap();
        assert!(ph > tm);
    }

    #[test]
    fn required_batch_consistency_with_condition() {
        let budget = paper_budget();
        for gar in GarKind::ROBUST {
            let Some(b) = required_batch(gar, 11, 5, 69, budget) else {
                continue;
            };
            let at = condition_for(gar, 11, 5, 69, b, budget).unwrap();
            assert!(at.satisfied, "{gar:?} unsatisfied at its own bound b={b}");
            if b > 2 {
                let below = condition_for(gar, 11, 5, 69, b / 2, budget).unwrap();
                assert!(!below.satisfied, "{gar:?} satisfied below bound");
            }
        }
    }

    #[test]
    fn average_and_half_byzantine_have_no_row() {
        let budget = paper_budget();
        assert!(condition_for(GarKind::Average, 11, 5, 69, 50, budget).is_none());
        // Trimmed Mean / Phocas caps are vacuous at τ ≥ 1/2.
        assert!(required_batch(GarKind::TrimmedMean, 10, 5, 69, budget).is_none());
    }

    #[test]
    fn resnet50_scale_demands_impractical_batches() {
        // The §3 worked example: d = 25.6 M. Every min-batch rule demands
        // b in the tens of thousands or more; √d alone is > 5000.
        let budget = paper_budget();
        let d = 25_600_000;
        assert!((d as f64).sqrt() > 5000.0);
        let krum = required_batch(GarKind::Krum, 11, 5, d, budget).unwrap();
        assert!(krum > 100_000, "krum requires b = {krum}");
        let mda = required_batch(GarKind::Mda, 11, 5, d, budget).unwrap();
        assert!(mda > 5000, "mda requires b = {mda}");
    }
}
