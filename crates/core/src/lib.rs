//! `dpbyz-core` — the paper's contribution, as a library.
//!
//! *Differential Privacy and Byzantine Resilience in SGD: Do They Add Up?*
//! (Guerraoui, Gupta, Pinot, Rouault, Stephan — PODC 2021) shows that
//! worker-local DP noise injection and `(α, f)`-Byzantine-resilient
//! aggregation are *antagonistic*: the only known resilience certificate
//! (the VN-ratio condition) inherits a `d·s²` noise term that forces either
//! `b ∈ Ω(√d)` batches or a vanishing Byzantine fraction, and — for
//! strongly convex costs — the training error degrades from `O(1/T)` to
//! `Θ(d·log(1/δ)/(T·b²·ε²))`.
//!
//! This crate packages both halves of the paper:
//!
//! * [`theory`] — closed-form calculators: the noisy VN condition (Eq. 8),
//!   the per-GAR necessary conditions of Table 1 (Propositions 1–3), and
//!   Theorem 1's upper/lower error bounds;
//! * [`pipeline`] — the experimental apparatus: a declarative
//!   [`pipeline::Experiment`] that assembles dataset, model, mechanism,
//!   GAR, attack, and topology into seeded, reproducible runs (the
//!   configurations of Figs. 2–4 are one-liners, see
//!   [`pipeline::Experiment::paper_figure`]);
//! * [`analysis`] — feasibility frontiers (minimum batch size, maximum
//!   Byzantine fraction) and the ResNet-50 worked example;
//! * [`pack`] — scenario packs: named, registry-resolvable bundles of
//!   labelled sweep cells ([`sweep::SweepBuilder::with_pack`]);
//! * [`report`] — CSV / Markdown emitters used by the bench harness.
//!
//! # Quickstart
//!
//! ```
//! use dpbyz_core::pipeline::{Experiment, FigureConfig};
//!
//! // Fig. 2's "DP + ALIE attack" cell, shrunk for a doctest.
//! let exp = Experiment::paper_figure(FigureConfig {
//!     batch_size: 50,
//!     epsilon: Some(0.2),
//!     attack: Some(dpbyz_core::AttackKind::Alie { nu: 1.5 }),
//!     steps: 30,
//!     dataset_size: 300,
//!     ..FigureConfig::default()
//! })
//! .unwrap();
//! let history = exp.run(1).unwrap();
//! assert_eq!(history.train_loss.len(), 30);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
mod builder;
pub mod engine;
mod kinds;
pub mod pack;
pub mod pipeline;
pub mod registry;
pub mod report;
pub mod sweep;
pub mod theory;

pub use builder::ExperimentBuilder;
pub use engine::EngineBackend;
pub use kinds::{AttackKind, GarKind, MechanismKind};
pub use pack::{PackCell, ScenarioPack};
pub use pipeline::Experiment;
pub use registry::{ComponentSpec, ParamValue, Registry, RegistryError};
pub use sweep::{CellRun, SweepBuilder, SweepResults};

/// One-line import for experiment scripts.
///
/// ```
/// use dpbyz_core::prelude::*;
///
/// let exp = Experiment::paper_figure(FigureConfig {
///     steps: 3,
///     dataset_size: 200,
///     ..FigureConfig::default()
/// })
/// .unwrap();
/// assert_eq!(exp.gar, GarKind::Average);
/// ```
pub mod prelude {
    pub use crate::engine::{backend_ids, register_backend, EngineBackend};
    pub use crate::pack::{
        register_scenario_pack, register_scenario_pack_with, scenario_pack, scenario_pack_ids,
        PackCell, ScenarioPack,
    };
    pub use crate::pipeline::{Experiment, FigureConfig, PipelineError, Workload};
    pub use crate::registry::{
        register_attack, register_gar, register_mechanism, register_mechanism_with, ComponentSpec,
        MechanismCapabilities,
    };
    pub use crate::sweep::{CellRun, SweepBuilder, SweepResults};
    pub use crate::{AttackKind, ExperimentBuilder, GarKind, MechanismKind};
    pub use dpbyz_dp::PrivacyBudget;
    pub use dpbyz_server::{
        FnObserver, RunHistory, RunObserver, SeedSummary, StepMetrics, TrainingConfig,
    };
}
