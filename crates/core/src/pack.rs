//! Scenario packs: named, registry-resolvable bundles of labelled sweep
//! cells.
//!
//! A [`ScenarioPack`] is to a *grid* what a [`ComponentSpec`] is to a
//! *component*: a stable string id behind which a curated set of
//! (GAR × attack × mechanism × axis-value) cells lives. Packs are
//! registered like components — the built-ins ship pre-registered, and
//! out-of-tree crates add their own with [`register_scenario_pack`] — and
//! become sweepable by naming them:
//! [`SweepBuilder::with_pack`](crate::sweep::SweepBuilder::with_pack)
//! expands every cell of the pack over the sweep's base experiment.
//!
//! Packs serialize to the workspace's JSON spec format
//! ([`ScenarioPack::to_json`] / [`ScenarioPack::from_json`]), so a study
//! can be persisted, shipped, and replayed by id or by file.
//!
//! # Built-in packs
//!
//! | id | cells |
//! |----|-------|
//! | `paper-core` | the seed §5 grid: clean / ALIE / FoE, each with and without the paper's (0.2, 10⁻⁶) budget |
//! | `attack-zoo` | every registered GAR that tolerates ≥ 1 Byzantine worker at n = 11 × every registered attack (computed at resolve time, so late-registered components join automatically) |
//! | `clipping-study` | the radius-tuned defenses (centered clipping at two radii, bucketed median) against ALIE, IPM, and the norm-rescaling probe |
//!
//! # Registering a custom pack
//!
//! ```
//! use dpbyz_core::pack::{self, PackCell, ScenarioPack};
//! use dpbyz_core::sweep::SweepBuilder;
//! use dpbyz_core::Experiment;
//!
//! pack::register_scenario_pack(
//!     ScenarioPack::new("doc-mini", "median vs sign-flip, one cell")
//!         .cell(PackCell::new("median/sign-flip").gar("median").attack("sign-flip")),
//! )
//! .unwrap();
//!
//! let results = SweepBuilder::over(Experiment::builder().steps(3).dataset_size(200))
//!     .with_pack("doc-mini")
//!     .seeds(&[1])
//!     .run()
//!     .unwrap();
//! assert_eq!(results.cells[0].label, "doc-mini/median/sign-flip");
//! ```

use crate::registry::{self, ComponentSpec, Registry, RegistryError};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock, RwLock};

/// One labelled cell of a scenario pack: the component ids and axis
/// values it pins, applied *on top of* whatever base experiment the sweep
/// provides. Unset fields leave the base untouched, so the same pack can
/// run at paper scale or smoke-test scale, with or without DP, by
/// swapping the base builder.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PackCell {
    /// Cell label; the sweep prefixes it with the pack id
    /// (`"{pack}/{label}"`).
    pub label: String,
    /// Aggregation rule to pin, if any.
    pub gar: Option<ComponentSpec>,
    /// Attack to arm, if any (`None` leaves the base — typically clean).
    pub attack: Option<ComponentSpec>,
    /// Explicitly disarms any attack the base carries. Unlike a `None`
    /// attack (which inherits the base), an `unattacked` cell is
    /// guaranteed clean — how `paper-core`'s `clean/*` cells keep their
    /// label honest even over an attack-carrying base. If a cell
    /// (nonsensically) sets both this flag and [`PackCell::attack`], the
    /// explicit pin wins.
    pub unattacked: bool,
    /// Noise mechanism to pin, if any.
    pub mechanism: Option<ComponentSpec>,
    /// Per-step privacy ε to pin, if any.
    pub epsilon: Option<f64>,
    /// Privacy δ to pin alongside [`PackCell::epsilon`], if any (cells
    /// pinning a full `(ε, δ)` budget should pin both — `paper-core`'s
    /// `/dp` cells pin the paper's (0.2, 10⁻⁶) — so a base with a
    /// different δ cannot silently change what the label promises).
    pub delta: Option<f64>,
    /// Explicitly clears any privacy budget the base carries. Unlike a
    /// `None` epsilon (which inherits the base), a `no_dp` cell is
    /// guaranteed noise-free — how `paper-core`'s `/nodp` cells keep
    /// their label honest even over a DP-carrying base. If a cell
    /// (nonsensically) sets both this flag and [`PackCell::epsilon`], the
    /// explicit pin wins.
    pub no_dp: bool,
    /// Per-worker batch size to pin, if any.
    pub batch_size: Option<u64>,
    /// Total worker count `n` to pin, if any. Cells that pin a
    /// topology-sensitive `byzantine` count should pin the topology too
    /// (the built-ins pin the paper's n = 11), so the pack expands over
    /// bases of any worker count.
    pub workers: Option<u64>,
    /// Byzantine worker count to pin, if any (armed cells default to the
    /// base builder's `f` otherwise).
    pub byzantine: Option<u64>,
}

impl PackCell {
    /// A cell that changes nothing but the label.
    pub fn new(label: impl Into<String>) -> Self {
        PackCell {
            label: label.into(),
            ..PackCell::default()
        }
    }

    /// Pins the aggregation rule (id, kind, or full spec).
    #[must_use]
    pub fn gar(mut self, gar: impl Into<ComponentSpec>) -> Self {
        self.gar = Some(gar.into());
        self
    }

    /// Arms an attack (id, kind, or full spec).
    #[must_use]
    pub fn attack(mut self, attack: impl Into<ComponentSpec>) -> Self {
        self.attack = Some(attack.into());
        self
    }

    /// Pins the cell to run clean, disarming any attack the base carries
    /// (see [`PackCell::unattacked`]).
    #[must_use]
    pub fn unattacked(mut self) -> Self {
        self.unattacked = true;
        self
    }

    /// Pins the noise mechanism.
    #[must_use]
    pub fn mechanism(mut self, mechanism: impl Into<ComponentSpec>) -> Self {
        self.mechanism = Some(mechanism.into());
        self
    }

    /// Pins the per-step privacy ε.
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Pins the privacy δ used with [`PackCell::epsilon`].
    #[must_use]
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Pins the cell to run noise-free, clearing any budget the base
    /// carries (see [`PackCell::no_dp`]).
    #[must_use]
    pub fn no_dp(mut self) -> Self {
        self.no_dp = true;
        self
    }

    /// Pins the per-worker batch size.
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size as u64);
        self
    }

    /// Pins the total worker count `n`.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n as u64);
        self
    }

    /// Pins the Byzantine worker count.
    #[must_use]
    pub fn byzantine(mut self, f: usize) -> Self {
        self.byzantine = Some(f as u64);
        self
    }

    /// Applies the cell's pinned values on top of a base builder — the
    /// expansion step [`SweepBuilder::with_pack`] drives for every cell.
    ///
    /// [`SweepBuilder::with_pack`]: crate::sweep::SweepBuilder::with_pack
    #[must_use]
    pub fn apply(&self, mut base: crate::ExperimentBuilder) -> crate::ExperimentBuilder {
        if let Some(gar) = &self.gar {
            base = base.gar(gar.clone());
        }
        if self.unattacked {
            base = base.unattacked();
        }
        if let Some(attack) = &self.attack {
            base = base.attack(attack.clone());
        }
        if let Some(mechanism) = &self.mechanism {
            base = base.mechanism(mechanism.clone());
        }
        if self.no_dp {
            base = base.no_dp();
        }
        if let Some(delta) = self.delta {
            base = base.delta(delta);
        }
        if let Some(epsilon) = self.epsilon {
            // Clear any *full* budget the base carries first: the builder
            // prefers `budget` over `epsilon`, so a pinned ε would
            // otherwise lose to a base budget silently.
            base = base.no_dp().epsilon(epsilon);
        }
        if let Some(batch) = self.batch_size {
            base = base.batch_size(batch as usize);
        }
        if let Some(n) = self.workers {
            base = base.n_workers(n as usize);
        }
        if let Some(f) = self.byzantine {
            base = base.byzantine(f as usize);
        }
        base
    }
}

/// A named bundle of labelled sweep cells, resolvable by id through the
/// pack registry (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPack {
    /// Registry id (`"paper-core"`, `"attack-zoo"`, …).
    pub id: String,
    /// One-line human description (surfaced by catalogs and CLIs).
    pub description: String,
    /// The labelled cells, in run order.
    pub cells: Vec<PackCell>,
}

impl ScenarioPack {
    /// An empty pack.
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        ScenarioPack {
            id: id.into(),
            description: description.into(),
            cells: Vec::new(),
        }
    }

    /// Appends a cell, builder-style.
    #[must_use]
    pub fn cell(mut self, cell: PackCell) -> Self {
        self.cells.push(cell);
        self
    }

    /// Serializes the pack to the workspace's JSON spec format.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error (practically unreachable for
    /// this shape).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes a pack from JSON (the inverse of
    /// [`ScenarioPack::to_json`]).
    ///
    /// # Errors
    ///
    /// The deserializer's error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

// ------------------------------------------------------------------------
// The global pack registry. Packs reuse the component `Registry`
// machinery: an entry is a *factory*, so a pack may be static data (the
// common case — `register_scenario_pack` wraps it) or computed at resolve
// time (the built-in `attack-zoo` reads the component registries when
// asked, so late registrations join the cross product).

fn pack_registry() -> &'static RwLock<Registry<ScenarioPack>> {
    static REGISTRY: OnceLock<RwLock<Registry<ScenarioPack>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(built_in_packs()))
}

/// The paper's §5.1 topology the built-in packs are curated for.
const PACK_N_WORKERS: usize = 11;
const PACK_F: usize = 5;
const PAPER_EPSILON: f64 = 0.2;
const PAPER_DELTA: f64 = 1e-6;

fn paper_core_pack() -> ScenarioPack {
    let mut pack = ScenarioPack::new(
        "paper-core",
        "the seed §5 grid: clean/ALIE/FoE × {no DP, the paper's (0.2, 1e-6) budget}",
    )
    .cell(PackCell::new("clean/nodp").unattacked().no_dp())
    .cell(
        PackCell::new("clean/dp")
            .unattacked()
            .epsilon(PAPER_EPSILON)
            .delta(PAPER_DELTA),
    );
    for (name, spec) in [
        ("alie", ComponentSpec::new("alie").with("nu", 1.5)),
        ("foe", ComponentSpec::new("foe").with("nu", 1.1)),
    ] {
        pack = pack
            .cell(
                PackCell::new(format!("mda/{name}/nodp"))
                    .gar("mda")
                    .attack(spec.clone())
                    .workers(PACK_N_WORKERS)
                    .byzantine(PACK_F)
                    .no_dp(),
            )
            .cell(
                PackCell::new(format!("mda/{name}/dp"))
                    .gar("mda")
                    .attack(spec)
                    .workers(PACK_N_WORKERS)
                    .byzantine(PACK_F)
                    .epsilon(PAPER_EPSILON)
                    .delta(PAPER_DELTA),
            );
    }
    pack
}

/// Crosses every registered GAR that tolerates at least one Byzantine
/// worker at the paper's n = 11 with every registered attack, clamping
/// `f` to each rule's tolerance. Evaluated when the pack id resolves, so
/// components registered later — including out-of-tree ones — appear in
/// the next expansion. GARs whose bare spec fails to build (custom rules
/// requiring parameters) are skipped rather than failing the pack.
fn attack_zoo_pack() -> ScenarioPack {
    let mut pack = ScenarioPack::new(
        "attack-zoo",
        "every registered GAR tolerating f >= 1 at n = 11, against every registered attack",
    );
    let attack_ids = registry::attack_ids();
    for gar_id in registry::gar_ids() {
        let Ok(gar) = registry::build_gar(&ComponentSpec::new(&gar_id)) else {
            continue;
        };
        let f = gar.max_byzantine(PACK_N_WORKERS).min(PACK_F);
        if f == 0 {
            continue;
        }
        for attack_id in &attack_ids {
            pack = pack.cell(
                PackCell::new(format!("{gar_id}/{attack_id}"))
                    .gar(ComponentSpec::new(&gar_id))
                    .attack(ComponentSpec::new(attack_id))
                    .workers(PACK_N_WORKERS)
                    .byzantine(f),
            );
        }
    }
    pack
}

fn clipping_study_pack() -> ScenarioPack {
    // Radii on the scale of the protocol's clipped gradients
    // (G_max = 10⁻²): a tight τ at the clip threshold and a loose 10×.
    let defenses = [
        (
            "cc-tight",
            ComponentSpec::new("centered-clipping").with("tau", 0.01),
            PACK_F,
        ),
        (
            "cc-loose",
            ComponentSpec::new("centered-clipping").with("tau", 0.1),
            PACK_F,
        ),
        (
            "bucket-median",
            ComponentSpec::new("bucketing")
                .with("s", 2u64)
                .with("inner", "median"),
            2, // median at ⌈11/2⌉ = 6 buckets tolerates 2
        ),
    ];
    let attacks = [
        ("alie", ComponentSpec::new("alie").with("nu", 1.5)),
        ("ipm", ComponentSpec::new("ipm").with("epsilon", 0.5)),
        (
            "rescaling",
            // Sitting exactly at the tight clipping radius, reversed.
            ComponentSpec::new("rescaling").with("norm", -0.01),
        ),
    ];
    let mut pack = ScenarioPack::new(
        "clipping-study",
        "radius-tuned defenses (centered clipping, bucketed median) vs ALIE/IPM/rescaling",
    );
    for (gar_name, gar_spec, f) in &defenses {
        for (attack_name, attack_spec) in &attacks {
            pack = pack.cell(
                PackCell::new(format!("{gar_name}/{attack_name}"))
                    .gar(gar_spec.clone())
                    .attack(attack_spec.clone())
                    .workers(PACK_N_WORKERS)
                    .byzantine(*f),
            );
        }
    }
    pack
}

fn built_in_packs() -> Registry<ScenarioPack> {
    let mut r = Registry::new();
    r.seed("paper-core", |_| Ok(Arc::new(paper_core_pack())));
    r.seed("attack-zoo", |_| Ok(Arc::new(attack_zoo_pack())));
    r.seed("clipping-study", |_| Ok(Arc::new(clipping_study_pack())));
    r
}

/// Registers a scenario pack as static data under its own
/// [`ScenarioPack::id`] — the out-of-tree path (built-ins use factories
/// so they can read the component registries at resolve time; see
/// [`register_scenario_pack_with`]).
///
/// # Errors
///
/// [`RegistryError::DuplicateId`] if the id is taken.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn register_scenario_pack(pack: ScenarioPack) -> Result<(), RegistryError> {
    let id = pack.id.clone();
    let shared = Arc::new(pack);
    register_scenario_pack_with(id, move |_| Ok(shared.clone()))
}

/// Registers a scenario pack *factory* under an id: the pack is computed
/// every time the id resolves, so it can reflect the current component
/// registries (how the built-in `attack-zoo` stays open to late
/// registrations). The factory should produce a pack whose
/// [`ScenarioPack::id`] matches the registered id; sweep labels always
/// use the id the caller swept, so a mismatch cannot break result
/// lookups — only catalogs that print [`ScenarioPack::id`].
///
/// # Errors
///
/// [`RegistryError::DuplicateId`] if the id is taken.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn register_scenario_pack_with(
    id: impl Into<String>,
    factory: impl Fn(&ComponentSpec) -> Result<Arc<ScenarioPack>, RegistryError> + Send + Sync + 'static,
) -> Result<(), RegistryError> {
    crate::registry::write_guard(pack_registry()).register(id, factory)
}

/// Resolves a pack id through the global registry.
///
/// # Errors
///
/// [`RegistryError::UnknownId`] (listing every registered pack) or the
/// factory's own error.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn scenario_pack(id: &str) -> Result<Arc<ScenarioPack>, RegistryError> {
    // Fetch under the lock, invoke outside it: pack factories read the
    // component registries (attack-zoo) or other packs.
    let factory = crate::registry::read_guard(pack_registry()).factory(id)?;
    factory(&ComponentSpec::new(id))
}

/// All registered pack ids.
///
/// # Panics
///
/// Panics if the registry lock is poisoned.
pub fn scenario_pack_ids() -> Vec<String> {
    crate::registry::read_guard(pack_registry()).ids()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_in_packs_resolve() {
        for id in ["paper-core", "attack-zoo", "clipping-study"] {
            let pack = scenario_pack(id).unwrap();
            assert_eq!(pack.id, id);
            assert!(!pack.cells.is_empty(), "{id} is empty");
        }
        assert!(scenario_pack_ids().len() >= 3);
    }

    #[test]
    fn paper_core_reproduces_the_seed_grid() {
        let pack = scenario_pack("paper-core").unwrap();
        let labels: Vec<&str> = pack.cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "clean/nodp",
                "clean/dp",
                "mda/alie/nodp",
                "mda/alie/dp",
                "mda/foe/nodp",
                "mda/foe/dp"
            ]
        );
        // The attacked cells pin the paper's ν parameters.
        assert_eq!(pack.cells[2].attack.as_ref().unwrap().f64("nu"), Some(1.5));
        assert_eq!(pack.cells[4].attack.as_ref().unwrap().f64("nu"), Some(1.1));
        assert_eq!(pack.cells[1].epsilon, Some(0.2));
        assert_eq!(pack.cells[0].epsilon, None);
    }

    #[test]
    fn attack_zoo_crosses_registered_components_with_clamped_f() {
        let pack = scenario_pack("attack-zoo").unwrap();
        let n_attacks = registry::attack_ids().len();
        // Every cell names both components and a positive tolerated f.
        assert_eq!(pack.cells.len() % n_attacks, 0);
        for cell in &pack.cells {
            let gar = registry::build_gar(cell.gar.as_ref().unwrap()).unwrap();
            let f = cell.byzantine.unwrap() as usize;
            assert!(f >= 1 && f <= gar.max_byzantine(11), "{}", cell.label);
            assert!(cell.attack.is_some());
        }
        // Averaging (f = 0) is excluded; the new defenses are included.
        assert!(!pack.cells.iter().any(|c| c.label.starts_with("average/")));
        assert!(pack
            .cells
            .iter()
            .any(|c| c.label == "centered-clipping/ipm"));
        assert!(pack.cells.iter().any(|c| c.label == "bucketing/rescaling"));
    }

    #[test]
    fn attack_zoo_is_open_to_late_registrations() {
        // A GAR registered *after* the pack exists appears on the next
        // resolve — the factory reads the component registries live.
        let before = scenario_pack("attack-zoo").unwrap().cells.len();
        registry::register_gar("zoo-probe-median", |_| {
            Ok(Arc::new(dpbyz_gars::CoordinateMedian::new()) as Arc<dyn dpbyz_gars::Gar>)
        })
        .unwrap();
        let after = scenario_pack("attack-zoo").unwrap();
        assert_eq!(
            after.cells.len(),
            before + registry::attack_ids().len(),
            "late-registered GAR missing from the zoo"
        );
        assert!(after
            .cells
            .iter()
            .any(|c| c.label.starts_with("zoo-probe-median/")));
    }

    #[test]
    fn packs_round_trip_through_json() {
        let pack = scenario_pack("clipping-study").unwrap();
        let json = pack.to_json().unwrap();
        let back = ScenarioPack::from_json(&json).unwrap();
        assert_eq!(back, *pack);
        // The string param of the bucketing cell survives the trip.
        let bucket_cell = back
            .cells
            .iter()
            .find(|c| c.label.starts_with("bucket-median/"))
            .unwrap();
        assert_eq!(
            bucket_cell.gar.as_ref().unwrap().str("inner"),
            Some("median")
        );
    }

    #[test]
    fn duplicate_pack_id_rejected_and_unknown_id_lists_available() {
        let err = register_scenario_pack(ScenarioPack::new("paper-core", "shadow"))
            .expect_err("built-in ids are taken");
        assert_eq!(err, RegistryError::DuplicateId("paper-core".into()));
        let err = scenario_pack("no-such-pack").expect_err("unknown id");
        let message = err.to_string();
        assert!(
            message.contains("no-such-pack") && message.contains("attack-zoo"),
            "{message}"
        );
    }

    #[test]
    fn built_in_packs_expand_over_a_smaller_topology_base() {
        // The base runs 7 workers; the packs' Byzantine pins were curated
        // for n = 11, so the cells pin the topology too — the pack must
        // expand (and run) over *any* base, as the module docs promise.
        let base = crate::Experiment::builder()
            .steps(2)
            .dataset_size(200)
            .workers(7, 0);
        for id in ["paper-core", "attack-zoo", "clipping-study"] {
            let pack = scenario_pack(id).unwrap();
            for cell in &pack.cells {
                let exp = cell
                    .apply(base.clone())
                    .build()
                    .unwrap_or_else(|e| panic!("{id}/{}: {e}", cell.label));
                if cell.byzantine.is_some() {
                    assert_eq!(exp.config.n_workers, 11, "{id}/{}", cell.label);
                }
            }
        }
    }

    #[test]
    fn nodp_cells_stay_noise_free_over_a_dp_base() {
        // A DP-carrying base must not leak its budget into cells labelled
        // no-DP (/nodp cells clear it, /dp cells pin their own ε) — for
        // both ways a base can carry DP: a bare ε and a full budget (the
        // builder prefers the latter, so a pinned cell ε must displace
        // it).
        let bases = [
            crate::Experiment::builder()
                .steps(2)
                .dataset_size(200)
                .epsilon(0.8),
            crate::Experiment::builder()
                .steps(2)
                .dataset_size(200)
                .budget(dpbyz_dp::PrivacyBudget::new(0.8, 1e-5).unwrap()),
        ];
        let pack = scenario_pack("paper-core").unwrap();
        for base in bases {
            for cell in &pack.cells {
                let exp = cell.apply(base.clone()).build().unwrap();
                if cell.label.ends_with("/nodp") {
                    assert!(exp.budget.is_none(), "{} inherited the budget", cell.label);
                } else {
                    assert_eq!(
                        exp.budget.expect("dp cell has a budget").epsilon(),
                        0.2,
                        "{}",
                        cell.label
                    );
                }
            }
        }
    }

    #[test]
    fn clean_cells_stay_clean_over_an_attacked_base() {
        // An attack-carrying base must not poison the clean reference
        // cells: `clean/*` pins cleanliness, attacked cells pin their own
        // attack.
        let base = crate::Experiment::builder()
            .steps(2)
            .dataset_size(200)
            .attack("sign-flip");
        let pack = scenario_pack("paper-core").unwrap();
        for cell in &pack.cells {
            let exp = cell.apply(base.clone()).build().unwrap();
            if cell.label.starts_with("clean/") {
                assert!(exp.attack.is_none(), "{} inherited the attack", cell.label);
                assert_eq!(exp.config.n_byzantine, 0, "{}", cell.label);
            } else {
                assert_ne!(
                    exp.attack.as_ref().expect("attacked cell").id,
                    "sign-flip",
                    "{} kept the base attack",
                    cell.label
                );
            }
        }
    }

    #[test]
    fn dp_cells_pin_the_paper_delta_over_a_different_base_delta() {
        // "the paper's (0.2, 1e-6) budget" must mean exactly that, even
        // over a base whose δ is 1000x looser.
        let base = crate::Experiment::builder()
            .steps(2)
            .dataset_size(200)
            .delta(1e-3);
        let pack = scenario_pack("paper-core").unwrap();
        for cell in &pack.cells {
            let exp = cell.apply(base.clone()).build().unwrap();
            if let Some(budget) = exp.budget {
                assert_eq!(budget.epsilon(), 0.2, "{}", cell.label);
                assert_eq!(budget.delta(), 1e-6, "{}", cell.label);
            }
        }
    }

    #[test]
    fn pack_pins_write_through_an_explicit_base_config() {
        // A base assembled from a full TrainingConfig (f = 5 among 7
        // workers) must still honour the cells' topology pins: the zoo's
        // per-rule f-clamping cannot be silently discarded.
        let config = dpbyz_server::TrainingConfig::builder()
            .workers(7, 5)
            .batch_size(8)
            .steps(2)
            .build()
            .unwrap();
        let base = crate::Experiment::builder()
            .dataset_size(200)
            .config(config);
        let pack = scenario_pack("attack-zoo").unwrap();
        let krum = pack
            .cells
            .iter()
            .find(|c| c.label == "krum/alie")
            .expect("zoo has krum/alie");
        let exp = krum.apply(base).build().expect("pins override the config");
        assert_eq!(exp.config.n_workers, 11);
        assert_eq!(exp.config.n_byzantine, 4); // krum's clamp, not the base's 5
        assert_eq!(exp.config.batch_size, 8); // unpinned knob inherited
    }

    #[test]
    fn pack_cells_apply_over_a_base_builder() {
        let cell = PackCell::new("probe")
            .gar("median")
            .attack(ComponentSpec::new("sign-flip"))
            .byzantine(3)
            .batch_size(17)
            .epsilon(0.4);
        let exp = cell
            .apply(crate::Experiment::builder().steps(5).dataset_size(200))
            .build()
            .unwrap();
        assert_eq!(exp.gar, ComponentSpec::new("median"));
        assert_eq!(exp.config.n_byzantine, 3);
        assert_eq!(exp.config.batch_size, 17);
        assert_eq!(exp.budget.unwrap().epsilon(), 0.4);
    }
}
