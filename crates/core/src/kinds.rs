//! Serializable identifiers for the built-in GARs, attacks, and mechanisms.
//!
//! These enums predate the [`registry`](crate::registry) and survive as
//! thin, serde-compatible wrappers: every variant resolves through the
//! global component registry by its stable string id, so existing specs
//! and JSON round-trip unchanged while the registry remains the single
//! construction path. New components do **not** require new variants —
//! name them by [`ComponentSpec`] instead.

use crate::registry::{self, ComponentSpec, RegistryError};
use dpbyz_attacks::Attack;
use dpbyz_dp::{Mechanism, PrivacyBudget};
use dpbyz_gars::Gar;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which built-in aggregation rule the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum GarKind {
    Average,
    Krum,
    MultiKrum,
    Mda,
    Median,
    TrimmedMean,
    Meamed,
    Phocas,
    Bulyan,
    GeometricMedian,
}

impl GarKind {
    /// All kinds, in a stable order.
    pub const ALL: [GarKind; 10] = [
        GarKind::Average,
        GarKind::Krum,
        GarKind::MultiKrum,
        GarKind::Mda,
        GarKind::Median,
        GarKind::TrimmedMean,
        GarKind::Meamed,
        GarKind::Phocas,
        GarKind::Bulyan,
        GarKind::GeometricMedian,
    ];

    /// The seven *robust* rules analyzed in Table 1 (everything except
    /// plain averaging; Multi-Krum shares Krum's bound).
    pub const ROBUST: [GarKind; 7] = [
        GarKind::Krum,
        GarKind::Mda,
        GarKind::Median,
        GarKind::TrimmedMean,
        GarKind::Meamed,
        GarKind::Phocas,
        GarKind::Bulyan,
    ];

    /// The registry spec this kind resolves to.
    pub fn spec(self) -> ComponentSpec {
        ComponentSpec::new(self.name())
    }

    /// The kind whose registry id is `id`, if it names a built-in.
    pub fn from_id(id: &str) -> Option<GarKind> {
        GarKind::ALL.into_iter().find(|k| k.name() == id)
    }

    /// Instantiates the rule through the component registry.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in registrations are missing — a workspace
    /// invariant, not a runtime condition.
    pub fn build(self) -> Arc<dyn Gar> {
        registry::build_gar(&self.spec()).expect("built-in GAR registered") // lint:allow(panic-unwrap, reason = "the closed enum maps onto built-in ids seeded at registry init; every variant is resolved by the kinds tests")
    }

    /// The rule's VN bound `κ_F(n, f)` (see [`Gar::kappa`]).
    pub fn kappa(self, n: usize, f: usize) -> Option<f64> {
        self.build().kappa(n, f)
    }

    /// Display name — also the registry id.
    pub fn name(self) -> &'static str {
        match self {
            GarKind::Average => "average",
            GarKind::Krum => "krum",
            GarKind::MultiKrum => "multi-krum",
            GarKind::Mda => "mda",
            GarKind::Median => "median",
            GarKind::TrimmedMean => "trimmed-mean",
            GarKind::Meamed => "meamed",
            GarKind::Phocas => "phocas",
            GarKind::Bulyan => "bulyan",
            GarKind::GeometricMedian => "geometric-median",
        }
    }
}

impl From<GarKind> for ComponentSpec {
    fn from(kind: GarKind) -> ComponentSpec {
        kind.spec()
    }
}

impl PartialEq<GarKind> for ComponentSpec {
    fn eq(&self, kind: &GarKind) -> bool {
        *self == kind.spec()
    }
}

impl PartialEq<ComponentSpec> for GarKind {
    fn eq(&self, spec: &ComponentSpec) -> bool {
        self.spec() == *spec
    }
}

/// Which built-in Byzantine attack the colluders mount.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// A Little Is Enough with shift factor ν.
    Alie {
        /// Shift factor (paper: 1.5).
        nu: f64,
    },
    /// Fall of Empires with scale factor ν.
    Foe {
        /// Scale factor (paper: 1.1).
        nu: f64,
    },
    /// Negated honest mean.
    SignFlip,
    /// Pure Gaussian noise of the given std.
    RandomNoise {
        /// Per-coordinate std.
        std: f64,
    },
    /// Zero vector.
    Zero,
    /// Honest mean scaled by a huge factor.
    LargeNorm {
        /// Scale factor.
        scale: f64,
    },
    /// Replay one honest worker's submission (Karimireddy et al. 2022).
    Mimic {
        /// Index of the honest worker to copy.
        target: usize,
    },
}

impl AttackKind {
    /// The paper's ALIE setting (ν = 1.5).
    pub const PAPER_ALIE: AttackKind = AttackKind::Alie { nu: 1.5 };
    /// The paper's FoE setting (ν = 1.1).
    pub const PAPER_FOE: AttackKind = AttackKind::Foe { nu: 1.1 };

    /// The registry spec this kind (and its parameters) resolves to.
    pub fn spec(self) -> ComponentSpec {
        match self {
            AttackKind::Alie { nu } => ComponentSpec::new("alie").with("nu", nu),
            AttackKind::Foe { nu } => ComponentSpec::new("foe").with("nu", nu),
            AttackKind::SignFlip => ComponentSpec::new("sign-flip"),
            AttackKind::RandomNoise { std } => ComponentSpec::new("random-noise").with("std", std),
            AttackKind::Zero => ComponentSpec::new("zero"),
            AttackKind::LargeNorm { scale } => {
                ComponentSpec::new("large-norm").with("scale", scale)
            }
            AttackKind::Mimic { target } => ComponentSpec::new("mimic").with("target", target),
        }
    }

    /// Instantiates the attack through the component registry.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in registrations are missing.
    pub fn build(self) -> Arc<dyn Attack> {
        // lint:allow(panic-unwrap, reason = "the closed enum maps onto built-in ids seeded at registry init; every variant is resolved by the kinds tests")
        registry::build_attack(&self.spec()).expect("built-in attack registered")
    }

    /// Display name — also the registry id.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Alie { .. } => "alie",
            AttackKind::Foe { .. } => "foe",
            AttackKind::SignFlip => "sign-flip",
            AttackKind::RandomNoise { .. } => "random-noise",
            AttackKind::Zero => "zero",
            AttackKind::LargeNorm { .. } => "large-norm",
            AttackKind::Mimic { .. } => "mimic",
        }
    }
}

impl From<AttackKind> for ComponentSpec {
    fn from(kind: AttackKind) -> ComponentSpec {
        kind.spec()
    }
}

impl PartialEq<AttackKind> for ComponentSpec {
    fn eq(&self, kind: &AttackKind) -> bool {
        *self == kind.spec()
    }
}

impl PartialEq<ComponentSpec> for AttackKind {
    fn eq(&self, spec: &ComponentSpec) -> bool {
        self.spec() == *spec
    }
}

/// Which built-in noise-injection mechanism honest workers apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MechanismKind {
    /// The Gaussian mechanism of Eq. 6 (the paper's default).
    Gaussian,
    /// The Laplace alternative of Remark 3.
    Laplace,
}

impl MechanismKind {
    /// The registry spec this kind resolves to (calibration parameters are
    /// injected by the caller or the pipeline).
    pub fn spec(self) -> ComponentSpec {
        match self {
            MechanismKind::Gaussian => ComponentSpec::new("gaussian"),
            MechanismKind::Laplace => ComponentSpec::new("laplace"),
        }
    }

    /// Builds the mechanism calibrated for the clipped batch-mean gradient
    /// map, through the component registry. `budget = None` yields the
    /// identity (`"none"`) mechanism regardless of kind.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures as [`RegistryError::Build`].
    pub fn build(
        self,
        budget: Option<PrivacyBudget>,
        g_max: f64,
        batch_size: usize,
        dim: usize,
    ) -> Result<Arc<dyn Mechanism>, RegistryError> {
        let Some(budget) = budget else {
            return registry::build_mechanism(&ComponentSpec::new("none"));
        };
        let spec = self
            .spec()
            .with("epsilon", budget.epsilon())
            .with("delta", budget.delta())
            .with("g_max", g_max)
            .with("batch_size", batch_size)
            .with("dim", dim);
        registry::build_mechanism(&spec)
    }
}

impl From<MechanismKind> for ComponentSpec {
    fn from(kind: MechanismKind) -> ComponentSpec {
        kind.spec()
    }
}

impl PartialEq<MechanismKind> for ComponentSpec {
    fn eq(&self, kind: &MechanismKind) -> bool {
        *self == kind.spec()
    }
}

impl PartialEq<ComponentSpec> for MechanismKind {
    fn eq(&self, spec: &ComponentSpec) -> bool {
        self.spec() == *spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gar_kinds_build_and_name() {
        for kind in GarKind::ALL {
            let gar = kind.build();
            assert_eq!(gar.name(), kind.name());
            assert_eq!(GarKind::from_id(kind.name()), Some(kind));
        }
        assert_eq!(GarKind::from_id("nonsense"), None);
    }

    #[test]
    fn robust_kinds_have_kappa_at_paper_topology() {
        // n = 11: MDA/Median/TM/Meamed/Phocas tolerate f = 5, Krum f = 4,
        // Bulyan f = 2.
        assert!(GarKind::Mda.kappa(11, 5).is_some());
        assert!(GarKind::Krum.kappa(11, 4).is_some());
        assert!(GarKind::Bulyan.kappa(11, 2).is_some());
        assert!(GarKind::Average.kappa(11, 0).is_none());
    }

    #[test]
    fn attack_kinds_build() {
        let kinds = [
            AttackKind::PAPER_ALIE,
            AttackKind::PAPER_FOE,
            AttackKind::SignFlip,
            AttackKind::RandomNoise { std: 1.0 },
            AttackKind::Zero,
            AttackKind::LargeNorm { scale: 10.0 },
            AttackKind::Mimic { target: 0 },
        ];
        for k in kinds {
            let a = k.build();
            assert_eq!(a.name(), k.name());
        }
        assert_eq!(AttackKind::PAPER_ALIE, AttackKind::Alie { nu: 1.5 });
    }

    #[test]
    fn kinds_compare_equal_to_their_specs() {
        assert_eq!(GarKind::Krum.spec(), GarKind::Krum);
        assert_eq!(GarKind::Krum, ComponentSpec::new("krum"));
        assert_ne!(GarKind::Krum.spec(), GarKind::Mda);
        assert_eq!(
            AttackKind::PAPER_ALIE,
            ComponentSpec::new("alie").with("nu", 1.5)
        );
        // Same id, different parameter: different spec.
        assert_ne!(AttackKind::PAPER_ALIE.spec(), AttackKind::Alie { nu: 2.0 });
        assert_eq!(MechanismKind::Gaussian, ComponentSpec::new("gaussian"));
    }

    #[test]
    fn mechanism_kind_none_budget_is_identity() {
        let m = MechanismKind::Gaussian.build(None, 0.01, 50, 69).unwrap();
        assert_eq!(m.name(), "none");
    }

    #[test]
    fn mechanism_kind_builds_calibrated() {
        let budget = PrivacyBudget::new(0.2, 1e-6).unwrap();
        let g = MechanismKind::Gaussian
            .build(Some(budget), 0.01, 50, 69)
            .unwrap();
        assert_eq!(g.name(), "gaussian");
        assert!(g.per_coordinate_std() > 0.0);
        let l = MechanismKind::Laplace
            .build(Some(budget), 0.01, 50, 69)
            .unwrap();
        assert_eq!(l.name(), "laplace");
        // Laplace noise carries the extra √d: more total variance here.
        assert!(l.total_noise_variance(69) > g.total_noise_variance(69));
    }

    #[test]
    fn mechanism_calibration_errors_surface_as_build_errors() {
        // ε ≥ 1 is outside the classical Gaussian mechanism's validity.
        let budget = PrivacyBudget::new(2.0, 1e-6).unwrap();
        let err = MechanismKind::Gaussian
            .build(Some(budget), 0.01, 50, 69)
            .err()
            .unwrap();
        assert!(matches!(err, RegistryError::Build { .. }));
    }
}
