//! Serializable identifiers for GARs, attacks, and mechanisms — the
//! vocabulary experiment specs are written in.

use dpbyz_attacks::{
    Attack, FallOfEmpires, LargeNorm, LittleIsEnough, Mimic, RandomNoise, SignFlip, Zero,
};
use dpbyz_dp::{DpError, GaussianMechanism, LaplaceMechanism, Mechanism, NoNoise, PrivacyBudget};
use dpbyz_gars::{
    Average, Bulyan, CoordinateMedian, Gar, GeometricMedian, Krum, Mda, Meamed, MultiKrum,
    Phocas, TrimmedMean,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which aggregation rule the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum GarKind {
    Average,
    Krum,
    MultiKrum,
    Mda,
    Median,
    TrimmedMean,
    Meamed,
    Phocas,
    Bulyan,
    GeometricMedian,
}

impl GarKind {
    /// All kinds, in a stable order.
    pub const ALL: [GarKind; 10] = [
        GarKind::Average,
        GarKind::Krum,
        GarKind::MultiKrum,
        GarKind::Mda,
        GarKind::Median,
        GarKind::TrimmedMean,
        GarKind::Meamed,
        GarKind::Phocas,
        GarKind::Bulyan,
        GarKind::GeometricMedian,
    ];

    /// The seven *robust* rules analyzed in Table 1 (everything except
    /// plain averaging; Multi-Krum shares Krum's bound).
    pub const ROBUST: [GarKind; 7] = [
        GarKind::Krum,
        GarKind::Mda,
        GarKind::Median,
        GarKind::TrimmedMean,
        GarKind::Meamed,
        GarKind::Phocas,
        GarKind::Bulyan,
    ];

    /// Instantiates the rule.
    pub fn build(self) -> Arc<dyn Gar> {
        match self {
            GarKind::Average => Arc::new(Average::new()),
            GarKind::Krum => Arc::new(Krum::new()),
            GarKind::MultiKrum => Arc::new(MultiKrum::new()),
            GarKind::Mda => Arc::new(Mda::new()),
            GarKind::Median => Arc::new(CoordinateMedian::new()),
            GarKind::TrimmedMean => Arc::new(TrimmedMean::new()),
            GarKind::Meamed => Arc::new(Meamed::new()),
            GarKind::Phocas => Arc::new(Phocas::new()),
            GarKind::Bulyan => Arc::new(Bulyan::new()),
            GarKind::GeometricMedian => Arc::new(GeometricMedian::new()),
        }
    }

    /// The rule's VN bound `κ_F(n, f)` (see [`Gar::kappa`]).
    pub fn kappa(self, n: usize, f: usize) -> Option<f64> {
        self.build().kappa(n, f)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GarKind::Average => "average",
            GarKind::Krum => "krum",
            GarKind::MultiKrum => "multi-krum",
            GarKind::Mda => "mda",
            GarKind::Median => "median",
            GarKind::TrimmedMean => "trimmed-mean",
            GarKind::Meamed => "meamed",
            GarKind::Phocas => "phocas",
            GarKind::Bulyan => "bulyan",
            GarKind::GeometricMedian => "geometric-median",
        }
    }
}

/// Which Byzantine attack the colluders mount.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// A Little Is Enough with shift factor ν.
    Alie {
        /// Shift factor (paper: 1.5).
        nu: f64,
    },
    /// Fall of Empires with scale factor ν.
    Foe {
        /// Scale factor (paper: 1.1).
        nu: f64,
    },
    /// Negated honest mean.
    SignFlip,
    /// Pure Gaussian noise of the given std.
    RandomNoise {
        /// Per-coordinate std.
        std: f64,
    },
    /// Zero vector.
    Zero,
    /// Honest mean scaled by a huge factor.
    LargeNorm {
        /// Scale factor.
        scale: f64,
    },
    /// Replay one honest worker's submission (Karimireddy et al. 2022).
    Mimic {
        /// Index of the honest worker to copy.
        target: usize,
    },
}

impl AttackKind {
    /// The paper's ALIE setting (ν = 1.5).
    pub const PAPER_ALIE: AttackKind = AttackKind::Alie { nu: 1.5 };
    /// The paper's FoE setting (ν = 1.1).
    pub const PAPER_FOE: AttackKind = AttackKind::Foe { nu: 1.1 };

    /// Instantiates the attack.
    pub fn build(self) -> Arc<dyn Attack> {
        match self {
            AttackKind::Alie { nu } => Arc::new(LittleIsEnough::new(nu)),
            AttackKind::Foe { nu } => Arc::new(FallOfEmpires::new(nu)),
            AttackKind::SignFlip => Arc::new(SignFlip),
            AttackKind::RandomNoise { std } => Arc::new(RandomNoise::new(std)),
            AttackKind::Zero => Arc::new(Zero),
            AttackKind::LargeNorm { scale } => Arc::new(LargeNorm::new(scale)),
            AttackKind::Mimic { target } => Arc::new(Mimic::new(target)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Alie { .. } => "alie",
            AttackKind::Foe { .. } => "foe",
            AttackKind::SignFlip => "sign-flip",
            AttackKind::RandomNoise { .. } => "random-noise",
            AttackKind::Zero => "zero",
            AttackKind::LargeNorm { .. } => "large-norm",
            AttackKind::Mimic { .. } => "mimic",
        }
    }
}

/// Which noise-injection mechanism honest workers apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MechanismKind {
    /// The Gaussian mechanism of Eq. 6 (the paper's default).
    Gaussian,
    /// The Laplace alternative of Remark 3.
    Laplace,
}

impl MechanismKind {
    /// Builds the mechanism calibrated for the clipped batch-mean gradient
    /// map. `budget = None` yields [`NoNoise`] regardless of kind.
    ///
    /// # Errors
    ///
    /// Propagates calibration errors ([`DpError`]).
    pub fn build(
        self,
        budget: Option<PrivacyBudget>,
        g_max: f64,
        batch_size: usize,
        dim: usize,
    ) -> Result<Arc<dyn Mechanism>, DpError> {
        let Some(budget) = budget else {
            return Ok(Arc::new(NoNoise));
        };
        Ok(match self {
            MechanismKind::Gaussian => Arc::new(GaussianMechanism::for_clipped_gradients(
                budget, g_max, batch_size,
            )?),
            MechanismKind::Laplace => Arc::new(LaplaceMechanism::for_clipped_gradients(
                budget.epsilon(),
                g_max,
                batch_size,
                dim,
            )?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gar_kinds_build_and_name() {
        for kind in GarKind::ALL {
            let gar = kind.build();
            assert_eq!(gar.name(), kind.name());
        }
    }

    #[test]
    fn robust_kinds_have_kappa_at_paper_topology() {
        // n = 11: MDA/Median/TM/Meamed/Phocas tolerate f = 5, Krum f = 4,
        // Bulyan f = 2.
        assert!(GarKind::Mda.kappa(11, 5).is_some());
        assert!(GarKind::Krum.kappa(11, 4).is_some());
        assert!(GarKind::Bulyan.kappa(11, 2).is_some());
        assert!(GarKind::Average.kappa(11, 0).is_none());
    }

    #[test]
    fn attack_kinds_build() {
        let kinds = [
            AttackKind::PAPER_ALIE,
            AttackKind::PAPER_FOE,
            AttackKind::SignFlip,
            AttackKind::RandomNoise { std: 1.0 },
            AttackKind::Zero,
            AttackKind::LargeNorm { scale: 10.0 },
            AttackKind::Mimic { target: 0 },
        ];
        for k in kinds {
            let a = k.build();
            assert_eq!(a.name(), k.name());
        }
        assert_eq!(AttackKind::PAPER_ALIE, AttackKind::Alie { nu: 1.5 });
    }

    #[test]
    fn mechanism_kind_none_budget_is_identity() {
        let m = MechanismKind::Gaussian.build(None, 0.01, 50, 69).unwrap();
        assert_eq!(m.name(), "none");
    }

    #[test]
    fn mechanism_kind_builds_calibrated() {
        let budget = PrivacyBudget::new(0.2, 1e-6).unwrap();
        let g = MechanismKind::Gaussian
            .build(Some(budget), 0.01, 50, 69)
            .unwrap();
        assert_eq!(g.name(), "gaussian");
        assert!(g.per_coordinate_std() > 0.0);
        let l = MechanismKind::Laplace
            .build(Some(budget), 0.01, 50, 69)
            .unwrap();
        assert_eq!(l.name(), "laplace");
        // Laplace noise carries the extra √d: more total variance here.
        assert!(l.total_noise_variance(69) > g.total_noise_variance(69));
    }
}
