//! The fluent experiment builder: the front door of the redesigned API.
//!
//! [`ExperimentBuilder`] assembles an [`Experiment`] from string component
//! ids (resolved through the [`registry`](crate::registry)), `*Kind`
//! wrappers, or full [`ComponentSpec`]s, layered over the paper's §5.1
//! protocol defaults. Component ids are validated at [`build`] time, so a
//! typo fails fast with the list of available ids instead of erroring
//! mid-sweep.
//!
//! ```
//! use dpbyz_core::Experiment;
//!
//! let exp = Experiment::builder()
//!     .steps(20)
//!     .dataset_size(300)
//!     .gar("krum")
//!     .attack("alie")
//!     .byzantine(4)
//!     .epsilon(0.2)
//!     .build()
//!     .unwrap();
//! let histories = exp.run_seeds(&[1, 2]).unwrap();
//! assert_eq!(histories.len(), 2);
//! ```

use crate::pipeline::{Experiment, PipelineError, Workload};
use crate::registry::{self, ComponentSpec};
use dpbyz_dp::PrivacyBudget;
use dpbyz_server::{LrSchedule, MomentumMode, TrainingConfig};

/// Fluent builder for [`Experiment`]; see the module docs for an example.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    workload: Option<Workload>,
    dataset_size: usize,
    data_seed: u64,
    config: Option<TrainingConfig>,
    workers: (usize, usize),
    batch_size: usize,
    steps: u32,
    lr: LrSchedule,
    momentum: f64,
    momentum_mode: MomentumMode,
    clip: f64,
    eval_every: u32,
    agg_threads: usize,
    gar: Option<ComponentSpec>,
    attack: Option<ComponentSpec>,
    mechanism: ComponentSpec,
    epsilon: Option<f64>,
    delta: f64,
    budget: Option<PrivacyBudget>,
    backend: ComponentSpec,
    dp_reference_g_max: Option<f64>,
}

impl Experiment {
    /// Starts a builder pre-loaded with the paper's §5.1 protocol: the
    /// phishing-like workload, n = 11 workers (f = 5 once an attack is
    /// armed), b = 50, T = 1000, lr 2, worker momentum 0.99,
    /// `G_max = 10⁻²`, no attack, no DP. The aggregation rule defaults to
    /// plain averaging — or MDA once an attack is armed, exactly as the
    /// paper's figures do.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        ExperimentBuilder {
            workload: None,
            dataset_size: dpbyz_data::synthetic::PHISHING_SIZE,
            data_seed: 0xD1B2_2021,
            config: None,
            workers: (11, 5),
            batch_size: 50,
            steps: 1000,
            lr: LrSchedule::Constant(2.0),
            momentum: 0.99,
            momentum_mode: MomentumMode::Worker,
            clip: 1e-2,
            eval_every: 50,
            agg_threads: 1,
            gar: None,
            attack: None,
            mechanism: ComponentSpec::new("gaussian"),
            epsilon: None,
            delta: 1e-6,
            budget: None,
            backend: ComponentSpec::new("sequential"),
            dp_reference_g_max: None,
        }
    }
}

impl ExperimentBuilder {
    /// Sets the workload explicitly (otherwise the phishing-like synthetic
    /// dataset of the paper's figures, sized by
    /// [`dataset_size`](Self::dataset_size)).
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the synthetic dataset size of the default workload.
    #[must_use]
    pub fn dataset_size(mut self, size: usize) -> Self {
        self.dataset_size = size;
        self
    }

    /// Sets the dataset generator seed of the default workload.
    #[must_use]
    pub fn data_seed(mut self, seed: u64) -> Self {
        self.data_seed = seed;
        self
    }

    /// Replaces the entire training configuration (overrides every knob
    /// below that was set *before* this call; topology and batch knobs
    /// set *afterwards* — e.g. by a scenario-pack cell pinning its
    /// Byzantine count over this base — write through into it, so the
    /// last call always wins).
    #[must_use]
    pub fn config(mut self, config: TrainingConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets `n` total and `f` Byzantine workers.
    #[must_use]
    pub fn workers(mut self, n: usize, f: usize) -> Self {
        if let Some(config) = &mut self.config {
            config.n_workers = n;
            config.n_byzantine = f;
        }
        self.workers = (n, f);
        self
    }

    /// Sets the total worker count `n` only.
    #[must_use]
    pub fn n_workers(mut self, n: usize) -> Self {
        if let Some(config) = &mut self.config {
            config.n_workers = n;
        }
        self.workers.0 = n;
        self
    }

    /// Sets the Byzantine count `f` only.
    #[must_use]
    pub fn byzantine(mut self, f: usize) -> Self {
        if let Some(config) = &mut self.config {
            config.n_byzantine = f;
        }
        self.workers.1 = f;
        self
    }

    /// Sets the per-worker batch size `b`.
    #[must_use]
    pub fn batch_size(mut self, b: usize) -> Self {
        if let Some(config) = &mut self.config {
            config.batch_size = b;
        }
        self.batch_size = b;
        self
    }

    /// Sets the number of steps `T`.
    #[must_use]
    pub fn steps(mut self, t: u32) -> Self {
        self.steps = t;
        self
    }

    /// Sets the learning-rate schedule.
    #[must_use]
    pub fn lr(mut self, lr: LrSchedule) -> Self {
        self.lr = lr;
        self
    }

    /// Sets the momentum coefficient.
    #[must_use]
    pub fn momentum(mut self, m: f64) -> Self {
        self.momentum = m;
        self
    }

    /// Sets the momentum placement.
    #[must_use]
    pub fn momentum_mode(mut self, mode: MomentumMode) -> Self {
        self.momentum_mode = mode;
        self
    }

    /// Sets the clipping threshold `G_max`.
    #[must_use]
    pub fn clip(mut self, g_max: f64) -> Self {
        self.clip = g_max;
        self
    }

    /// Sets the accuracy evaluation period (0 disables evaluation).
    #[must_use]
    pub fn eval_every(mut self, period: u32) -> Self {
        self.eval_every = period;
        self
    }

    /// Sets the intra-round aggregation thread count (1 = serial, the
    /// default). The GAR's coordinate and candidate loops shard over this
    /// many threads; the parallel result is bit-identical to serial at
    /// any count, so this is a pure throughput knob. Writes through into
    /// an explicit [`config`](Self::config) like the topology knobs do.
    #[must_use]
    pub fn agg_threads(mut self, threads: usize) -> Self {
        if let Some(config) = &mut self.config {
            config.agg_threads = threads;
        }
        self.agg_threads = threads;
        self
    }

    /// Sets the aggregation rule by registry id, `GarKind`, or full spec.
    /// Unset, the rule follows the paper's protocol: plain averaging, or
    /// MDA once an attack is armed.
    #[must_use]
    pub fn gar(mut self, gar: impl Into<ComponentSpec>) -> Self {
        self.gar = Some(gar.into());
        self
    }

    /// Arms an attack by registry id, `AttackKind`, or full spec.
    #[must_use]
    pub fn attack(mut self, attack: impl Into<ComponentSpec>) -> Self {
        self.attack = Some(attack.into());
        self
    }

    /// Disarms any attack (undoes [`attack`](Self::attack)): every worker
    /// is honest again. Scenario packs use this so an explicitly clean
    /// cell stays clean even over an attack-carrying base.
    #[must_use]
    pub fn unattacked(mut self) -> Self {
        self.attack = None;
        self
    }

    /// Sets the noise mechanism by registry id, `MechanismKind`, or full
    /// spec. The budget-calibrated built-ins (`gaussian`, `laplace`)
    /// degrade to the identity mechanism while no budget is set; a custom
    /// registered mechanism is always resolved as specified, with the
    /// calibration context injected for factories that want it.
    #[must_use]
    pub fn mechanism(mut self, mechanism: impl Into<ComponentSpec>) -> Self {
        self.mechanism = mechanism.into();
        self
    }

    /// Enables DP with per-step budget `(ε, delta)` (δ defaults to the
    /// paper's 10⁻⁶; see [`delta`](Self::delta)).
    #[must_use]
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Sets the privacy `δ` used with [`epsilon`](Self::epsilon).
    #[must_use]
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets a full validated budget directly (overrides `epsilon`/`delta`).
    #[must_use]
    pub fn budget(mut self, budget: PrivacyBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Clears any privacy budget (undoes [`epsilon`](Self::epsilon) /
    /// [`budget`](Self::budget)): the experiment runs noise-free. Scenario
    /// packs use this so an explicitly no-DP cell stays no-DP even over a
    /// DP-carrying base.
    #[must_use]
    pub fn no_dp(mut self) -> Self {
        self.epsilon = None;
        self.budget = None;
        self
    }

    /// Selects the execution backend by registry id (`"sequential"`,
    /// `"threaded"`, `"tcp"`, or any registered id, optionally with
    /// parameters via a full [`ComponentSpec`]). All backends are
    /// bit-identical on clean runs. The id is resolved at *run* time, not
    /// here: backends registered after `build()` (e.g. `dpbyz-net`'s
    /// `install()`) still work, and an unknown id surfaces from `run` as
    /// a spec error naming the available backends.
    #[must_use]
    pub fn backend(mut self, backend: impl Into<ComponentSpec>) -> Self {
        self.backend = backend.into();
        self
    }

    /// Runs on the threaded engine instead of the sequential one (the two
    /// are bit-identical; threaded pays thread overhead but exercises the
    /// wire format). Sugar over [`backend`](Self::backend).
    #[must_use]
    pub fn threaded(self, threaded: bool) -> Self {
        self.backend(if threaded { "threaded" } else { "sequential" })
    }

    /// Calibrates DP noise at a reference `G_max` different from the clip
    /// threshold (the Theorem 1 workload's unclipped-noise protocol).
    #[must_use]
    pub fn dp_reference_g_max(mut self, g_max: f64) -> Self {
        self.dp_reference_g_max = Some(g_max);
        self
    }

    /// Validates component ids and assembles the [`Experiment`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::Registry`] for unknown component ids (the message
    /// lists what is registered), [`PipelineError::Dp`] for a bad budget,
    /// [`PipelineError::Config`] for inconsistent training knobs,
    /// [`PipelineError::Spec`] when an armed attack's Byzantine count
    /// exceeds the chosen rule's tolerance.
    pub fn build(self) -> Result<Experiment, PipelineError> {
        // The paper's protocol when the rule is left unset: averaging over
        // honest workers, or MDA once an attack is armed.
        let gar_spec = self.gar.unwrap_or_else(|| {
            ComponentSpec::new(if self.attack.is_some() {
                "mda"
            } else {
                "average"
            })
        });

        // Fail fast on unresolvable ids: building the components validates
        // both the ids and (for attacks/GARs) their parameters. The
        // mechanism's factory needs run-time calibration context, so only
        // its id is checked here.
        let gar = registry::build_gar(&gar_spec)?;
        if let Some(attack) = &self.attack {
            registry::build_attack(attack)?;
        }
        let known_mechanisms = registry::mechanism_ids();
        if !known_mechanisms.contains(&self.mechanism.id) {
            return Err(registry::RegistryError::UnknownId {
                id: self.mechanism.id.clone(),
                available: known_mechanisms,
            }
            .into());
        }

        let budget = match (self.budget, self.epsilon) {
            (Some(budget), _) => Some(budget),
            (None, Some(epsilon)) => Some(PrivacyBudget::new(epsilon, self.delta)?),
            (None, None) => None,
        };

        let config = match self.config {
            Some(mut config) => {
                // The same normalization the knob path applies: with no
                // attack armed, every worker is honest — a nonzero
                // `n_byzantine` left in an explicit config would make the
                // GAR trim (or reject) honest submissions on step 1.
                if self.attack.is_none() {
                    config.n_byzantine = 0;
                }
                config
            }
            None => {
                let (n, f) = self.workers;
                // An unarmed attack means every worker is honest.
                let f = if self.attack.is_some() { f } else { 0 };
                TrainingConfig::builder()
                    .workers(n, f)
                    .batch_size(self.batch_size)
                    .steps(self.steps)
                    .lr(self.lr)
                    .momentum(self.momentum)
                    .momentum_mode(self.momentum_mode)
                    .clip(self.clip)
                    .eval_every(self.eval_every)
                    .agg_threads(self.agg_threads)
                    .build()?
            }
        };

        // An experiment whose rule cannot tolerate its Byzantine count
        // would error on step 1 of every run; reject it here instead.
        if self.attack.is_some() {
            let tolerance = gar.max_byzantine(config.n_workers);
            if config.n_byzantine > tolerance {
                return Err(PipelineError::Spec(format!(
                    "gar `{}` tolerates at most {tolerance} Byzantine workers \
                     among {}, but the experiment arms {} — lower `byzantine(..)` \
                     or pick a more tolerant rule",
                    gar_spec.id, config.n_workers, config.n_byzantine
                )));
            }
        }

        let workload = self.workload.unwrap_or(Workload::PhishingLike {
            data_seed: self.data_seed,
            size: self.dataset_size,
        });

        Ok(Experiment {
            workload,
            config,
            gar: gar_spec,
            attack: self.attack,
            budget,
            mechanism: self.mechanism,
            backend: self.backend,
            dp_reference_g_max: self.dp_reference_g_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryError;
    use crate::{AttackKind, GarKind};

    #[test]
    fn defaults_mirror_paper_protocol() {
        let exp = Experiment::builder().build().unwrap();
        assert_eq!(exp.gar, GarKind::Average);
        assert_eq!(exp.config.n_workers, 11);
        assert_eq!(exp.config.n_byzantine, 0); // no attack armed
        assert_eq!(exp.config.batch_size, 50);
        assert!(exp.budget.is_none());
        assert_eq!(exp.backend.id, "sequential");
    }

    #[test]
    fn string_ids_and_kinds_both_accepted() {
        let by_id = Experiment::builder()
            .gar("mda")
            .attack("alie")
            .build()
            .unwrap();
        let by_kind = Experiment::builder()
            .gar(GarKind::Mda)
            .attack(AttackKind::PAPER_ALIE)
            .build()
            .unwrap();
        assert_eq!(by_id.gar, by_kind.gar);
        // The bare id carries no ν parameter; the kind pins the paper's.
        assert_eq!(by_id.attack.as_ref().unwrap().id, "alie");
        assert_eq!(by_kind.attack.as_ref().unwrap().f64("nu"), Some(1.5));
    }

    #[test]
    fn arming_an_attack_activates_byzantine_workers_and_mda() {
        let exp = Experiment::builder().attack("foe").build().unwrap();
        assert_eq!(exp.config.n_byzantine, 5);
        // The paper protocol: an armed attack without an explicit rule
        // aggregates with MDA (averaging tolerates no Byzantine workers).
        assert_eq!(exp.gar, GarKind::Mda);
        let custom_f = Experiment::builder()
            .attack("foe")
            .byzantine(3)
            .build()
            .unwrap();
        assert_eq!(custom_f.config.n_byzantine, 3);
    }

    #[test]
    fn intolerable_byzantine_count_rejected_at_build() {
        // Averaging tolerates f = 0; arming an attack against it must not
        // produce an experiment that errors on step 1 of every run.
        let err = Experiment::builder()
            .gar("average")
            .attack("alie")
            .build()
            .expect_err("average cannot host 5 Byzantine workers");
        assert!(matches!(err, PipelineError::Spec(_)));
        assert!(err.to_string().contains("average"), "{err}");
        // Krum at n = 11 tolerates 4, not 5.
        let err = Experiment::builder()
            .gar("krum")
            .attack("alie")
            .build()
            .expect_err("krum tolerates only 4 at n = 11");
        assert!(err.to_string().contains("at most 4"), "{err}");
        assert!(Experiment::builder()
            .gar("krum")
            .attack("alie")
            .byzantine(4)
            .build()
            .is_ok());
    }

    #[test]
    fn unknown_mechanism_id_rejected_at_build() {
        let err = Experiment::builder()
            .mechanism("gausian")
            .build()
            .expect_err("typo'd mechanism id fails fast");
        let message = err.to_string();
        assert!(
            message.contains("gausian") && message.contains("gaussian"),
            "{message}"
        );
    }

    #[test]
    fn unknown_ids_fail_fast_with_available_list() {
        let err = Experiment::builder().gar("krumm").build().unwrap_err();
        match err {
            PipelineError::Registry(RegistryError::UnknownId { id, available }) => {
                assert_eq!(id, "krumm");
                assert!(available.contains(&"krum".to_string()));
            }
            other => panic!("expected registry error, got {other}"),
        }
    }

    #[test]
    fn epsilon_sets_budget_and_runs_end_to_end() {
        let exp = Experiment::builder()
            .steps(10)
            .dataset_size(300)
            .gar("mda")
            .attack("alie")
            .epsilon(0.2)
            .build()
            .unwrap();
        let budget = exp.budget.expect("budget set");
        assert_eq!(budget.epsilon(), 0.2);
        assert_eq!(budget.delta(), 1e-6);
        let h = exp.run(1).unwrap();
        assert_eq!(h.train_loss.len(), 10);
    }

    #[test]
    fn invalid_epsilon_rejected_at_build() {
        let err = Experiment::builder().epsilon(-0.5).build().unwrap_err();
        assert!(matches!(err, PipelineError::Dp(_)));
    }

    #[test]
    fn explicit_config_overrides_knobs() {
        let config = TrainingConfig::builder()
            .workers(3, 0)
            .batch_size(4)
            .steps(7)
            .build()
            .unwrap();
        let exp = Experiment::builder()
            .workers(20, 9)
            .steps(999)
            .config(config.clone())
            .build()
            .unwrap();
        assert_eq!(exp.config, config);
    }

    #[test]
    fn topology_knobs_after_explicit_config_write_through() {
        // Scenario-pack cells pin workers/byzantine/batch over arbitrary
        // bases, including ones assembled from a full TrainingConfig:
        // knobs set AFTER config() must win.
        let config = TrainingConfig::builder()
            .workers(7, 3)
            .batch_size(4)
            .steps(9)
            .build()
            .unwrap();
        let exp = Experiment::builder()
            .config(config)
            .attack("alie")
            .n_workers(11)
            .byzantine(5)
            .batch_size(16)
            .build()
            .unwrap();
        assert_eq!(exp.config.n_workers, 11);
        assert_eq!(exp.config.n_byzantine, 5);
        assert_eq!(exp.config.batch_size, 16);
        assert_eq!(exp.config.steps, 9); // untouched knob kept
    }

    #[test]
    fn unarmed_explicit_config_zeroes_byzantine_count() {
        // The knob path's "no attack ⇒ every worker honest" rule applies
        // to explicit configs too: otherwise a clean cell over a
        // config-carrying base keeps f > 0 and averaging rejects (or a
        // robust rule trims) honest submissions on step 1.
        let config = TrainingConfig::builder()
            .workers(11, 5)
            .batch_size(8)
            .steps(2)
            .build()
            .unwrap();
        let clean = Experiment::builder()
            .dataset_size(200)
            .config(config.clone())
            .build()
            .unwrap();
        assert_eq!(clean.config.n_byzantine, 0);
        assert!(clean.run(1).is_ok());
        // With an attack armed the config's f is preserved.
        let armed = Experiment::builder()
            .dataset_size(200)
            .config(config)
            .attack("alie")
            .build()
            .unwrap();
        assert_eq!(armed.config.n_byzantine, 5);
    }
}
