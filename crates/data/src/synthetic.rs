//! Seeded synthetic dataset generators.
//!
//! # The `phishing` substitution
//!
//! The paper trains on the LIBSVM `phishing` dataset (11 055 examples,
//! 68 features scaled to `[0, 1]`, ≈ 55 % positive class, on which a d = 69
//! logistic model reaches ≈ 93 % test accuracy). That file is not shipped
//! here, so [`phishing_like`] generates a statistically equivalent stand-in:
//!
//! * same shape — 68 features quantized to `{0, 0.5, 1}` (the original
//!   features are ternary categoricals min-max scaled), same default size;
//! * same class balance (≈ 55 % positive);
//! * same learnability — features are noisy views of a 1-D latent
//!   "phishiness" score, label is a noisy threshold of the same latent, so
//!   a linear model recovers ≈ 92–94 % accuracy.
//!
//! Everything the paper measures (gradient variance/norm ratios, the effect
//! of DP noise and Byzantine gradients on a convex model with d = 69) only
//! depends on these statistics, not on the semantics of phishing URLs.
//! The real file can still be used via [`crate::libsvm::parse_file`].

use crate::sampler::BatchSource;
use crate::{Batch, Dataset};
use dpbyz_tensor::{Matrix, Prng, Vector};

/// Number of features in the LIBSVM `phishing` dataset.
pub const PHISHING_FEATURES: usize = 68;

/// Number of examples in the LIBSVM `phishing` dataset.
pub const PHISHING_SIZE: usize = 11_055;

/// Train-set size used by the paper (leaving 2 655 test examples).
pub const PHISHING_TRAIN: usize = 8_400;

/// Generates a `phishing`-like binary classification dataset (see the
/// module docs for the substitution rationale).
///
/// # Example
///
/// ```
/// use dpbyz_data::synthetic;
/// use dpbyz_tensor::Prng;
///
/// let ds = synthetic::phishing_like(&mut Prng::seed_from_u64(1), 500);
/// assert_eq!(ds.num_features(), 68);
/// let pos = ds.positive_fraction();
/// assert!(pos > 0.4 && pos < 0.7);
/// ```
pub fn phishing_like(rng: &mut Prng, n: usize) -> Dataset {
    // Per-feature loading on the latent score and bias, fixed per dataset.
    let loadings: Vec<f64> = (0..PHISHING_FEATURES)
        .map(|_| rng.normal(0.0, 1.0))
        .collect();
    let biases: Vec<f64> = (0..PHISHING_FEATURES)
        .map(|_| rng.normal(0.0, 0.5))
        .collect();

    let mut features = Matrix::zeros(n, PHISHING_FEATURES);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        // Latent "phishiness" of the example.
        let z = rng.normal(0.0, 1.0);
        // Label: noisy threshold, shifted to get ≈55% positives.
        let y = if z + rng.normal(0.0, 0.35) > -0.15 {
            1.0
        } else {
            0.0
        };
        labels.push(y);
        for j in 0..PHISHING_FEATURES {
            let u = loadings[j] * z + biases[j] + rng.normal(0.0, 0.8);
            // Ternary quantization at the ±0.43 tertile boundaries of a
            // standard normal, then scaled to {0, 0.5, 1}.
            let q = if u < -0.43 {
                0.0
            } else if u > 0.43 {
                1.0
            } else {
                0.5
            };
            features.set(i, j, q);
        }
    }
    Dataset::new(features, labels).expect("lengths match by construction") // lint:allow(panic-unwrap, reason = "the generator builds feature and label arrays of identical length")
}

/// The full-size phishing stand-in (11 055 examples), pre-split into the
/// paper's 8 400-example train set and 2 655-example test set.
pub fn phishing_like_split(rng: &mut Prng) -> (Dataset, Dataset) {
    let ds = phishing_like(rng, PHISHING_SIZE);
    ds.split_at(PHISHING_TRAIN)
        .expect("PHISHING_TRAIN < PHISHING_SIZE") // lint:allow(panic-unwrap, reason = "PHISHING_TRAIN < PHISHING_SIZE is a constant relationship checked by the dataset tests")
}

/// Two isotropic Gaussian blobs at `±(separation/2, 0, …, 0)`, labelled
/// `1.0`/`0.0` — the simplest linearly separable benchmark.
pub fn gaussian_blobs(rng: &mut Prng, n: usize, dim: usize, separation: f64) -> Dataset {
    assert!(dim > 0, "dim must be positive");
    let mut features = Matrix::zeros(n, dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let y = rng.bernoulli(0.5);
        let center = if y {
            separation / 2.0
        } else {
            -separation / 2.0
        };
        for j in 0..dim {
            let mean = if j == 0 { center } else { 0.0 };
            features.set(i, j, rng.normal(mean, 1.0));
        }
        labels.push(if y { 1.0 } else { 0.0 });
    }
    Dataset::new(features, labels).expect("lengths match by construction") // lint:allow(panic-unwrap, reason = "the generator builds feature and label arrays of identical length")
}

/// Linear regression data `y = <w*, x> + N(0, noise²)` with `x ~ N(0, I)`.
/// Returns the dataset and the ground-truth weights `w*`.
pub fn linear_regression(rng: &mut Prng, n: usize, dim: usize, noise: f64) -> (Dataset, Vector) {
    assert!(dim > 0, "dim must be positive");
    let w_star: Vector = (0..dim).map(|_| rng.normal(0.0, 1.0)).collect();
    let mut features = Matrix::zeros(n, dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let x: Vector = (0..dim).map(|_| rng.normal(0.0, 1.0)).collect();
        labels.push(w_star.dot(&x) + rng.normal(0.0, noise));
        for j in 0..dim {
            features.set(i, j, x[j]);
        }
    }
    (
        Dataset::new(features, labels).expect("lengths match by construction"), // lint:allow(panic-unwrap, reason = "the generator builds feature and label arrays of identical length")
        w_star,
    )
}

/// The data distribution of Theorem 1's lower-bound construction:
/// `D = N(x̄, (σ²/d) · I_d)` with cost `Q(w) = ½·E‖w − x‖²`.
///
/// Sampling is exact and infinite — each call draws a fresh point, matching
/// the paper's model where workers sample from `D` itself rather than a
/// finite dataset.
#[derive(Debug, Clone)]
pub struct MeanEstimation {
    mean: Vector,
    sigma: f64,
}

impl MeanEstimation {
    /// Creates the distribution `N(mean, (sigma²/d)·I_d)`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is empty or `sigma` is negative.
    pub fn new(mean: Vector, sigma: f64) -> Self {
        assert!(!mean.is_empty(), "mean must be non-empty");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        MeanEstimation { mean, sigma }
    }

    /// A standard instance: `x̄` has unit-scale coordinates drawn from the
    /// RNG, total variance `sigma²` spread over `dim` coordinates.
    pub fn random_instance(rng: &mut Prng, dim: usize, sigma: f64) -> Self {
        let mean: Vector = (0..dim).map(|_| rng.normal(0.0, 1.0)).collect();
        Self::new(mean, sigma)
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.mean.dim()
    }

    /// The true mean `x̄` — also the minimizer `w*` of `Q`.
    pub fn true_mean(&self) -> &Vector {
        &self.mean
    }

    /// The total standard deviation parameter `σ` (per-coordinate std is
    /// `σ/√d`, so that `E‖x − x̄‖² = σ²`).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one point `x ~ D`.
    pub fn sample(&self, rng: &mut Prng) -> Vector {
        let per_coord = self.sigma / (self.dim() as f64).sqrt();
        &self.mean + &rng.normal_vector(self.dim(), per_coord)
    }

    /// Draws a batch of `b` points as a [`Batch`] (labels are all zero —
    /// the mean-estimation cost ignores them).
    pub fn sample_batch(&self, b: usize, rng: &mut Prng) -> Batch {
        let mut out = Batch::empty();
        self.sample_batch_into(b, rng, &mut out);
        out
    }

    /// Draws a batch of `b` points into `out`, reusing its buffers and
    /// consuming the RNG exactly as [`MeanEstimation::sample_batch`] does
    /// (one row of `dim` normals per example, in row order).
    pub fn sample_batch_into(&self, b: usize, rng: &mut Prng, out: &mut Batch) {
        let dim = self.dim();
        let per_coord = self.sigma / (dim as f64).sqrt();
        let (features, labels) = out.parts_mut();
        features.resize(b, dim, 0.0);
        for i in 0..b {
            let row = features.row_mut(i);
            for (j, x) in row.iter_mut().enumerate() {
                *x = self.mean[j] + rng.normal(0.0, per_coord);
            }
        }
        labels.clear();
        labels.resize(b, 0.0);
    }
}

/// [`BatchSource`] adapter for [`MeanEstimation`] so the distributed trainer
/// can run Theorem 1's workload directly.
#[derive(Debug, Clone)]
pub struct MeanEstimationSource(pub MeanEstimation);

impl BatchSource for MeanEstimationSource {
    fn num_features(&self) -> usize {
        self.0.dim()
    }

    fn next_batch(&mut self, batch_size: usize, rng: &mut Prng) -> Batch {
        self.0.sample_batch(batch_size, rng)
    }

    fn next_batch_into(&mut self, batch_size: usize, rng: &mut Prng, out: &mut Batch) {
        self.0.sample_batch_into(batch_size, rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::stats::Welford;

    #[test]
    fn phishing_like_shape_and_balance() {
        let mut rng = Prng::seed_from_u64(1);
        let ds = phishing_like(&mut rng, 2000);
        assert_eq!(ds.len(), 2000);
        assert_eq!(ds.num_features(), PHISHING_FEATURES);
        let pos = ds.positive_fraction();
        assert!(pos > 0.45 && pos < 0.65, "positive fraction {pos}");
        // All features quantized to {0, 0.5, 1}.
        for i in 0..ds.len() {
            for &x in ds.example(i).0 {
                assert!(x == 0.0 || x == 0.5 || x == 1.0);
            }
        }
    }

    #[test]
    fn phishing_like_is_seeded() {
        let a = phishing_like(&mut Prng::seed_from_u64(3), 50);
        let b = phishing_like(&mut Prng::seed_from_u64(3), 50);
        assert_eq!(a, b);
        let c = phishing_like(&mut Prng::seed_from_u64(4), 50);
        assert_ne!(a, c);
    }

    #[test]
    fn phishing_like_features_carry_signal() {
        // Features must correlate with the label, otherwise nothing is
        // learnable. Check that at least a quarter of features have
        // |mean(x|y=1) - mean(x|y=0)| > 0.05.
        let mut rng = Prng::seed_from_u64(5);
        let ds = phishing_like(&mut rng, 3000);
        let mut informative = 0;
        for j in 0..ds.num_features() {
            let (mut s1, mut n1, mut s0, mut n0) = (0.0, 0, 0.0, 0);
            for i in 0..ds.len() {
                let (x, y) = ds.example(i);
                if y == 1.0 {
                    s1 += x[j];
                    n1 += 1;
                } else {
                    s0 += x[j];
                    n0 += 1;
                }
            }
            if (s1 / n1 as f64 - s0 / n0 as f64).abs() > 0.05 {
                informative += 1;
            }
        }
        assert!(
            informative >= PHISHING_FEATURES / 4,
            "only {informative} informative features"
        );
    }

    #[test]
    fn phishing_split_matches_paper_counts() {
        let mut rng = Prng::seed_from_u64(2);
        let (train, test) = phishing_like_split(&mut rng);
        assert_eq!(train.len(), 8_400);
        assert_eq!(test.len(), 2_655);
    }

    #[test]
    fn blobs_are_separated() {
        let mut rng = Prng::seed_from_u64(6);
        let ds = gaussian_blobs(&mut rng, 1000, 4, 6.0);
        // With separation 6 the first coordinate alone classifies well.
        let correct = (0..ds.len())
            .filter(|&i| {
                let (x, y) = ds.example(i);
                (x[0] > 0.0) == (y == 1.0)
            })
            .count();
        assert!(correct as f64 / ds.len() as f64 > 0.95);
    }

    #[test]
    fn linear_regression_labels_match_weights() {
        let mut rng = Prng::seed_from_u64(7);
        let (ds, w) = linear_regression(&mut rng, 500, 3, 0.0);
        for i in 0..ds.len() {
            let (x, y) = ds.example(i);
            let pred: f64 = x.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
            assert!((pred - y).abs() < 1e-9);
        }
    }

    #[test]
    fn mean_estimation_moments() {
        let mut rng = Prng::seed_from_u64(8);
        let d = 16;
        let dist = MeanEstimation::random_instance(&mut rng, d, 2.0);
        assert_eq!(dist.dim(), d);
        // E‖x − x̄‖² = σ² = 4.
        let mut w = Welford::new();
        for _ in 0..4000 {
            let x = dist.sample(&mut rng);
            w.push(x.l2_distance_squared(dist.true_mean()));
        }
        assert!((w.mean() - 4.0).abs() < 0.2, "E||x-mean||^2 = {}", w.mean());
    }

    #[test]
    fn mean_estimation_batch_and_source() {
        let mut rng = Prng::seed_from_u64(9);
        let dist = MeanEstimation::new(Vector::from(vec![1.0, -1.0]), 1.0);
        let b = dist.sample_batch(5, &mut rng);
        assert_eq!(b.len(), 5);
        assert_eq!(b.labels(), &[0.0; 5]);

        let mut src = MeanEstimationSource(dist);
        assert_eq!(src.num_features(), 2);
        let b2 = src.next_batch(3, &mut rng);
        assert_eq!(b2.len(), 3);
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn mean_estimation_rejects_negative_sigma() {
        let _ = MeanEstimation::new(Vector::from(vec![0.0]), -1.0);
    }
}
