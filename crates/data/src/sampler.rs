//! Batch sampling: how each simulated worker draws its training batch
//! `ξ_t^(i)` at every step.
//!
//! The paper's model has every honest worker sample an i.i.d. batch from the
//! data distribution `D` at each step. [`BatchSource`] abstracts over "where
//! batches come from": a finite dataset sampled with replacement
//! ([`DatasetSource`]), a finite dataset visited in reshuffled epochs, or an
//! infinite analytic distribution (see
//! [`synthetic::MeanEstimationSource`](crate::synthetic::MeanEstimationSource)).

use crate::{Batch, Dataset};
use dpbyz_tensor::Prng;
use std::sync::Arc;

/// A stream of training batches.
///
/// Implementors must be deterministic given the `Prng` handed in: the
/// trainer derives one independent RNG stream per worker, so runs are
/// reproducible end-to-end.
pub trait BatchSource: Send {
    /// Feature dimension of produced batches.
    fn num_features(&self) -> usize;

    /// Draws the next batch of `batch_size` examples.
    fn next_batch(&mut self, batch_size: usize, rng: &mut Prng) -> Batch;

    /// Draws the next batch into a caller-provided buffer — the zero-copy
    /// counterpart of [`BatchSource::next_batch`] driven every step by the
    /// buffer-recycling worker loop. Must consume the RNG identically to
    /// `next_batch` and produce an equal batch.
    ///
    /// The default delegates to `next_batch` (one allocation per call), so
    /// out-of-tree sources keep working unchanged; the in-tree sources
    /// override it allocation-free.
    fn next_batch_into(&mut self, batch_size: usize, rng: &mut Prng, out: &mut Batch) {
        *out = self.next_batch(batch_size, rng);
    }
}

/// How a [`DatasetSource`] traverses its dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Each batch is drawn uniformly with replacement — i.i.d. sampling,
    /// matching the paper's model (and the variance analysis of Eq. 8).
    WithReplacement,
    /// Without replacement within an epoch; the permutation is reshuffled
    /// when exhausted. Common in practice; included for ablations.
    EpochShuffle,
}

/// A [`BatchSource`] over a finite in-memory dataset.
///
/// # Example
///
/// ```
/// use dpbyz_data::sampler::{BatchSource, DatasetSource, SamplingMode};
/// use dpbyz_data::synthetic;
/// use dpbyz_tensor::Prng;
/// use std::sync::Arc;
///
/// let mut rng = Prng::seed_from_u64(0);
/// let ds = Arc::new(synthetic::phishing_like(&mut rng, 100));
/// let mut src = DatasetSource::new(ds, SamplingMode::WithReplacement);
/// let batch = src.next_batch(10, &mut rng);
/// assert_eq!(batch.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetSource {
    dataset: Arc<Dataset>,
    mode: SamplingMode,
    /// Epoch state (only used by `EpochShuffle`).
    perm: Vec<usize>,
    pos: usize,
    /// Reusable index buffer: the next batch's row selection.
    indices: Vec<usize>,
}

impl DatasetSource {
    /// Creates a source over `dataset` with the given traversal mode.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn new(dataset: Arc<Dataset>, mode: SamplingMode) -> Self {
        assert!(!dataset.is_empty(), "cannot sample from an empty dataset");
        DatasetSource {
            dataset,
            mode,
            perm: Vec::new(),
            pos: 0,
            indices: Vec::new(),
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Fills `self.indices` with the next batch's row selection, drawing
    /// from the RNG exactly as the historical allocating path did.
    fn fill_indices(&mut self, batch_size: usize, rng: &mut Prng) {
        let n = self.dataset.len();
        self.indices.clear();
        match self.mode {
            SamplingMode::WithReplacement => {
                for _ in 0..batch_size {
                    self.indices.push(rng.index(n));
                }
            }
            SamplingMode::EpochShuffle => {
                while self.indices.len() < batch_size {
                    if self.pos >= self.perm.len() {
                        self.perm.clear();
                        self.perm.extend(0..n);
                        rng.shuffle(&mut self.perm);
                        self.pos = 0;
                    }
                    let take = (batch_size - self.indices.len()).min(self.perm.len() - self.pos);
                    self.indices
                        .extend_from_slice(&self.perm[self.pos..self.pos + take]);
                    self.pos += take;
                }
            }
        }
    }
}

impl BatchSource for DatasetSource {
    fn num_features(&self) -> usize {
        self.dataset.num_features()
    }

    fn next_batch(&mut self, batch_size: usize, rng: &mut Prng) -> Batch {
        let mut out = Batch::empty();
        self.next_batch_into(batch_size, rng, &mut out);
        out
    }

    fn next_batch_into(&mut self, batch_size: usize, rng: &mut Prng, out: &mut Batch) {
        assert!(batch_size > 0, "batch size must be positive");
        self.fill_indices(batch_size, rng);
        self.dataset.batch_into(&self.indices, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    fn dataset(n: usize) -> Arc<Dataset> {
        let mut rng = Prng::seed_from_u64(7);
        Arc::new(synthetic::gaussian_blobs(&mut rng, n, 3, 2.0))
    }

    #[test]
    fn with_replacement_batches_have_right_shape() {
        let ds = dataset(20);
        let mut src = DatasetSource::new(ds, SamplingMode::WithReplacement);
        let mut rng = Prng::seed_from_u64(1);
        let b = src.next_batch(7, &mut rng);
        assert_eq!(b.len(), 7);
        assert_eq!(b.features().cols(), 3);
        assert_eq!(src.num_features(), 3);
    }

    #[test]
    fn with_replacement_is_deterministic() {
        let ds = dataset(20);
        let mut s1 = DatasetSource::new(ds.clone(), SamplingMode::WithReplacement);
        let mut s2 = DatasetSource::new(ds, SamplingMode::WithReplacement);
        let b1 = s1.next_batch(5, &mut Prng::seed_from_u64(3));
        let b2 = s2.next_batch(5, &mut Prng::seed_from_u64(3));
        assert_eq!(b1, b2);
    }

    #[test]
    fn epoch_shuffle_covers_dataset_exactly_once_per_epoch() {
        let ds = dataset(10);
        let mut src = DatasetSource::new(ds.clone(), SamplingMode::EpochShuffle);
        let mut rng = Prng::seed_from_u64(5);
        // Two batches of 5 = one epoch: every example seen exactly once.
        let b1 = src.next_batch(5, &mut rng);
        let b2 = src.next_batch(5, &mut rng);
        let mut seen: Vec<f64> = b1.labels().iter().chain(b2.labels()).cloned().collect();
        let mut expected: Vec<f64> = ds.labels().to_vec();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, expected);
    }

    #[test]
    fn epoch_shuffle_handles_batch_spanning_epochs() {
        let ds = dataset(4);
        let mut src = DatasetSource::new(ds, SamplingMode::EpochShuffle);
        let mut rng = Prng::seed_from_u64(5);
        let b = src.next_batch(10, &mut rng); // 2.5 epochs
        assert_eq!(b.len(), 10);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        let ds = dataset(4);
        let mut src = DatasetSource::new(ds, SamplingMode::WithReplacement);
        src.next_batch(0, &mut Prng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        use dpbyz_tensor::Matrix;
        let empty = Arc::new(Dataset::new(Matrix::zeros(0, 2), vec![]).unwrap());
        let _ = DatasetSource::new(empty, SamplingMode::WithReplacement);
    }
}
