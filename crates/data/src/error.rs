//! Error type for dataset operations.

use std::fmt;

/// Errors produced while constructing, parsing, or splitting datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Features and labels have different lengths.
    LengthMismatch {
        /// Number of feature rows.
        features: usize,
        /// Number of labels.
        labels: usize,
    },
    /// The dataset is empty where a non-empty one is required.
    Empty,
    /// A split fraction was outside `(0, 1)`.
    InvalidFraction(f64),
    /// A LIBSVM line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error (file reading), carried as a string to keep the error
    /// type `Clone`/`PartialEq`.
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::LengthMismatch { features, labels } => write!(
                f,
                "features/labels length mismatch: {features} rows vs {labels} labels"
            ),
            DataError::Empty => write!(f, "dataset is empty"),
            DataError::InvalidFraction(x) => {
                write!(f, "split fraction must be in (0, 1), got {x}")
            }
            DataError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            DataError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::Empty.to_string().contains("empty"));
        assert!(DataError::InvalidFraction(1.5).to_string().contains("1.5"));
        assert!(DataError::LengthMismatch {
            features: 3,
            labels: 4
        }
        .to_string()
        .contains("3 rows vs 4"));
        assert!(DataError::Parse {
            line: 7,
            message: "bad".into()
        }
        .to_string()
        .contains("line 7"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
        assert!(e.to_string().contains("nope"));
    }
}
