//! LIBSVM sparse text format support.
//!
//! The paper's experiments use the LIBSVM `phishing` dataset. This module
//! parses (and writes) the format so the real file can be used verbatim:
//!
//! ```text
//! <label> <index>:<value> <index>:<value> ...
//! ```
//!
//! Indices are 1-based and strictly increasing within a line; omitted
//! indices are zero. Labels of `+1`/`-1` or `1`/`0` are normalized to
//! `1.0`/`0.0`.
//!
//! # Example
//!
//! ```
//! use dpbyz_data::libsvm;
//!
//! let text = "+1 1:0.5 3:1\n-1 2:0.25\n";
//! let ds = libsvm::parse(text, None).unwrap();
//! assert_eq!(ds.len(), 2);
//! assert_eq!(ds.num_features(), 3);
//! assert_eq!(ds.features().row(0), &[0.5, 0.0, 1.0]);
//! assert_eq!(ds.labels(), &[1.0, 0.0]);
//! ```

use crate::{DataError, Dataset};
use dpbyz_tensor::Matrix;
use std::fmt::Write as _;
use std::path::Path;

/// Parses LIBSVM text into a [`Dataset`].
///
/// `num_features` forces the feature dimension (useful when the tail
/// features of a file are all zero); pass `None` to infer the maximum index.
///
/// # Errors
///
/// Returns [`DataError::Parse`] (with a 1-based line number) on malformed
/// input, non-increasing indices, or an index exceeding a forced
/// `num_features`; [`DataError::Empty`] if no examples are present.
pub fn parse(text: &str, num_features: Option<usize>) -> Result<Dataset, DataError> {
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    let mut max_index = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label_tok = parts.next().ok_or_else(|| DataError::Parse {
            line: lineno + 1,
            message: "missing label token".into(),
        })?;
        let label = parse_label(label_tok).ok_or_else(|| DataError::Parse {
            line: lineno + 1,
            message: format!("invalid label {label_tok:?}"),
        })?;

        let mut row: Vec<(usize, f64)> = Vec::new();
        let mut prev_index = 0usize;
        for tok in parts {
            let (idx_str, val_str) = tok.split_once(':').ok_or_else(|| DataError::Parse {
                line: lineno + 1,
                message: format!("expected index:value, got {tok:?}"),
            })?;
            let index: usize = idx_str.parse().map_err(|_| DataError::Parse {
                line: lineno + 1,
                message: format!("invalid feature index {idx_str:?}"),
            })?;
            if index == 0 {
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: "feature indices are 1-based".into(),
                });
            }
            if index <= prev_index {
                return Err(DataError::Parse {
                    line: lineno + 1,
                    message: format!(
                        "indices must be strictly increasing (saw {index} after {prev_index})"
                    ),
                });
            }
            let value: f64 = val_str.parse().map_err(|_| DataError::Parse {
                line: lineno + 1,
                message: format!("invalid feature value {val_str:?}"),
            })?;
            prev_index = index;
            max_index = max_index.max(index);
            row.push((index, value));
        }
        rows.push(row);
        labels.push(label);
    }

    if rows.is_empty() {
        return Err(DataError::Empty);
    }

    let dim = match num_features {
        Some(d) => {
            if max_index > d {
                return Err(DataError::Parse {
                    line: 0,
                    message: format!("feature index {max_index} exceeds forced dimension {d}"),
                });
            }
            d
        }
        None => max_index,
    };

    let mut features = Matrix::zeros(rows.len(), dim);
    for (i, row) in rows.iter().enumerate() {
        for &(index, value) in row {
            features.set(i, index - 1, value);
        }
    }
    Dataset::new(features, labels)
}

/// Reads and parses a LIBSVM file from disk.
///
/// # Errors
///
/// Propagates I/O errors as [`DataError::Io`] and parse errors as in
/// [`parse`].
pub fn parse_file(
    path: impl AsRef<Path>,
    num_features: Option<usize>,
) -> Result<Dataset, DataError> {
    let text = std::fs::read_to_string(path)?;
    parse(&text, num_features)
}

/// Serializes a dataset to LIBSVM text (zeros omitted, labels written as
/// `+1`/`-1`).
pub fn serialize(dataset: &Dataset) -> String {
    let mut out = String::new();
    for i in 0..dataset.len() {
        let (row, label) = dataset.example(i);
        out.push_str(if label == 1.0 { "+1" } else { "-1" });
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                // Writing to a String cannot fail.
                let _ = write!(out, " {}:{}", j + 1, v);
            }
        }
        out.push('\n');
    }
    out
}

fn parse_label(tok: &str) -> Option<f64> {
    match tok {
        "+1" | "1" | "1.0" => Some(1.0),
        "-1" | "0" | "-1.0" | "0.0" => Some(0.0),
        _ => tok
            .parse::<f64>()
            .ok()
            .map(|x| if x > 0.0 { 1.0 } else { 0.0 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_basic_file() {
        let ds = parse("+1 1:1 2:0.5\n-1 3:2\n", None).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.num_features(), 3);
        assert_eq!(ds.features().row(0), &[1.0, 0.5, 0.0]);
        assert_eq!(ds.features().row(1), &[0.0, 0.0, 2.0]);
        assert_eq!(ds.labels(), &[1.0, 0.0]);
    }

    #[test]
    fn skips_blank_lines_and_comments() {
        let ds = parse("\n# header comment\n+1 1:1 # trailing\n\n-1 1:2\n", None).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn label_variants() {
        let ds = parse("1 1:1\n0 1:1\n+1 1:1\n-1 1:1\n2.0 1:1\n", None).unwrap();
        assert_eq!(ds.labels(), &[1.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn forced_dimension() {
        let ds = parse("+1 1:1\n", Some(68)).unwrap();
        assert_eq!(ds.num_features(), 68);
        assert!(parse("+1 70:1\n", Some(68)).is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(parse("", None), Err(DataError::Empty)));
        assert!(parse("+1 junk\n", None).is_err());
        assert!(parse("+1 0:1\n", None).is_err());
        assert!(parse("+1 2:1 1:1\n", None).is_err()); // non-increasing
        assert!(parse("+1 1:abc\n", None).is_err());
        assert!(parse("?? 1:1\n", None).is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse("+1 1:1\n-1 bad\n", None).unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn roundtrip_dense() {
        let ds = parse("+1 1:0.25 2:-1 3:4\n-1 2:0.5\n", None).unwrap();
        let text = serialize(&ds);
        let back = parse(&text, Some(ds.num_features())).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn parse_file_missing_is_io_error() {
        let err = parse_file("/nonexistent/definitely-missing.libsvm", None).unwrap_err();
        assert!(matches!(err, DataError::Io(_)));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            rows in proptest::collection::vec(
                proptest::collection::vec(-10.0..10.0f64, 4),
                1..20,
            ),
            labels in proptest::collection::vec(proptest::bool::ANY, 20),
        ) {
            // Quantize features so text round-trip is exact.
            let rows: Vec<Vec<f64>> = rows
                .iter()
                .map(|r| r.iter().map(|x| (x * 4.0).round() / 4.0).collect())
                .collect();
            let n = rows.len();
            let m = Matrix::from_rows(&rows).unwrap();
            let labels: Vec<f64> = labels.iter().take(n).map(|&b| if b { 1.0 } else { 0.0 }).collect();
            let ds = Dataset::new(m, labels).unwrap();
            let back = parse(&serialize(&ds), Some(4)).unwrap();
            prop_assert_eq!(back, ds);
        }
    }
}
