//! In-memory labelled datasets and batch views.

use crate::DataError;
use dpbyz_tensor::{Matrix, Prng, Vector};
use serde::{Deserialize, Serialize};

/// A labelled dataset: one feature row per example plus a scalar label.
///
/// Labels are `f64`; binary classification uses `0.0`/`1.0` (the convention
/// of the logistic model in `dpbyz-models`).
///
/// # Example
///
/// ```
/// use dpbyz_data::Dataset;
/// use dpbyz_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
/// let ds = Dataset::new(x, vec![0.0, 1.0]).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.num_features(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset from a feature matrix and matching labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::LengthMismatch`] if `features.rows() !=
    /// labels.len()`.
    pub fn new(features: Matrix, labels: Vec<f64>) -> Result<Self, DataError> {
        if features.rows() != labels.len() {
            return Err(DataError::LengthMismatch {
                features: features.rows(),
                labels: labels.len(),
            });
        }
        Ok(Dataset { features, labels })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per example.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The label vector.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// The `i`-th example as `(features, label)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn example(&self, i: usize) -> (&[f64], f64) {
        (self.features.row(i), self.labels[i])
    }

    /// Fraction of examples with label `1.0` (class balance diagnostic).
    pub fn positive_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&y| y == 1.0).count() as f64 / self.len() as f64
    }

    /// Materializes the batch selected by `indices` (duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> Batch {
        Batch {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Writes the batch at `indices` into `out`, reusing `out`'s buffers —
    /// the zero-copy counterpart of [`Dataset::batch`] used by the
    /// batch-recycling samplers.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn batch_into(&self, indices: &[usize], out: &mut Batch) {
        self.features.select_rows_into(indices, &mut out.features);
        out.labels.clear();
        out.labels.extend(indices.iter().map(|&i| self.labels[i]));
    }

    /// The whole dataset as one batch.
    pub fn full_batch(&self) -> Batch {
        Batch {
            features: self.features.clone(),
            labels: self.labels.clone(),
        }
    }

    /// Splits into `(train, test)` with `train_fraction` of the examples in
    /// the train set, after a seeded shuffle.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidFraction`] unless `0 < train_fraction <
    /// 1`, and [`DataError::Empty`] if either side would be empty.
    pub fn split(
        &self,
        train_fraction: f64,
        rng: &mut Prng,
    ) -> Result<(Dataset, Dataset), DataError> {
        if !(0.0 < train_fraction && train_fraction < 1.0) {
            return Err(DataError::InvalidFraction(train_fraction));
        }
        let n = self.len();
        let n_train = (n as f64 * train_fraction).round() as usize;
        if n_train == 0 || n_train == n {
            return Err(DataError::Empty);
        }
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        let train_idx = &idx[..n_train];
        let test_idx = &idx[n_train..];
        Ok((self.subset(train_idx), self.subset(test_idx)))
    }

    /// Deterministic split at an exact example count (no shuffle) — used to
    /// mirror the paper's fixed 8 400 / 2 655 partition of `phishing`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] if `n_train` is 0 or ≥ `len()`.
    pub fn split_at(&self, n_train: usize) -> Result<(Dataset, Dataset), DataError> {
        if n_train == 0 || n_train >= self.len() {
            return Err(DataError::Empty);
        }
        let train: Vec<usize> = (0..n_train).collect();
        let test: Vec<usize> = (n_train..self.len()).collect();
        Ok((self.subset(&train), self.subset(&test)))
    }

    /// The sub-dataset selected by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Returns a copy with every feature column min-max scaled to `[0, 1]`.
    /// Constant columns become all-zero.
    pub fn min_max_scaled(&self) -> Dataset {
        let rows = self.features.rows();
        let cols = self.features.cols();
        let mut lo = vec![f64::INFINITY; cols];
        let mut hi = vec![f64::NEG_INFINITY; cols];
        for i in 0..rows {
            for (j, &x) in self.features.row(i).iter().enumerate() {
                lo[j] = lo[j].min(x);
                hi[j] = hi[j].max(x);
            }
        }
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let src = self.features.row(i);
            for j in 0..cols {
                let range = hi[j] - lo[j];
                let v = if range > 0.0 {
                    (src[j] - lo[j]) / range
                } else {
                    0.0
                };
                out.set(i, j, v);
            }
        }
        Dataset {
            features: out,
            labels: self.labels.clone(),
        }
    }
}

/// A materialized mini-batch: the unit a worker computes one stochastic
/// gradient on.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    features: Matrix,
    labels: Vec<f64>,
}

impl Batch {
    /// Creates a batch directly (used by tests and generators).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::LengthMismatch`] on inconsistent lengths.
    pub fn new(features: Matrix, labels: Vec<f64>) -> Result<Self, DataError> {
        if features.rows() != labels.len() {
            return Err(DataError::LengthMismatch {
                features: features.rows(),
                labels: labels.len(),
            });
        }
        Ok(Batch { features, labels })
    }

    /// An empty batch — the starting buffer for
    /// [`BatchSource::next_batch_into`](crate::sampler::BatchSource::next_batch_into)
    /// recycling loops.
    pub fn empty() -> Self {
        Batch {
            features: Matrix::zeros(0, 0),
            labels: Vec::new(),
        }
    }

    /// Mutable access to the feature matrix and label buffer, for in-crate
    /// batch-refilling generators.
    pub(crate) fn parts_mut(&mut self) -> (&mut Matrix, &mut Vec<f64>) {
        (&mut self.features, &mut self.labels)
    }

    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Features of the batch.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Labels of the batch.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// The `i`-th example as `(features, label)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn example(&self, i: usize) -> (&[f64], f64) {
        (self.features.row(i), self.labels[i])
    }

    /// The `i`-th feature row as a `Vector`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn feature_vector(&self, i: usize) -> Vector {
        Vector::from(self.features.row(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let x = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
        ])
        .unwrap();
        Dataset::new(x, vec![1.0, 0.0, 1.0, 0.0]).unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let x = Matrix::zeros(3, 2);
        assert!(Dataset::new(x.clone(), vec![0.0; 3]).is_ok());
        assert!(matches!(
            Dataset::new(x, vec![0.0; 2]),
            Err(DataError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn accessors() {
        let ds = tiny();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.example(2), (&[1.0, 1.0][..], 1.0));
        assert_eq!(ds.positive_fraction(), 0.5);
    }

    #[test]
    fn batch_selection_with_duplicates() {
        let ds = tiny();
        let b = ds.batch(&[0, 0, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.labels(), &[1.0, 1.0, 0.0]);
        assert_eq!(b.example(2), (&[0.0, 0.0][..], 0.0));
        assert_eq!(b.feature_vector(0).as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn full_batch_covers_everything() {
        let ds = tiny();
        let b = ds.full_batch();
        assert_eq!(b.len(), ds.len());
        assert_eq!(b.labels(), ds.labels());
    }

    #[test]
    fn split_partitions_without_loss() {
        let ds = tiny();
        let mut rng = Prng::seed_from_u64(1);
        let (train, test) = ds.split(0.5, &mut rng).unwrap();
        assert_eq!(train.len(), 2);
        assert_eq!(test.len(), 2);
        // Same multiset of labels overall.
        let mut all: Vec<f64> = train
            .labels()
            .iter()
            .chain(test.labels())
            .cloned()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let ds = tiny();
        let mut rng = Prng::seed_from_u64(1);
        assert!(matches!(
            ds.split(0.0, &mut rng),
            Err(DataError::InvalidFraction(_))
        ));
        assert!(matches!(
            ds.split(1.0, &mut rng),
            Err(DataError::InvalidFraction(_))
        ));
    }

    #[test]
    fn split_is_seeded() {
        let ds = tiny();
        let (a, _) = ds.split(0.5, &mut Prng::seed_from_u64(9)).unwrap();
        let (b, _) = ds.split(0.5, &mut Prng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn split_at_exact_counts() {
        let ds = tiny();
        let (train, test) = ds.split_at(3).unwrap();
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert!(ds.split_at(0).is_err());
        assert!(ds.split_at(4).is_err());
    }

    #[test]
    fn min_max_scaling() {
        let x = Matrix::from_rows(&[vec![0.0, 5.0], vec![10.0, 5.0]]).unwrap();
        let ds = Dataset::new(x, vec![0.0, 1.0]).unwrap();
        let s = ds.min_max_scaled();
        assert_eq!(s.features().row(0), &[0.0, 0.0]);
        assert_eq!(s.features().row(1), &[1.0, 0.0]);
    }

    #[test]
    fn batch_new_validates() {
        assert!(Batch::new(Matrix::zeros(2, 2), vec![0.0]).is_err());
        let b = Batch::new(Matrix::zeros(0, 2), vec![]).unwrap();
        assert!(b.is_empty());
    }
}
