//! Dataset substrate for `dp-byz-sgd`.
//!
//! The paper's experiments train a logistic-regression model on the LIBSVM
//! `phishing` dataset (11 055 points, 68 features). This crate provides:
//!
//! * [`Dataset`] — an in-memory feature table + label vector with train/test
//!   splitting and feature scaling;
//! * [`libsvm`] — a parser/serializer for the LIBSVM sparse text format, so
//!   the *real* `phishing` file can be dropped in unchanged;
//! * [`synthetic`] — seeded generators, notably [`synthetic::phishing_like`]
//!   (the documented substitute for the real dataset — same dimensionality,
//!   scale, class balance, and achievable accuracy) and
//!   [`synthetic::MeanEstimation`] (the `D = N(x̄, σ²/d · I_d)` distribution
//!   used in Theorem 1's lower-bound construction);
//! * [`sampler`] — seeded with/without-replacement batch samplers giving
//!   each simulated worker an independent i.i.d. stream, as the paper's
//!   model requires.
//!
//! # Example
//!
//! ```
//! use dpbyz_data::synthetic;
//! use dpbyz_tensor::Prng;
//!
//! let mut rng = Prng::seed_from_u64(1);
//! let ds = synthetic::phishing_like(&mut rng, 200);
//! let (train, test) = ds.split(0.75, &mut rng).unwrap();
//! assert_eq!(train.len() + test.len(), 200);
//! assert_eq!(train.num_features(), 68);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod dataset;
mod error;
pub mod libsvm;
pub mod sampler;
pub mod synthetic;

pub use dataset::{Batch, Dataset};
pub use error::DataError;
