//! Reusable scratch state for allocation-free aggregation
//! ([`Gar::aggregate_into`](crate::Gar::aggregate_into)).
//!
//! One [`GarScratch`] lives in the server's round buffers and is handed to
//! the GAR every step. After the first round its internal buffers are
//! warmed to the topology's sizes and aggregation performs no further heap
//! allocation. The centrepiece is a flat symmetric squared-distance matrix
//! shared by the Krum family (Krum, Multi-Krum, Bulyan) and MDA — the
//! O(n²·d) part of their cost is computed once per call into reused
//! storage instead of a fresh `Vec<Vec<f64>>` per round.

use crate::compute::{self, ComputePool, ShardOp};
use dpbyz_tensor::{kernels, Vector};

/// Dimension at which the distance-matrix fill switches to the cache-tiled
/// kernel ([`kernels::pairwise_squared_distances_tiled`]). The tiled fill
/// is bit-identical to the untiled one at every dimension, so this is a
/// pure performance knob: below it the whole cohort fits in cache and
/// tiling only adds pass overhead; above it the rows stream through cache
/// once per tile instead of once per pair.
const TILED_MIN_DIM: usize = 8192;

/// Scratch buffers for [`Gar::aggregate_into`](crate::Gar::aggregate_into).
///
/// Built-in rules use the private buffers below. Out-of-tree GARs that
/// override `aggregate_into` can either keep their own state or borrow the
/// dedicated extension buffers ([`GarScratch::scalars`],
/// [`GarScratch::indices`], [`GarScratch::vector`]), which the built-ins
/// never touch.
#[derive(Debug, Default)]
pub struct GarScratch {
    /// Flat `m × m` symmetric squared-distance matrix over the current
    /// member set (`m = active.len()` for subset-iterating rules).
    pub(crate) dist2: Vec<f64>,
    /// Krum scores aligned with `active`.
    pub(crate) scores: Vec<f64>,
    /// Per-pair lane accumulators for the cache-tiled distance fill.
    pub(crate) pair_acc: Vec<[f64; kernels::LANES]>,
    /// Intra-round parallel executor for the sharded per-item work
    /// (coordinate statistics, Krum scoring). Size 1 — the default — is
    /// the serial path and never spawns a thread.
    pub(crate) pool: ComputePool,
    /// Indices of the gradients currently in play (the full set for Krum,
    /// the shrinking pool for Bulyan's iterated selection).
    pub(crate) active: Vec<usize>,
    /// Indices selected so far (Bulyan stage 1), in selection order.
    pub(crate) selected: Vec<usize>,
    /// Index-ordering buffer (Multi-Krum ranking, MDA greedy anchors).
    pub(crate) order: Vec<usize>,
    /// Combination buffer for MDA's exact subset enumeration.
    pub(crate) combo: Vec<usize>,
    /// One coordinate column across the member gradients.
    pub(crate) col: Vec<f64>,
    /// Sorting scratch for the scalar statistics (median, trimmed mean,
    /// mean-around).
    pub(crate) sort_buf: Vec<f64>,
    /// General vector scratch (candidate subset means, Weiszfeld iterate,
    /// centered clipping's accumulated update).
    pub(crate) vec_a: Vector,
    /// Per-bucket means for the bucketing meta-rule (only the first
    /// `⌈n/s⌉` entries are live in any call).
    pub(crate) buckets: Vec<Vector>,
    /// Nested scratch handed to a meta-rule's inner GAR (boxed so the
    /// recursive type has a fixed size; allocated once, reused forever).
    pub(crate) nested: Option<Box<GarScratch>>,
    /// Per-submission staleness ages (rounds late) consumed by the
    /// `staleness-damped` meta-rule — set by the caller via
    /// [`GarScratch::set_submission_ages`] before the aggregate call.
    /// Empty (the default) means "every submission is fresh".
    pub(crate) ages: Vec<u32>,
    /// Damped copies of the submissions for the `staleness-damped`
    /// meta-rule (reused across rounds like `buckets`).
    pub(crate) weighted: Vec<Vector>,
    /// Extension buffers reserved for out-of-tree implementations.
    ext_scalars: Vec<f64>,
    ext_indices: Vec<usize>,
    ext_vector: Vector,
}

impl GarScratch {
    /// An empty scratch; buffers grow to the topology's sizes on first use
    /// and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cleared general-purpose `f64` buffer for out-of-tree
    /// `aggregate_into` implementations. The built-in rules never touch it.
    pub fn scalars(&mut self) -> &mut Vec<f64> {
        self.ext_scalars.clear();
        &mut self.ext_scalars
    }

    /// A cleared general-purpose index buffer for out-of-tree
    /// implementations. The built-in rules never touch it.
    pub fn indices(&mut self) -> &mut Vec<usize> {
        self.ext_indices.clear();
        &mut self.ext_indices
    }

    /// A general-purpose vector buffer for out-of-tree implementations
    /// (contents unspecified; overwrite before reading). The built-in
    /// rules never touch it.
    pub fn vector(&mut self) -> &mut Vector {
        &mut self.ext_vector
    }

    /// Records the per-submission staleness ages the `staleness-damped`
    /// meta-rule folds into its next aggregate call: `ages[i]` is how many
    /// rounds late submission `i` arrived (`0` = fresh). The ages persist
    /// until the next `set_submission_ages` call — callers admitting late
    /// gradients set them every round. An empty slice (the default state)
    /// means every submission is fresh, in which case the meta-rule
    /// delegates to its inner rule untouched.
    pub fn set_submission_ages(&mut self, ages: &[u32]) {
        self.ages.clear();
        self.ages.extend_from_slice(ages);
    }

    /// The currently recorded per-submission staleness ages (empty =
    /// all fresh). See [`GarScratch::set_submission_ages`].
    pub fn submission_ages(&self) -> &[u32] {
        &self.ages
    }

    /// Sets the intra-round aggregation parallelism used by the sharded
    /// GAR paths (coordinate statistics, Krum scoring). Clamped to ≥ 1;
    /// size 1 — the default — is the serial path and never spawns a
    /// thread. The parallel result is bit-identical to serial at any
    /// size, so this is a pure throughput knob.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.pool.set_size(threads);
    }

    /// Fills `active` with the identity member set `0..n`.
    pub(crate) fn set_active_full(&mut self, n: usize) {
        self.active.clear();
        self.active.extend(0..n);
    }

    /// Fills the flat symmetric squared-distance matrix over the gradients
    /// listed in `active` — one batched all-pairs call into the tensor
    /// layer's blocked distance kernel, reusing the flat storage across
    /// rounds. Large dimensions take the cache-tiled fill
    /// ([`kernels::pairwise_squared_distances_tiled`]), which is
    /// bit-identical to the untiled kernel
    /// ([`kernels::pairwise_squared_distances`]) but streams the rows
    /// through cache once per coordinate tile instead of once per pair.
    pub(crate) fn fill_dist2_active(&mut self, gradients: &[Vector]) {
        let dim = gradients.first().map_or(0, Vector::dim);
        if dim >= TILED_MIN_DIM {
            kernels::pairwise_squared_distances_tiled(
                gradients,
                &self.active,
                &mut self.dist2,
                &mut self.pair_acc,
            );
        } else {
            kernels::pairwise_squared_distances(gradients, &self.active, &mut self.dist2);
        }
    }

    /// Computes the Krum score of every member in `active` (sum of squared
    /// distances to its `m − f − 2` nearest co-members), leaving the
    /// scores in `self.scores` aligned with `active`. Per-candidate scores
    /// are independent, so they shard over the compute pool; serial or
    /// parallel, every candidate's neighbour distances are packed in the
    /// same order and reduced by the same sorted-prefix sum —
    /// bit-identical to the historical implementation at any pool size.
    pub(crate) fn compute_krum_scores(&mut self, gradients: &[Vector], f: usize) {
        self.fill_dist2_active(gradients);
        let m = self.active.len();
        let k = m - f - 2;
        self.scores.clear();
        self.scores.resize(m, 0.0);
        let GarScratch {
            ref dist2,
            ref mut scores,
            ref mut pool,
            ref mut col,
            ref mut sort_buf,
            ..
        } = *self;
        compute::run_sharded(
            pool,
            col,
            sort_buf,
            ShardOp::KrumScores { k },
            m,
            m - 1,
            &|range, values| {
                values.clear();
                for a in range {
                    for b in 0..m {
                        if b != a {
                            values.push(dist2[a * m + b]);
                        }
                    }
                }
            },
            scores,
        );
    }

    /// Krum scores for a *shrinking* pool over a pre-filled matrix: the
    /// distance matrix was filled once over all `n` original indices
    /// (`active` = identity at fill time, stride `n`), and members are
    /// looked up by their original index. Pairwise distances never change
    /// as a pool shrinks, so Bulyan's θ selection iterations share one
    /// O(n²·d) fill instead of recomputing it every round. Sharded over
    /// the compute pool like [`GarScratch::compute_krum_scores`], and
    /// bitwise the same scores as re-filling per round: the same distance
    /// values feed the same sorted prefix sums.
    pub(crate) fn compute_krum_scores_prefilled(&mut self, n: usize, f: usize) {
        let m = self.active.len();
        let k = m - f - 2;
        self.scores.clear();
        self.scores.resize(m, 0.0);
        let GarScratch {
            ref dist2,
            ref active,
            ref mut scores,
            ref mut pool,
            ref mut col,
            ref mut sort_buf,
            ..
        } = *self;
        compute::run_sharded(
            pool,
            col,
            sort_buf,
            ShardOp::KrumScores { k },
            m,
            m - 1,
            &|range, values| {
                values.clear();
                for pos_a in range {
                    let row = active[pos_a] * n;
                    for (pos_b, &member_b) in active.iter().enumerate() {
                        if pos_b != pos_a {
                            values.push(dist2[row + member_b]);
                        }
                    }
                }
            },
            scores,
        );
    }
}

/// Writes the mean of `gradients[indices]` into `out` without cloning any
/// member — bit-identical to collecting the subset and calling
/// [`Vector::mean`] (same accumulation order, same scaling).
pub(crate) fn mean_indexed_into(gradients: &[Vector], indices: &[usize], out: &mut Vector) {
    let dim = gradients[indices[0]].dim();
    out.resize(dim, 0.0);
    out.fill(0.0);
    for &i in indices {
        out.axpy(1.0, &gradients[i]);
    }
    out.scale(1.0 / indices.len() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::Prng;

    #[test]
    fn extension_buffers_are_cleared_and_reusable() {
        let mut s = GarScratch::new();
        s.scalars().extend_from_slice(&[1.0, 2.0]);
        assert!(s.scalars().is_empty());
        s.indices().push(7);
        assert!(s.indices().is_empty());
        s.vector().resize(3, 1.0);
        assert_eq!(s.vector().dim(), 3);
    }

    #[test]
    fn mean_indexed_matches_subset_mean_bitwise() {
        let mut rng = Prng::seed_from_u64(3);
        let grads: Vec<Vector> = (0..8).map(|_| rng.normal_vector(5, 1.0)).collect();
        let indices = [6usize, 1, 3];
        let subset: Vec<Vector> = indices.iter().map(|&i| grads[i].clone()).collect();
        let expected = Vector::mean(&subset).unwrap();
        let mut out = Vector::from(vec![1.0; 2]); // dirty, wrong dim
        mean_indexed_into(&grads, &indices, &mut out);
        for (a, b) in expected.iter().zip(out.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn krum_scores_over_active_subset() {
        // Cluster at 0 plus an outlier: the outlier's score dominates.
        let mut grads: Vec<Vector> = (0..6)
            .map(|i| Vector::from(vec![i as f64 * 0.01]))
            .collect();
        grads.push(Vector::from(vec![100.0]));
        let mut s = GarScratch::new();
        s.set_active_full(grads.len());
        s.compute_krum_scores(&grads, 2);
        let outlier = *s.scores.last().unwrap();
        assert!(s.scores[..6].iter().all(|&x| x < outlier));
    }
}
