//! Centered clipping (Karimireddy, He, Jaggi — ICML 2021).
//!
//! Instead of *selecting* gradients (Krum, MDA) or taking order statistics
//! (median, trimmed mean), centered clipping *shrinks* every submission
//! toward a robust center: starting from a reference point `v`, each
//! iteration moves `v` by the average of the clipped residuals
//!
//! ```text
//! v ← v + (1/n) · Σ_i (g_i − v) · min(1, τ / ‖g_i − v‖)
//! ```
//!
//! A Byzantine gradient can pull the center by at most `τ/n` per
//! iteration no matter how far away it sits, while honest gradients
//! within radius `τ` of the center contribute their full residual — the
//! rule degrades gracefully instead of discarding information.

use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::{stats, Vector};

/// Centered clipping aggregation.
///
/// The iteration starts from the coordinate-wise median of the
/// submissions (this implementation is a stateless pure function of one
/// round's gradients, so the median replaces the previous round's
/// aggregate that the original momentum-coupled formulation carries
/// across steps) and runs a fixed number of clipped-residual updates.
///
/// Tolerates any minority of Byzantine workers (`2f < n`) in the
/// breakdown sense. The paper's VN framework publishes no `κ_F` for it —
/// its guarantee lives in the `(δ_max, c)`-robustness framework of
/// Karimireddy et al. — so [`Gar::kappa`] returns `None`, like
/// [`GeometricMedian`](crate::GeometricMedian).
///
/// # Example
///
/// ```
/// use dpbyz_gars::{CenteredClipping, Gar};
/// use dpbyz_tensor::Vector;
///
/// let grads = vec![
///     Vector::from(vec![0.0, 0.1]),
///     Vector::from(vec![0.1, 0.0]),
///     Vector::from(vec![-0.1, -0.1]),
///     Vector::from(vec![1e6, 1e6]), // Byzantine
/// ];
/// let out = CenteredClipping::new(0.5, 3).aggregate(&grads, 1).unwrap();
/// // The outlier's pull is capped at τ/n per iteration.
/// assert!(out.l2_norm() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CenteredClipping {
    /// Clipping radius τ around the current center.
    pub tau: f64,
    /// Number of clipped-residual iterations.
    pub iters: usize,
}

impl CenteredClipping {
    /// Creates the rule with clipping radius `tau` and `iters` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not strictly positive.
    pub fn new(tau: f64, iters: usize) -> Self {
        assert!(tau > 0.0, "centered clipping needs a positive radius");
        CenteredClipping { tau, iters }
    }
}

impl Default for CenteredClipping {
    /// τ = 1, 3 iterations — a neutral radius; sweeps tune `tau` to the
    /// workload's gradient scale (the paper protocol clips at
    /// `G_max = 10⁻²`, so its cells use τ of that order).
    fn default() -> Self {
        CenteredClipping { tau: 1.0, iters: 3 }
    }
}

fn check_tolerance(n: usize, f: usize) -> Result<(), GarError> {
    if 2 * f >= n {
        return Err(GarError::TooManyByzantine {
            n,
            f,
            max: n.saturating_sub(1) / 2,
        });
    }
    Ok(())
}

impl Gar for CenteredClipping {
    fn name(&self) -> &'static str {
        "centered-clipping"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        let dim = check_input(gradients)?;
        let n = gradients.len();
        check_tolerance(n, f)?;

        // Robust start: the coordinate-wise median (same kernels as the
        // median rule, same scratch columns).
        out.resize(dim, 0.0);
        {
            let GarScratch {
                ref mut col,
                ref mut sort_buf,
                ..
            } = *scratch;
            col.clear();
            col.resize(n, 0.0);
            for j in 0..dim {
                for (i, g) in gradients.iter().enumerate() {
                    col[i] = g[j];
                }
                out[j] = stats::median_with(col, sort_buf).expect("n >= 1"); // lint:allow(panic-unwrap, reason = "check_input validated a non-empty cohort above")
            }
        }

        // Clipped-residual iterations, accumulating the average update in
        // one reused scratch vector.
        let acc = &mut scratch.vec_a;
        let n_f64 = n as f64;
        for _ in 0..self.iters {
            acc.resize(dim, 0.0);
            acc.fill(0.0);
            for g in gradients {
                let dist = g.l2_distance(out);
                let weight = if dist > self.tau {
                    self.tau / dist
                } else {
                    1.0
                };
                for j in 0..dim {
                    acc[j] += weight * (g[j] - out[j]);
                }
            }
            for j in 0..dim {
                out[j] += acc[j] / n_f64;
            }
        }
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, _n: usize, _f: usize) -> Option<f64> {
        // No published bound in the paper's VN framework.
        None
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::Prng;
    use proptest::prelude::*;

    #[test]
    fn unanimous_is_fixed_point() {
        let g = Vector::from(vec![0.4, -1.2]);
        let grads = vec![g.clone(); 7];
        let out = CenteredClipping::default().aggregate(&grads, 3).unwrap();
        assert!(out.approx_eq(&g, 1e-12));
    }

    #[test]
    fn outlier_pull_is_bounded_by_tau() {
        // f far outliers move the center at most f·τ·iters/n from the
        // honest cluster, regardless of their magnitude.
        let mut rng = Prng::seed_from_u64(1);
        let mut grads: Vec<Vector> = (0..8).map(|_| rng.normal_vector(4, 0.1)).collect();
        for _ in 0..3 {
            grads.push(Vector::filled(4, 1e9));
        }
        let rule = CenteredClipping::new(0.5, 3);
        let out = rule.aggregate(&grads, 3).unwrap();
        assert!(out.l2_norm() < 1.0, "hijacked: {}", out.l2_norm());
    }

    #[test]
    fn honest_case_approaches_mean() {
        // With a radius dwarfing every residual nothing is clipped, so one
        // iteration from the median lands near the mean.
        let grads = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![6.0]),
        ];
        let out = CenteredClipping::new(100.0, 8)
            .aggregate(&grads, 0)
            .unwrap();
        assert!((out[0] - 3.0).abs() < 1e-6, "got {}", out[0]);
    }

    #[test]
    fn tolerance_and_kappa() {
        let grads = vec![Vector::zeros(1); 10];
        assert!(CenteredClipping::default().aggregate(&grads, 5).is_err());
        assert!(CenteredClipping::default().aggregate(&grads, 4).is_ok());
        assert_eq!(CenteredClipping::default().max_byzantine(11), 5);
        assert!(CenteredClipping::default().kappa(11, 5).is_none());
    }

    #[test]
    #[should_panic(expected = "positive radius")]
    fn non_positive_radius_rejected() {
        let _ = CenteredClipping::new(0.0, 3);
    }

    #[test]
    fn zero_iterations_is_the_median() {
        let grads = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![5.0]),
            Vector::from(vec![100.0]),
        ];
        let out = CenteredClipping::new(1.0, 0).aggregate(&grads, 1).unwrap();
        assert_eq!(out[0], 5.0);
    }

    /// Naive reference: the textbook formulation, written independently of
    /// the scratch-based hot path (fresh allocations, `Vec<f64>` center).
    fn reference(gradients: &[Vector], tau: f64, iters: usize) -> Vec<f64> {
        let dim = gradients[0].dim();
        let n = gradients.len();
        let mut v: Vec<f64> = (0..dim)
            .map(|j| {
                let mut col: Vec<f64> = gradients.iter().map(|g| g[j]).collect();
                stats::median_with(&col.clone(), &mut col).unwrap()
            })
            .collect();
        for _ in 0..iters {
            let mut acc = vec![0.0; dim];
            for g in gradients {
                let dist = (0..dim)
                    .map(|j| (g[j] - v[j]) * (g[j] - v[j]))
                    .sum::<f64>()
                    .sqrt();
                let w = if dist > tau { tau / dist } else { 1.0 };
                for (j, a) in acc.iter_mut().enumerate() {
                    *a += w * (g[j] - v[j]);
                }
            }
            for (j, x) in v.iter_mut().enumerate() {
                *x += acc[j] / n as f64;
            }
        }
        v
    }

    proptest! {
        #[test]
        fn prop_hot_path_matches_reference(
            seed in 0u64..300,
            tau in 0.05f64..5.0,
            iters in 0usize..5,
        ) {
            let mut rng = Prng::seed_from_u64(seed);
            let grads: Vec<Vector> = (0..9).map(|_| rng.normal_vector(6, 1.0)).collect();
            let expected = reference(&grads, tau, iters);
            // Dirty, wrong-sized scratch and output: the server's reuse
            // pattern.
            let mut scratch = GarScratch::new();
            scratch.vec_a.resize(2, 7.0);
            let mut out = Vector::from(vec![3.0; 2]);
            CenteredClipping::new(tau, iters)
                .aggregate_into(&grads, 4, &mut scratch, &mut out)
                .unwrap();
            prop_assert_eq!(out.dim(), expected.len());
            // The reference computes residual norms with a sequential
            // scalar fold while the hot path uses the 4-lane blocked
            // distance kernel, so the comparison carries the kernel
            // layer's equivalence contract: ≤ 1e-12 relative error (the
            // clip weights are the only place the reordered reduction
            // enters; everything else is elementwise and exact).
            for (a, b) in out.iter().zip(&expected) {
                let scale = a.abs().max(b.abs()).max(1.0);
                prop_assert!((a - b).abs() / scale <= 1e-12, "{a} vs {b}");
            }
        }
    }
}
