//! Bucketing (Karimireddy, He, Jaggi — ICLR 2022): a meta-rule that
//! averages fixed-size buckets of submissions before handing the bucket
//! means to an inner aggregation rule.
//!
//! Averaging `s` gradients per bucket divides the heterogeneity
//! (inter-worker variance) of the inner rule's input by `s`, which is
//! what lets selection-style rules work on non-i.i.d. data — at the price
//! of a tighter Byzantine tolerance: the inner rule sees only `⌈n/s⌉`
//! inputs, of which up to `f` may be contaminated (one Byzantine poisons
//! its whole bucket).

use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;
use std::sync::Arc;

/// Bucketing meta-aggregation: bucket means fed to an inner GAR.
///
/// The original formulation shuffles submissions before bucketing; this
/// implementation buckets **contiguously in submission order** so the
/// rule stays a deterministic pure function of its input (the trait
/// contract — GARs carry no RNG). Submission order in the round engine is
/// honest workers first, then the `f` forged copies, so the Byzantine
/// block lands in the trailing `⌈f/s⌉ (+1)` buckets; the inner rule is
/// nevertheless invoked with the order-agnostic worst case `f' = min(f,
/// ⌈n/s⌉)` contaminated inputs.
///
/// # Example
///
/// ```
/// use dpbyz_gars::{Bucketing, CoordinateMedian, Gar};
/// use dpbyz_tensor::Vector;
/// use std::sync::Arc;
///
/// let rule = Bucketing::new(Arc::new(CoordinateMedian::new()), 2);
/// let grads: Vec<Vector> = (0..6).map(|i| Vector::from(vec![i as f64])).collect();
/// // Buckets (0,1), (2,3), (4,5) → means 0.5, 2.5, 4.5 → median 2.5.
/// let out = rule.aggregate(&grads, 1).unwrap();
/// assert_eq!(out[0], 2.5);
/// ```
#[derive(Clone)]
pub struct Bucketing {
    inner: Arc<dyn Gar>,
    s: usize,
}

impl Bucketing {
    /// Creates the meta-rule: buckets of `s` submissions averaged, bucket
    /// means aggregated by `inner`. `s = 1` is the identity wrapper (the
    /// inner rule sees the raw submissions).
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero.
    pub fn new(inner: Arc<dyn Gar>, s: usize) -> Self {
        assert!(s > 0, "bucket size must be at least 1");
        Bucketing { inner, s }
    }

    /// The inner aggregation rule.
    pub fn inner(&self) -> &Arc<dyn Gar> {
        &self.inner
    }

    /// The bucket size.
    pub fn bucket_size(&self) -> usize {
        self.s
    }

    /// Number of buckets for `n` submissions.
    fn n_buckets(&self, n: usize) -> usize {
        n.div_ceil(self.s)
    }
}

impl std::fmt::Debug for Bucketing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bucketing")
            .field("inner", &self.inner.name())
            .field("s", &self.s)
            .finish()
    }
}

impl Gar for Bucketing {
    fn name(&self) -> &'static str {
        "bucketing"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        check_input(gradients)?;
        let n = gradients.len();
        let b = self.n_buckets(n);
        // Every Byzantine submission contaminates at most its own bucket.
        let f_inner = f.min(b);

        // Bucket means into reused vectors (the tail of `buckets` beyond
        // `b` is dormant capacity from larger past topologies).
        if scratch.buckets.len() < b {
            scratch.buckets.resize_with(b, Vector::default);
        }
        for (i, bucket) in scratch.buckets.iter_mut().take(b).enumerate() {
            let chunk = &gradients[i * self.s..((i + 1) * self.s).min(n)];
            // lint:allow(panic-unwrap, reason = "chunks(s) with s >= 1 never yields an empty chunk")
            Vector::mean_into(chunk, bucket).expect("validated non-empty chunk");
        }

        // The nested scratch is taken out of `self`-scratch for the inner
        // call (the bucket slice keeps `scratch.buckets` borrowed) and put
        // back afterwards, so meta-aggregation stays allocation-free at
        // steady state too.
        let mut nested = scratch.nested.take().unwrap_or_default();
        let result = self
            .inner
            .aggregate_into(&scratch.buckets[..b], f_inner, &mut nested, out);
        scratch.nested = Some(nested);
        // The inner rule reports the *bucketed* topology; re-state an
        // over-tolerance error in the caller's terms (n submissions, the
        // composed rule's own maximum) so direct Gar-level callers aren't
        // told they submitted ⌈n/s⌉ gradients.
        result.map_err(|e| match e {
            GarError::TooManyByzantine { .. } => GarError::TooManyByzantine {
                n,
                f,
                max: self.max_byzantine(n),
            },
            other => other,
        })
        // lint:end(zero-copy)
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        // The composed rule inherits whatever bound the inner rule has at
        // the bucketed topology (⌈n/s⌉ inputs, f of them contaminated).
        self.inner.kappa(self.n_buckets(n), f)
    }

    fn max_byzantine(&self, n: usize) -> usize {
        self.inner.max_byzantine(self.n_buckets(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoordinateMedian, Krum};
    use dpbyz_tensor::Prng;
    use proptest::prelude::*;

    fn median_bucketing(s: usize) -> Bucketing {
        Bucketing::new(Arc::new(CoordinateMedian::new()), s)
    }

    #[test]
    fn bucket_size_one_is_the_inner_rule() {
        let mut rng = Prng::seed_from_u64(1);
        let grads: Vec<Vector> = (0..9).map(|_| rng.normal_vector(4, 1.0)).collect();
        let wrapped = median_bucketing(1).aggregate(&grads, 3).unwrap();
        let bare = CoordinateMedian::new().aggregate(&grads, 3).unwrap();
        for (a, b) in wrapped.iter().zip(bare.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn ragged_final_bucket_is_averaged_over_its_members() {
        // 5 submissions, s = 2: buckets (0,1), (2,3), (4).
        let grads: Vec<Vector> = (0..5).map(|i| Vector::from(vec![i as f64])).collect();
        let out = median_bucketing(2).aggregate(&grads, 1).unwrap();
        // Bucket means 0.5, 2.5, 4.0 → median 2.5.
        assert_eq!(out[0], 2.5);
    }

    #[test]
    fn variance_reduction_protects_selection_rules() {
        // A trailing Byzantine block at 1e6: after bucketing, the
        // contaminated bucket means are still enormous, and median-of-
        // buckets rejects them.
        let mut rng = Prng::seed_from_u64(2);
        let mut grads: Vec<Vector> = (0..8).map(|_| rng.normal_vector(3, 0.1)).collect();
        for _ in 0..2 {
            grads.push(Vector::filled(3, 1e6));
        }
        let out = median_bucketing(2).aggregate(&grads, 2).unwrap();
        assert!(out.l2_norm() < 5.0, "hijacked: {}", out.l2_norm());
    }

    #[test]
    fn tolerance_is_the_inner_rule_at_bucketed_topology() {
        // n = 11, s = 2 → 6 buckets; median tolerates (6−1)/2 = 2 there.
        assert_eq!(median_bucketing(2).max_byzantine(11), 2);
        // Krum needs ⌈n/s⌉ ≥ 2f + 3.
        let krum_b = Bucketing::new(Arc::new(Krum::new()), 2);
        assert_eq!(krum_b.max_byzantine(11), 1);
        // f beyond the bucketed tolerance is rejected at aggregation
        // time, with the error stated in the CALLER's topology (11
        // submissions, composed max 2) — not the inner rule's 6 buckets.
        let grads = vec![Vector::zeros(2); 11];
        match median_bucketing(2).aggregate(&grads, 3) {
            Err(GarError::TooManyByzantine { n, f, max }) => {
                assert_eq!((n, f, max), (11, 3, 2));
            }
            other => panic!("expected TooManyByzantine, got {other:?}"),
        }
        assert!(median_bucketing(2).aggregate(&grads, 2).is_ok());
    }

    #[test]
    fn kappa_delegates_to_inner_at_bucketed_topology() {
        let rule = median_bucketing(2);
        // median's κ at (6, 2) is 1/√(6−2) = 0.5.
        assert!((rule.kappa(11, 2).unwrap() - 0.5).abs() < 1e-12);
        assert!(rule.kappa(11, 3).is_none());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_bucket_size_rejected() {
        let _ = Bucketing::new(Arc::new(CoordinateMedian::new()), 0);
    }

    /// Naive reference: chunk, collect the allocating per-bucket means,
    /// call the inner rule's allocating `aggregate` — written without the
    /// scratch machinery.
    fn reference(
        gradients: &[Vector],
        s: usize,
        f: usize,
        inner: &dyn Gar,
    ) -> Result<Vector, GarError> {
        let means: Vec<Vector> = gradients
            .chunks(s)
            .map(|c| Vector::mean(c).unwrap())
            .collect();
        inner.aggregate(&means, f.min(means.len()))
    }

    proptest! {
        #[test]
        fn prop_hot_path_matches_reference_bitwise(
            seed in 0u64..300,
            s in 1usize..4,
            n in 7usize..12,
        ) {
            let mut rng = Prng::seed_from_u64(seed);
            let grads: Vec<Vector> = (0..n).map(|_| rng.normal_vector(5, 1.0)).collect();
            let inner = CoordinateMedian::new();
            let rule = Bucketing::new(Arc::new(inner), s);
            let f = rule.max_byzantine(n);
            let expected = reference(&grads, s, f, &inner).unwrap();
            // Dirty reused scratch with stale oversized bucket storage.
            let mut scratch = GarScratch::new();
            scratch.buckets.resize_with(16, || Vector::from(vec![9.0; 3]));
            let mut out = Vector::from(vec![4.0; 2]);
            rule.aggregate_into(&grads, f, &mut scratch, &mut out).unwrap();
            prop_assert_eq!(out.dim(), expected.dim());
            for (a, b) in out.iter().zip(expected.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
