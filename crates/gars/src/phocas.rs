//! Phocas (Xie et al., 2018) — trimmed mean around the trimmed mean.

use crate::compute::{self, ShardOp};
use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;

/// Per coordinate: compute the `f`-trimmed mean, then average the `n − f`
/// values closest to it.
///
/// Tolerates `2f < n`; VN bound `κ = √(4 + (n−2f)²/(12(f+1)(n−f)))`
/// (the constant appearing in the paper's Proposition 3 proof).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phocas;

impl Phocas {
    /// Creates the rule.
    pub fn new() -> Self {
        Phocas
    }
}

fn check_tolerance(n: usize, f: usize) -> Result<(), GarError> {
    if 2 * f >= n {
        return Err(GarError::TooManyByzantine {
            n,
            f,
            max: n.saturating_sub(1) / 2,
        });
    }
    Ok(())
}

impl Gar for Phocas {
    fn name(&self) -> &'static str {
        "phocas"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        let dim = check_input(gradients)?;
        let n = gradients.len();
        check_tolerance(n, f)?;
        let keep = n - f;
        out.resize(dim, 0.0);
        // Columns are independent, so the coordinate loop shards over the
        // scratch's compute pool — bit-identical to the serial loop at any
        // pool size.
        let GarScratch {
            ref mut pool,
            ref mut col,
            ref mut sort_buf,
            ..
        } = *scratch;
        compute::run_sharded(
            pool,
            col,
            sort_buf,
            ShardOp::MeanAroundTrimmedMean { trim: f, keep },
            dim,
            n,
            &|range, values| {
                values.clear();
                for j in range {
                    for g in gradients {
                        values.push(g[j]);
                    }
                }
            },
            out.as_mut_slice(),
        );
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        if f == 0 || check_tolerance(n, f).is_err() {
            return None;
        }
        let (nf, ff) = (n as f64, f as f64);
        Some((4.0 + (nf - 2.0 * ff).powi(2) / (12.0 * (ff + 1.0) * (nf - ff))).sqrt())
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignores_extreme_values() {
        // One Byzantine outlier among n = 4, f = 1: the trimmed mean is
        // mean{1, 2} = 1.5 and the n − f = 3 values closest to it are
        // {1, 2, 3}, so the outlier is excluded.
        let grads = vec![
            Vector::from(vec![-1e7]),
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![3.0]),
        ];
        let out = Phocas::new().aggregate(&grads, 1).unwrap();
        assert!((out[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn resists_half_minus_one_outliers() {
        let mut grads = vec![Vector::from(vec![1.0]); 6];
        for _ in 0..5 {
            grads.push(Vector::from(vec![9e9]));
        }
        let out = Phocas::new().aggregate(&grads, 5).unwrap();
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn kappa_formula() {
        // n = 11, f = 5: κ = √(4 + 1/(12·6·6)).
        let k = Phocas::new().kappa(11, 5).unwrap();
        assert!((k - (4.0 + 1.0 / 432.0_f64).sqrt()).abs() < 1e-12);
        assert!(Phocas::new().kappa(11, 0).is_none());
    }

    #[test]
    fn tolerance_boundary() {
        let grads = vec![Vector::zeros(1); 10];
        assert!(Phocas::new().aggregate(&grads, 4).is_ok());
        assert!(Phocas::new().aggregate(&grads, 5).is_err());
    }
}
