//! Meamed — mean around the median (Xie et al., 2018).

use crate::compute::{self, ShardOp};
use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;

/// Per coordinate: take the `n − f` values closest to the coordinate
/// median, average them.
///
/// Tolerates `2f ≤ n − 1`; VN bound `κ = 1/√(10(n−f))`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Meamed;

impl Meamed {
    /// Creates the rule.
    pub fn new() -> Self {
        Meamed
    }
}

fn check_tolerance(n: usize, f: usize) -> Result<(), GarError> {
    if 2 * f > n.saturating_sub(1) {
        return Err(GarError::TooManyByzantine {
            n,
            f,
            max: n.saturating_sub(1) / 2,
        });
    }
    Ok(())
}

impl Gar for Meamed {
    fn name(&self) -> &'static str {
        "meamed"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        let dim = check_input(gradients)?;
        let n = gradients.len();
        check_tolerance(n, f)?;
        let keep = n - f;
        out.resize(dim, 0.0);
        // Columns are independent, so the coordinate loop shards over the
        // scratch's compute pool — bit-identical to the serial loop at any
        // pool size.
        let GarScratch {
            ref mut pool,
            ref mut col,
            ref mut sort_buf,
            ..
        } = *scratch;
        compute::run_sharded(
            pool,
            col,
            sort_buf,
            ShardOp::MeanAroundMedian { keep },
            dim,
            n,
            &|range, values| {
                values.clear();
                for j in range {
                    for g in gradients {
                        values.push(g[j]);
                    }
                }
            },
            out.as_mut_slice(),
        );
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        if f == 0 || check_tolerance(n, f).is_err() {
            return None;
        }
        Some(1.0 / (10.0 * (n - f) as f64).sqrt())
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_values_near_median() {
        // Values: 0, 1, 2, 1000 with f = 1 ⇒ keep 3 nearest the median.
        let grads = vec![
            Vector::from(vec![0.0]),
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![1000.0]),
        ];
        let out = Meamed::new().aggregate(&grads, 1).unwrap();
        assert!((out[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resists_minority_outliers() {
        let mut grads = vec![Vector::from(vec![0.5]); 6];
        for _ in 0..5 {
            grads.push(Vector::from(vec![-1e8]));
        }
        let out = Meamed::new().aggregate(&grads, 5).unwrap();
        assert_eq!(out[0], 0.5);
    }

    #[test]
    fn kappa_formula_and_tolerance() {
        let k = Meamed::new().kappa(11, 5).unwrap();
        assert!((k - 1.0 / 60f64.sqrt()).abs() < 1e-12);
        assert!(Meamed::new().kappa(11, 6).is_none());
        assert_eq!(Meamed::new().max_byzantine(11), 5);
        let grads = vec![Vector::zeros(1); 11];
        assert!(Meamed::new().aggregate(&grads, 6).is_err());
    }
}
