//! Bulyan (El Mhamdi et al., ICML 2018) — Krum selection followed by a
//! per-coordinate trimmed aggregation.

use crate::compute::{self, ShardOp};
use crate::krum::{canonical_argmin_indexed, eta};
use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;

/// Bulyan over Krum.
///
/// Stage 1 iteratively runs Krum to select `θ = n − 2f` gradients (each
/// round picks the best-scoring gradient and removes it). Stage 2, per
/// coordinate, averages the `β = θ − 2f` values closest to the coordinate
/// median of the selected set.
///
/// Requires `n ≥ 4f + 3`; VN bound shared with Krum, `κ = 1/√(2η(n, f))`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bulyan;

impl Bulyan {
    /// Creates the rule.
    pub fn new() -> Self {
        Bulyan
    }
}

fn check_tolerance(n: usize, f: usize) -> Result<(), GarError> {
    if f > 0 && n < 4 * f + 3 {
        return Err(GarError::TooManyByzantine {
            n,
            f,
            max: n.saturating_sub(3) / 4,
        });
    }
    Ok(())
}

impl Gar for Bulyan {
    fn name(&self) -> &'static str {
        "bulyan"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        let dim = check_input(gradients)?;
        let n = gradients.len();
        check_tolerance(n, f)?;
        if f == 0 {
            return Vector::mean_into(gradients, out).map_err(|_| GarError::Empty);
        }

        // Stage 1: iterated Krum selection of θ = n − 2f gradients, by
        // *index* — the pool is a shrinking list of indices into
        // `gradients`, never a cloned vector set. Pairwise distances never
        // change as the pool shrinks, so the O(n²·d) matrix is filled once
        // and every selection round re-scores from it.
        let theta = n - 2 * f;
        scratch.set_active_full(n);
        scratch.fill_dist2_active(gradients);
        scratch.selected.clear();
        for _ in 0..theta {
            // Krum scoring needs a pool of ≥ f + 3 to have ≥1 neighbour;
            // n ≥ 4f + 3 guarantees it throughout the θ rounds.
            scratch.compute_krum_scores_prefilled(n, f);
            // Canonical tie-breaking keeps the selection independent of
            // submission order even at k = 1 neighbour, where mutual
            // nearest neighbours share a score by construction.
            let best = canonical_argmin_indexed(&scratch.scores, gradients, &scratch.active);
            let picked = scratch.active.swap_remove(best);
            scratch.selected.push(picked);
        }

        // Stage 2: per coordinate, mean of the β = θ − 2f values closest to
        // the median of the selected set. Columns are independent, so the
        // coordinate loop shards over the scratch's compute pool —
        // bit-identical to the serial loop at any pool size.
        let beta = theta - 2 * f;
        out.resize(dim, 0.0);
        let GarScratch {
            ref selected,
            ref mut pool,
            ref mut col,
            ref mut sort_buf,
            ..
        } = *scratch;
        compute::run_sharded(
            pool,
            col,
            sort_buf,
            ShardOp::MeanAroundMedian { keep: beta },
            dim,
            theta,
            &|range, values| {
                values.clear();
                for j in range {
                    for &g in selected {
                        values.push(gradients[g][j]);
                    }
                }
            },
            out.as_mut_slice(),
        );
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        if f == 0 || check_tolerance(n, f).is_err() {
            return None;
        }
        Some(1.0 / (2.0 * eta(n, f)).sqrt())
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(3) / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::Prng;

    #[test]
    fn resists_outliers_at_capacity() {
        // n = 11, f = 2 (max for Bulyan at n = 11).
        let mut rng = Prng::seed_from_u64(1);
        let mut grads: Vec<Vector> = (0..9).map(|_| rng.normal_vector(3, 0.1)).collect();
        grads.push(Vector::filled(3, 1e6));
        grads.push(Vector::filled(3, -1e6));
        let out = Bulyan::new().aggregate(&grads, 2).unwrap();
        assert!(out.l2_norm() < 2.0, "norm {}", out.l2_norm());
    }

    #[test]
    fn requires_4f_plus_3() {
        let grads = vec![Vector::zeros(1); 10];
        assert!(Bulyan::new().aggregate(&grads, 2).is_err()); // needs 11
        assert!(Bulyan::new().aggregate(&grads, 1).is_ok()); // needs 7
        assert_eq!(Bulyan::new().max_byzantine(11), 2);
        assert_eq!(Bulyan::new().max_byzantine(7), 1);
    }

    #[test]
    fn f_zero_is_plain_mean() {
        let grads = vec![Vector::from(vec![2.0]), Vector::from(vec![4.0])];
        let out = Bulyan::new().aggregate(&grads, 0).unwrap();
        assert_eq!(out[0], 3.0);
    }

    #[test]
    fn kappa_shared_with_krum() {
        use crate::Krum;
        assert_eq!(Bulyan::new().kappa(11, 2), Krum::new().kappa(11, 2));
        assert!(Bulyan::new().kappa(11, 3).is_none()); // beyond 4f+3
    }

    #[test]
    fn tight_cluster_output_is_close_to_cluster_mean() {
        let mut rng = Prng::seed_from_u64(2);
        let grads: Vec<Vector> = (0..11).map(|_| rng.normal_vector(2, 0.01)).collect();
        let mean = Vector::mean(&grads).unwrap();
        let out = Bulyan::new().aggregate(&grads, 2).unwrap();
        assert!(out.l2_distance(&mean) < 0.05);
    }
}
