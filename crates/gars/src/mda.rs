//! MDA — Minimum-Diameter Averaging (El-Mhamdi et al. 2020).
//!
//! MDA returns the mean of the cardinality-`(n − f)` subset of gradients
//! with the smallest diameter (`max` pairwise L2 distance). The paper's
//! experiments use MDA because it has the *largest* known VN bound,
//! `κ = (n − f)/(√8·f)` — the most noise-tolerant certified GAR — which
//! makes its failure under DP noise (Fig. 2) the strongest demonstration of
//! the antagonism.

use crate::{check_input, Gar, GarError};
use dpbyz_tensor::Vector;

/// Exhaustive search is used while `C(n, n−f)` stays below this bound;
/// beyond it MDA falls back to a 2-approximate heuristic.
const EXACT_ENUMERATION_LIMIT: u128 = 200_000;

/// Minimum-Diameter Averaging.
///
/// # Example
///
/// ```
/// use dpbyz_gars::{Gar, Mda};
/// use dpbyz_tensor::Vector;
///
/// let grads = vec![
///     Vector::from(vec![0.0]),
///     Vector::from(vec![0.1]),
///     Vector::from(vec![-0.1]),
///     Vector::from(vec![9.9]), // Byzantine
/// ];
/// let out = Mda::new().aggregate(&grads, 1).unwrap();
/// assert!((out[0] - 0.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mda;

impl Mda {
    /// Creates the rule.
    pub fn new() -> Self {
        Mda
    }

    /// Whether `(n, f)` will be solved exactly (subset enumeration) rather
    /// than by the greedy 2-approximation.
    pub fn is_exact(n: usize, f: usize) -> bool {
        binomial(n, n.saturating_sub(f)) <= EXACT_ENUMERATION_LIMIT
    }
}

fn check_tolerance(n: usize, f: usize) -> Result<(), GarError> {
    // Need a strict majority of honest workers.
    if 2 * f >= n {
        return Err(GarError::TooManyByzantine {
            n,
            f,
            max: n.saturating_sub(1) / 2,
        });
    }
    Ok(())
}

fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if acc > EXACT_ENUMERATION_LIMIT * 1000 {
            return u128::MAX;
        }
    }
    acc
}

/// Squared-distance table.
fn distance_table(gradients: &[Vector]) -> Vec<Vec<f64>> {
    let n = gradients.len();
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = gradients[i].l2_distance_squared(&gradients[j]);
            d[i][j] = dist;
            d[j][i] = dist;
        }
    }
    d
}

/// Lexicographic strict order on coordinates — the canonical tie-break.
/// Distinct subsets can share the exact minimal diameter (the same critical
/// pair can realize the max in both), so "first found wins" would make the
/// output depend on submission order.
fn lex_less(a: &Vector, b: &Vector) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        if x < y {
            return true;
        }
        if x > y {
            return false;
        }
    }
    false
}

fn subset_mean(gradients: &[Vector], subset: &[usize]) -> Vector {
    let chosen: Vec<Vector> = subset.iter().map(|&i| gradients[i].clone()).collect();
    Vector::mean(&chosen).expect("subset non-empty")
}

/// Exact minimum-diameter subset via lexicographic combination enumeration.
/// Returns the *mean* of the best subset; diameter ties are broken by the
/// lexicographically smallest mean.
fn exact_min_diameter_mean(gradients: &[Vector], dist2: &[Vec<f64>], n: usize, m: usize) -> Vector {
    let mut combo: Vec<usize> = (0..m).collect();
    let mut best_mean = subset_mean(gradients, &combo);
    let mut best_diam = subset_diameter(dist2, &combo);
    loop {
        // Advance to the next combination.
        let mut i = m;
        loop {
            if i == 0 {
                return best_mean;
            }
            i -= 1;
            if combo[i] != i + n - m {
                break;
            }
            if i == 0 {
                return best_mean;
            }
        }
        combo[i] += 1;
        for j in (i + 1)..m {
            combo[j] = combo[j - 1] + 1;
        }
        let diam = subset_diameter(dist2, &combo);
        if diam < best_diam {
            best_diam = diam;
            best_mean = subset_mean(gradients, &combo);
        } else if diam == best_diam {
            let mean = subset_mean(gradients, &combo);
            if lex_less(&mean, &best_mean) {
                best_mean = mean;
            }
        }
    }
}

fn subset_diameter(dist2: &[Vec<f64>], subset: &[usize]) -> f64 {
    let mut d: f64 = 0.0;
    for (a, &i) in subset.iter().enumerate() {
        for &j in &subset[a + 1..] {
            d = d.max(dist2[i][j]);
        }
    }
    d
}

/// Greedy 2-approximation: for every anchor `i`, take the `m` gradients
/// nearest to `i` and measure that subset's diameter; keep the best subset.
/// The optimal subset's diameter `D*` bounds each member's distance to the
/// anchor it contains, so the best anchored subset has diameter ≤ 2·D*.
/// Diameter ties are broken by the lexicographically smallest subset mean,
/// as in the exact search.
fn greedy_min_diameter_mean(
    gradients: &[Vector],
    dist2: &[Vec<f64>],
    n: usize,
    m: usize,
) -> Vector {
    let mut best: Option<(f64, Vector)> = None;
    for anchor in 0..n {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            dist2[anchor][a]
                .partial_cmp(&dist2[anchor][b])
                .expect("finite distances")
                .then_with(|| {
                    if lex_less(&gradients[a], &gradients[b]) {
                        std::cmp::Ordering::Less
                    } else if lex_less(&gradients[b], &gradients[a]) {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
        });
        let subset: Vec<usize> = order[..m].to_vec();
        let diam = subset_diameter(dist2, &subset);
        let replace = match &best {
            None => true,
            Some((d, mean)) => {
                diam < *d || (diam == *d && lex_less(&subset_mean(gradients, &subset), mean))
            }
        };
        if replace {
            best = Some((diam, subset_mean(gradients, &subset)));
        }
    }
    best.expect("n >= 1").1
}

impl Gar for Mda {
    fn name(&self) -> &'static str {
        "mda"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        check_input(gradients)?;
        let n = gradients.len();
        check_tolerance(n, f)?;
        if f == 0 {
            return Ok(Vector::mean(gradients).expect("non-empty"));
        }
        let m = n - f;
        let dist2 = distance_table(gradients);
        Ok(if Self::is_exact(n, f) {
            exact_min_diameter_mean(gradients, &dist2, n, m)
        } else {
            greedy_min_diameter_mean(gradients, &dist2, n, m)
        })
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        if f == 0 || check_tolerance(n, f).is_err() {
            return None;
        }
        Some((n - f) as f64 / (8f64.sqrt() * f as f64))
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::Prng;

    #[test]
    fn excludes_byzantine_cluster() {
        // 6 honest near 0, 5 Byzantine near 100 (the paper's n=11, f=5).
        let mut rng = Prng::seed_from_u64(1);
        let mut grads: Vec<Vector> = (0..6).map(|_| rng.normal_vector(2, 0.1)).collect();
        for _ in 0..5 {
            grads.push(&Vector::filled(2, 100.0) + &rng.normal_vector(2, 0.1));
        }
        let out = Mda::new().aggregate(&grads, 5).unwrap();
        assert!(out.l2_norm() < 1.0, "norm {}", out.l2_norm());
    }

    #[test]
    fn output_is_subset_mean() {
        // With an obvious outlier, MDA must equal the mean of the rest.
        let grads = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![3.0]),
            Vector::from(vec![1000.0]),
        ];
        let out = Mda::new().aggregate(&grads, 1).unwrap();
        assert!((out[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn f_zero_is_plain_mean() {
        let grads = vec![Vector::from(vec![1.0]), Vector::from(vec![5.0])];
        let out = Mda::new().aggregate(&grads, 0).unwrap();
        assert_eq!(out[0], 3.0);
    }

    #[test]
    fn tolerance_is_minority() {
        let grads = vec![Vector::zeros(1); 11];
        assert!(Mda::new().aggregate(&grads, 5).is_ok());
        assert!(matches!(
            Mda::new().aggregate(&grads, 6),
            Err(GarError::TooManyByzantine { max: 5, .. })
        ));
    }

    #[test]
    fn kappa_matches_formula() {
        // n = 11, f = 5: κ = 6/(√8·5).
        let k = Mda::new().kappa(11, 5).unwrap();
        assert!((k - 6.0 / (8f64.sqrt() * 5.0)).abs() < 1e-12);
        assert!(Mda::new().kappa(11, 0).is_none());
        assert!(Mda::new().kappa(11, 6).is_none());
    }

    #[test]
    fn exact_and_greedy_agree_on_clear_separation() {
        // When honest/Byzantine clusters are well separated, the greedy
        // heuristic must find the same subset mean as exhaustive search.
        let mut rng = Prng::seed_from_u64(2);
        let mut grads: Vec<Vector> = (0..8).map(|_| rng.normal_vector(3, 0.05)).collect();
        for _ in 0..4 {
            grads.push(&Vector::filled(3, 50.0) + &rng.normal_vector(3, 0.05));
        }
        let n = grads.len();
        let m = n - 4;
        let dist2 = distance_table(&grads);
        let exact = exact_min_diameter_mean(&grads, &dist2, n, m);
        let greedy = greedy_min_diameter_mean(&grads, &dist2, n, m);
        assert!(exact.approx_eq(&greedy, 1e-12));
        // And the chosen subset is the honest cluster.
        let honest_mean = Vector::mean(&grads[..8]).unwrap();
        assert!(exact.approx_eq(&honest_mean, 1e-12));
    }

    #[test]
    fn greedy_output_stays_in_honest_hull_on_random_input() {
        // The greedy mean must stay within the coordinate envelope of the
        // inputs (it is a subset mean by construction).
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..30 {
            let grads: Vec<Vector> = (0..10).map(|_| rng.normal_vector(2, 1.0)).collect();
            let dist2 = distance_table(&grads);
            let mean = greedy_min_diameter_mean(&grads, &dist2, 10, 6);
            for j in 0..2 {
                let lo = grads.iter().map(|g| g[j]).fold(f64::INFINITY, f64::min);
                let hi = grads.iter().map(|g| g[j]).fold(f64::NEG_INFINITY, f64::max);
                assert!(mean[j] >= lo && mean[j] <= hi);
            }
        }
    }

    #[test]
    fn exactness_predicate() {
        assert!(Mda::is_exact(11, 5)); // C(11,6) = 462
        assert!(!Mda::is_exact(60, 25)); // astronomically many subsets
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(11, 6), 462);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 6), 0);
    }
}
