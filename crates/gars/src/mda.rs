//! MDA — Minimum-Diameter Averaging (El-Mhamdi et al. 2020).
//!
//! MDA returns the mean of the cardinality-`(n − f)` subset of gradients
//! with the smallest diameter (`max` pairwise L2 distance). The paper's
//! experiments use MDA because it has the *largest* known VN bound,
//! `κ = (n − f)/(√8·f)` — the most noise-tolerant certified GAR — which
//! makes its failure under DP noise (Fig. 2) the strongest demonstration of
//! the antagonism.

use crate::scratch::mean_indexed_into;
use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;

/// Exhaustive search is used while `C(n, n−f)` stays below this bound;
/// beyond it MDA falls back to a 2-approximate heuristic.
const EXACT_ENUMERATION_LIMIT: u128 = 200_000;

/// Minimum-Diameter Averaging.
///
/// # Example
///
/// ```
/// use dpbyz_gars::{Gar, Mda};
/// use dpbyz_tensor::Vector;
///
/// let grads = vec![
///     Vector::from(vec![0.0]),
///     Vector::from(vec![0.1]),
///     Vector::from(vec![-0.1]),
///     Vector::from(vec![9.9]), // Byzantine
/// ];
/// let out = Mda::new().aggregate(&grads, 1).unwrap();
/// assert!((out[0] - 0.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mda;

impl Mda {
    /// Creates the rule.
    pub fn new() -> Self {
        Mda
    }

    /// Whether `(n, f)` will be solved exactly (subset enumeration) rather
    /// than by the greedy 2-approximation.
    pub fn is_exact(n: usize, f: usize) -> bool {
        binomial(n, n.saturating_sub(f)) <= EXACT_ENUMERATION_LIMIT
    }
}

fn check_tolerance(n: usize, f: usize) -> Result<(), GarError> {
    // Need a strict majority of honest workers.
    if 2 * f >= n {
        return Err(GarError::TooManyByzantine {
            n,
            f,
            max: n.saturating_sub(1) / 2,
        });
    }
    Ok(())
}

fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if acc > EXACT_ENUMERATION_LIMIT * 1000 {
            return u128::MAX;
        }
    }
    acc
}

/// Flat symmetric squared-distance table (row-major `n × n`), kept for the
/// unit tests that drive the subset searches directly (the hot path fills
/// the scratch's matrix via [`GarScratch::fill_dist2_active`]).
#[cfg(test)]
fn distance_table(gradients: &[Vector]) -> Vec<f64> {
    let n = gradients.len();
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = gradients[i].l2_distance_squared(&gradients[j]);
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    d
}

/// Lexicographic strict order on coordinates — the canonical tie-break.
/// Distinct subsets can share the exact minimal diameter (the same critical
/// pair can realize the max in both), so "first found wins" would make the
/// output depend on submission order.
fn lex_less(a: &Vector, b: &Vector) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        if x < y {
            return true;
        }
        if x > y {
            return false;
        }
    }
    false
}

/// Exact minimum-diameter subset via lexicographic combination enumeration,
/// writing the *mean* of the best subset into `out`; diameter ties are
/// broken by the lexicographically smallest mean. `candidate` is a scratch
/// buffer for the challenger mean.
fn exact_min_diameter_mean(
    gradients: &[Vector],
    dist2: &[f64],
    n: usize,
    m: usize,
    combo: &mut Vec<usize>,
    candidate: &mut Vector,
    out: &mut Vector,
) {
    combo.clear();
    combo.extend(0..m);
    mean_indexed_into(gradients, combo, out);
    let mut best_diam = subset_diameter(dist2, n, combo);
    loop {
        // Advance to the next combination.
        let mut i = m;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if combo[i] != i + n - m {
                break;
            }
            if i == 0 {
                return;
            }
        }
        combo[i] += 1;
        for j in (i + 1)..m {
            combo[j] = combo[j - 1] + 1;
        }
        let diam = subset_diameter(dist2, n, combo);
        if diam < best_diam {
            best_diam = diam;
            mean_indexed_into(gradients, combo, out);
        } else if diam == best_diam {
            mean_indexed_into(gradients, combo, candidate);
            if lex_less(candidate, out) {
                std::mem::swap(candidate, out);
            }
        }
    }
}

fn subset_diameter(dist2: &[f64], n: usize, subset: &[usize]) -> f64 {
    let mut d: f64 = 0.0;
    for (a, &i) in subset.iter().enumerate() {
        for &j in &subset[a + 1..] {
            d = d.max(dist2[i * n + j]);
        }
    }
    d
}

/// Greedy 2-approximation: for every anchor `i`, take the `m` gradients
/// nearest to `i` and measure that subset's diameter; keep the best subset.
/// The optimal subset's diameter `D*` bounds each member's distance to the
/// anchor it contains, so the best anchored subset has diameter ≤ 2·D*.
/// Diameter ties are broken by the lexicographically smallest subset mean,
/// as in the exact search.
fn greedy_min_diameter_mean(
    gradients: &[Vector],
    dist2: &[f64],
    n: usize,
    m: usize,
    order: &mut Vec<usize>,
    candidate: &mut Vector,
    out: &mut Vector,
) {
    let mut best_diam: Option<f64> = None;
    for anchor in 0..n {
        order.clear();
        order.extend(0..n);
        order.sort_by(|&a, &b| {
            dist2[anchor * n + a]
                .partial_cmp(&dist2[anchor * n + b])
                .expect("finite distances") // lint:allow(panic-unwrap, reason = "pairwise distances of finite gradients; NaN is excluded by the kernel contract")
                .then_with(|| {
                    if lex_less(&gradients[a], &gradients[b]) {
                        std::cmp::Ordering::Less
                    } else if lex_less(&gradients[b], &gradients[a]) {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
        });
        let subset = &order[..m];
        let diam = subset_diameter(dist2, n, subset);
        match best_diam {
            None => {
                best_diam = Some(diam);
                mean_indexed_into(gradients, subset, out);
            }
            Some(d) if diam < d => {
                best_diam = Some(diam);
                mean_indexed_into(gradients, subset, out);
            }
            Some(d) if diam == d => {
                mean_indexed_into(gradients, subset, candidate);
                if lex_less(candidate, out) {
                    std::mem::swap(candidate, out);
                }
            }
            Some(_) => {}
        }
    }
}

impl Gar for Mda {
    fn name(&self) -> &'static str {
        "mda"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        check_input(gradients)?;
        let n = gradients.len();
        check_tolerance(n, f)?;
        if f == 0 {
            return Vector::mean_into(gradients, out).map_err(|_| GarError::Empty);
        }
        let m = n - f;
        scratch.set_active_full(n);
        scratch.fill_dist2_active(gradients);
        let GarScratch {
            ref dist2,
            ref mut combo,
            ref mut order,
            ref mut vec_a,
            ..
        } = *scratch;
        if Self::is_exact(n, f) {
            exact_min_diameter_mean(gradients, dist2, n, m, combo, vec_a, out);
        } else {
            greedy_min_diameter_mean(gradients, dist2, n, m, order, vec_a, out);
        }
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        if f == 0 || check_tolerance(n, f).is_err() {
            return None;
        }
        Some((n - f) as f64 / (8f64.sqrt() * f as f64))
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::Prng;

    #[test]
    fn excludes_byzantine_cluster() {
        // 6 honest near 0, 5 Byzantine near 100 (the paper's n=11, f=5).
        let mut rng = Prng::seed_from_u64(1);
        let mut grads: Vec<Vector> = (0..6).map(|_| rng.normal_vector(2, 0.1)).collect();
        for _ in 0..5 {
            grads.push(&Vector::filled(2, 100.0) + &rng.normal_vector(2, 0.1));
        }
        let out = Mda::new().aggregate(&grads, 5).unwrap();
        assert!(out.l2_norm() < 1.0, "norm {}", out.l2_norm());
    }

    #[test]
    fn output_is_subset_mean() {
        // With an obvious outlier, MDA must equal the mean of the rest.
        let grads = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![3.0]),
            Vector::from(vec![1000.0]),
        ];
        let out = Mda::new().aggregate(&grads, 1).unwrap();
        assert!((out[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn f_zero_is_plain_mean() {
        let grads = vec![Vector::from(vec![1.0]), Vector::from(vec![5.0])];
        let out = Mda::new().aggregate(&grads, 0).unwrap();
        assert_eq!(out[0], 3.0);
    }

    #[test]
    fn tolerance_is_minority() {
        let grads = vec![Vector::zeros(1); 11];
        assert!(Mda::new().aggregate(&grads, 5).is_ok());
        assert!(matches!(
            Mda::new().aggregate(&grads, 6),
            Err(GarError::TooManyByzantine { max: 5, .. })
        ));
    }

    #[test]
    fn kappa_matches_formula() {
        // n = 11, f = 5: κ = 6/(√8·5).
        let k = Mda::new().kappa(11, 5).unwrap();
        assert!((k - 6.0 / (8f64.sqrt() * 5.0)).abs() < 1e-12);
        assert!(Mda::new().kappa(11, 0).is_none());
        assert!(Mda::new().kappa(11, 6).is_none());
    }

    #[test]
    fn exact_and_greedy_agree_on_clear_separation() {
        // When honest/Byzantine clusters are well separated, the greedy
        // heuristic must find the same subset mean as exhaustive search.
        let mut rng = Prng::seed_from_u64(2);
        let mut grads: Vec<Vector> = (0..8).map(|_| rng.normal_vector(3, 0.05)).collect();
        for _ in 0..4 {
            grads.push(&Vector::filled(3, 50.0) + &rng.normal_vector(3, 0.05));
        }
        let n = grads.len();
        let m = n - 4;
        let dist2 = distance_table(&grads);
        let (mut combo, mut order) = (Vec::new(), Vec::new());
        let (mut scratch, mut exact, mut greedy) =
            (Vector::default(), Vector::default(), Vector::default());
        exact_min_diameter_mean(&grads, &dist2, n, m, &mut combo, &mut scratch, &mut exact);
        greedy_min_diameter_mean(&grads, &dist2, n, m, &mut order, &mut scratch, &mut greedy);
        assert!(exact.approx_eq(&greedy, 1e-12));
        // And the chosen subset is the honest cluster.
        let honest_mean = Vector::mean(&grads[..8]).unwrap();
        assert!(exact.approx_eq(&honest_mean, 1e-12));
    }

    #[test]
    fn greedy_output_stays_in_honest_hull_on_random_input() {
        // The greedy mean must stay within the coordinate envelope of the
        // inputs (it is a subset mean by construction).
        let mut rng = Prng::seed_from_u64(3);
        let (mut order, mut scratch) = (Vec::new(), Vector::default());
        for _ in 0..30 {
            let grads: Vec<Vector> = (0..10).map(|_| rng.normal_vector(2, 1.0)).collect();
            let dist2 = distance_table(&grads);
            let mut mean = Vector::default();
            greedy_min_diameter_mean(&grads, &dist2, 10, 6, &mut order, &mut scratch, &mut mean);
            for j in 0..2 {
                let lo = grads.iter().map(|g| g[j]).fold(f64::INFINITY, f64::min);
                let hi = grads.iter().map(|g| g[j]).fold(f64::NEG_INFINITY, f64::max);
                assert!(mean[j] >= lo && mean[j] <= hi);
            }
        }
    }

    #[test]
    fn exactness_predicate() {
        assert!(Mda::is_exact(11, 5)); // C(11,6) = 462
        assert!(!Mda::is_exact(60, 25)); // astronomically many subsets
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(11, 6), 462);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 6), 0);
    }
}
