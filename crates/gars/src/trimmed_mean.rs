//! Coordinate-wise trimmed mean (Yin et al., ICML 2018).

use crate::compute::{self, ShardOp};
use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;

/// Coordinate-wise `f`-trimmed mean: per coordinate, drop the `f` smallest
/// and `f` largest values and average the rest.
///
/// Tolerates `2f < n`; VN bound `κ = √((n−2f)² / (2(f+1)(n−f)))`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrimmedMean;

impl TrimmedMean {
    /// Creates the rule.
    pub fn new() -> Self {
        TrimmedMean
    }
}

fn check_tolerance(n: usize, f: usize) -> Result<(), GarError> {
    if 2 * f >= n {
        return Err(GarError::TooManyByzantine {
            n,
            f,
            max: n.saturating_sub(1) / 2,
        });
    }
    Ok(())
}

impl Gar for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed-mean"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        let dim = check_input(gradients)?;
        let n = gradients.len();
        check_tolerance(n, f)?;
        out.resize(dim, 0.0);
        // Columns are independent, so the coordinate loop shards over the
        // scratch's compute pool — bit-identical to the serial loop at any
        // pool size.
        let GarScratch {
            ref mut pool,
            ref mut col,
            ref mut sort_buf,
            ..
        } = *scratch;
        compute::run_sharded(
            pool,
            col,
            sort_buf,
            ShardOp::TrimmedMean { trim: f },
            dim,
            n,
            &|range, values| {
                values.clear();
                for j in range {
                    for g in gradients {
                        values.push(g[j]);
                    }
                }
            },
            out.as_mut_slice(),
        );
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        if f == 0 || check_tolerance(n, f).is_err() {
            return None;
        }
        let (nf, ff) = (n as f64, f as f64);
        Some(((nf - 2.0 * ff).powi(2) / (2.0 * (ff + 1.0) * (nf - ff))).sqrt())
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_extremes_per_coordinate() {
        let grads = vec![
            Vector::from(vec![-1000.0, 1.0]),
            Vector::from(vec![1.0, 2.0]),
            Vector::from(vec![2.0, 3.0]),
            Vector::from(vec![3.0, 1000.0]),
            Vector::from(vec![1000.0, 2.0]),
        ];
        let out = TrimmedMean::new().aggregate(&grads, 1).unwrap();
        assert_eq!(out[0], 2.0);
        assert!((out[1] - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn equals_mean_when_f_zero() {
        let grads = vec![Vector::from(vec![1.0]), Vector::from(vec![3.0])];
        let out = TrimmedMean::new().aggregate(&grads, 0).unwrap();
        assert_eq!(out[0], 2.0);
    }

    #[test]
    fn tolerance_boundary() {
        let grads = vec![Vector::zeros(1); 11];
        assert!(TrimmedMean::new().aggregate(&grads, 5).is_ok());
        assert!(TrimmedMean::new().aggregate(&grads, 6).is_err());
    }

    #[test]
    fn kappa_formula() {
        // n = 11, f = 5: κ = √(1 / (2·6·6)) = 1/√72.
        let k = TrimmedMean::new().kappa(11, 5).unwrap();
        assert!((k - (1.0 / 72f64).sqrt()).abs() < 1e-12);
        assert!(TrimmedMean::new().kappa(11, 0).is_none());
        assert!(TrimmedMean::new().kappa(10, 5).is_none());
    }
}
