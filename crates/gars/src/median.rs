//! Coordinate-wise median (Yin et al., ICML 2018).

use crate::compute::{self, ShardOp};
use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;

/// Coordinate-wise median of the submitted gradients.
///
/// Tolerates `2f ≤ n − 1`; VN bound `κ = 1/√(n − f)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordinateMedian;

impl CoordinateMedian {
    /// Creates the rule.
    pub fn new() -> Self {
        CoordinateMedian
    }
}

fn check_tolerance(n: usize, f: usize) -> Result<(), GarError> {
    if 2 * f > n.saturating_sub(1) {
        return Err(GarError::TooManyByzantine {
            n,
            f,
            max: n.saturating_sub(1) / 2,
        });
    }
    Ok(())
}

impl Gar for CoordinateMedian {
    fn name(&self) -> &'static str {
        "median"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        let dim = check_input(gradients)?;
        let n = gradients.len();
        check_tolerance(n, f)?;
        out.resize(dim, 0.0);
        // Columns are independent, so the coordinate loop shards over the
        // scratch's compute pool — bit-identical to the serial loop at any
        // pool size (same packed column, same statistic, per coordinate).
        let GarScratch {
            ref mut pool,
            ref mut col,
            ref mut sort_buf,
            ..
        } = *scratch;
        compute::run_sharded(
            pool,
            col,
            sort_buf,
            ShardOp::Median,
            dim,
            n,
            &|range, values| {
                values.clear();
                for j in range {
                    for g in gradients {
                        values.push(g[j]);
                    }
                }
            },
            out.as_mut_slice(),
        );
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        if f == 0 || check_tolerance(n, f).is_err() {
            return None;
        }
        Some(1.0 / ((n - f) as f64).sqrt())
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_coordinate_median() {
        let grads = vec![
            Vector::from(vec![1.0, -10.0]),
            Vector::from(vec![2.0, 0.0]),
            Vector::from(vec![100.0, 10.0]),
        ];
        let out = CoordinateMedian::new().aggregate(&grads, 1).unwrap();
        assert_eq!(out.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn resists_minority_outliers() {
        let mut grads = vec![Vector::from(vec![0.0]); 6];
        for _ in 0..5 {
            grads.push(Vector::from(vec![1e9]));
        }
        let out = CoordinateMedian::new().aggregate(&grads, 5).unwrap();
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn tolerance_boundary() {
        let grads = vec![Vector::zeros(1); 11];
        assert!(CoordinateMedian::new().aggregate(&grads, 5).is_ok());
        assert!(CoordinateMedian::new().aggregate(&grads, 6).is_err());
        assert_eq!(CoordinateMedian::new().max_byzantine(11), 5);
    }

    #[test]
    fn kappa_formula() {
        let k = CoordinateMedian::new().kappa(11, 5).unwrap();
        assert!((k - 1.0 / 6f64.sqrt()).abs() < 1e-12);
        assert!(CoordinateMedian::new().kappa(11, 0).is_none());
    }
}
