//! Staleness-damped meta-aggregation: per-submission age weights folded
//! into any inner rule.
//!
//! Under bounded-staleness rounds (`TrainingConfig.staleness_window > 0`
//! in `dpbyz-server`) a straggler's gradient from `j` rounds ago is
//! admitted instead of zeroed. A gradient computed against `j`-step-old
//! parameters points in a systematically outdated direction, so before
//! the inner rule sees it, this wrapper scales submission `i` by
//! `λ^age[i]` — full weight for fresh work, geometrically discounted
//! weight for late work, never a hard drop. With every age zero (or no
//! ages recorded) the wrapper is the identity around its inner rule, bit
//! for bit — the synchronous digests are unchanged by wrapping.
//!
//! Ages travel through the [`GarScratch`] extension
//! ([`GarScratch::set_submission_ages`]) rather than the `Gar` call
//! signature, so the meta-rule composes with every registered rule and
//! the zero-copy `aggregate_into` path unchanged.

use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;
use std::sync::Arc;

/// Staleness-damped meta-aggregation: submissions scaled by `λ^age`
/// before the inner GAR aggregates them.
///
/// # Example
///
/// ```
/// use dpbyz_gars::{Gar, GarScratch, StalenessDamped, Average};
/// use dpbyz_tensor::Vector;
/// use std::sync::Arc;
///
/// let rule = StalenessDamped::new(Arc::new(Average::new()), 0.5);
/// let grads = vec![Vector::from(vec![2.0]), Vector::from(vec![2.0])];
/// let mut scratch = GarScratch::new();
/// let mut out = Vector::default();
/// // Second submission is one round late: weighted 0.5.
/// scratch.set_submission_ages(&[0, 1]);
/// rule.aggregate_into(&grads, 0, &mut scratch, &mut out).unwrap();
/// assert_eq!(out[0], 1.5); // mean of 2.0 and 1.0
/// ```
#[derive(Clone)]
pub struct StalenessDamped {
    inner: Arc<dyn Gar>,
    lambda: f64,
}

impl StalenessDamped {
    /// Creates the meta-rule: submissions damped by `lambda^age`, then
    /// aggregated by `inner`. `lambda = 1` keeps late submissions at full
    /// weight (the wrapper is then always the identity).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lambda <= 1` (a weight above 1 would *amplify*
    /// stale work; 0 would re-introduce the hard drop this rule exists to
    /// avoid).
    pub fn new(inner: Arc<dyn Gar>, lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "staleness damping must be in (0, 1], got {lambda}"
        );
        StalenessDamped { inner, lambda }
    }

    /// The inner aggregation rule.
    pub fn inner(&self) -> &Arc<dyn Gar> {
        &self.inner
    }

    /// The per-round damping factor `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl std::fmt::Debug for StalenessDamped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StalenessDamped")
            .field("inner", &self.inner.name())
            .field("lambda", &self.lambda)
            .finish()
    }
}

impl Gar for StalenessDamped {
    fn name(&self) -> &'static str {
        "staleness-damped"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        // The allocating path has no scratch, hence no recorded ages:
        // every submission counts as fresh and the wrapper is the
        // identity around the inner rule.
        self.inner.aggregate(gradients, f)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        check_input(gradients)?;
        let n = gradients.len();
        // All-fresh rounds (k = 0 deployments, or a window that nothing
        // exercised this round) take the pure-delegation path: no copy,
        // no float op, bit-identical to the bare inner rule.
        let damped_any = scratch
            .ages
            .iter()
            .take(n)
            .any(|&age| age > 0 && self.lambda < 1.0);
        if !damped_any {
            let mut nested = scratch.nested.take().unwrap_or_default();
            let result = self.inner.aggregate_into(gradients, f, &mut nested, out);
            scratch.nested = Some(nested);
            return result;
        }

        // Damped copies into reused vectors (the tail of `weighted`
        // beyond `n` is dormant capacity from larger past topologies).
        if scratch.weighted.len() < n {
            scratch.weighted.resize_with(n, Vector::default);
        }
        for (i, (slot, grad)) in scratch.weighted.iter_mut().zip(gradients).enumerate() {
            slot.copy_from(grad);
            let age = scratch.ages.get(i).copied().unwrap_or(0);
            if age > 0 {
                slot.scale(self.lambda.powi(age.min(i32::MAX as u32) as i32));
            }
        }

        let mut nested = scratch.nested.take().unwrap_or_default();
        let result = self
            .inner
            .aggregate_into(&scratch.weighted[..n], f, &mut nested, out);
        scratch.nested = Some(nested);
        result
        // lint:end(zero-copy)
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        // Damping rescales individual submissions; the inner rule's
        // tolerance and VN bound at the same (n, f) are the best published
        // statement available for the composed rule.
        self.inner.kappa(n, f)
    }

    fn max_byzantine(&self, n: usize) -> usize {
        self.inner.max_byzantine(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Average, CoordinateMedian, Mda};
    use dpbyz_tensor::Prng;
    use proptest::prelude::*;

    fn damped_median(lambda: f64) -> StalenessDamped {
        StalenessDamped::new(Arc::new(CoordinateMedian::new()), lambda)
    }

    #[test]
    fn no_ages_is_the_inner_rule_bitwise() {
        let mut rng = Prng::seed_from_u64(1);
        let grads: Vec<Vector> = (0..9).map(|_| rng.normal_vector(4, 1.0)).collect();
        let mut scratch = GarScratch::new();
        let mut out = Vector::default();
        damped_median(0.5)
            .aggregate_into(&grads, 3, &mut scratch, &mut out)
            .unwrap();
        let bare = CoordinateMedian::new().aggregate(&grads, 3).unwrap();
        for (a, b) in out.iter().zip(bare.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn all_zero_ages_is_the_inner_rule_bitwise() {
        let mut rng = Prng::seed_from_u64(2);
        let grads: Vec<Vector> = (0..7).map(|_| rng.normal_vector(3, 1.0)).collect();
        let mut scratch = GarScratch::new();
        scratch.set_submission_ages(&[0; 7]);
        let mut out = Vector::default();
        damped_median(0.25)
            .aggregate_into(&grads, 2, &mut scratch, &mut out)
            .unwrap();
        let bare = CoordinateMedian::new().aggregate(&grads, 2).unwrap();
        for (a, b) in out.iter().zip(bare.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lambda_one_never_copies_or_damps() {
        // λ = 1 is the identity even with nonzero ages: the fast path
        // must trigger (damping by 1.0 would still be bit-identical, but
        // the delegation path is the documented contract).
        let grads = vec![Vector::from(vec![3.0]), Vector::from(vec![5.0])];
        let mut scratch = GarScratch::new();
        scratch.set_submission_ages(&[2, 7]);
        let mut out = Vector::default();
        damped_median(1.0)
            .aggregate_into(&grads, 0, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out[0], 4.0);
    }

    #[test]
    fn ages_scale_geometrically() {
        let grads = vec![
            Vector::from(vec![8.0]),
            Vector::from(vec![8.0]),
            Vector::from(vec![8.0]),
        ];
        let rule = StalenessDamped::new(Arc::new(Average::new()), 0.5);
        let mut scratch = GarScratch::new();
        scratch.set_submission_ages(&[0, 1, 3]);
        let mut out = Vector::default();
        rule.aggregate_into(&grads, 0, &mut scratch, &mut out)
            .unwrap();
        // Weights 1, 0.5, 0.125 → mean of 8, 4, 1.
        assert_eq!(out[0], (8.0 + 4.0 + 1.0) / 3.0);
    }

    #[test]
    fn missing_trailing_ages_count_as_fresh() {
        let grads = vec![Vector::from(vec![2.0]), Vector::from(vec![4.0])];
        let rule = StalenessDamped::new(Arc::new(Average::new()), 0.5);
        let mut scratch = GarScratch::new();
        scratch.set_submission_ages(&[1]); // second submission unrecorded
        let mut out = Vector::default();
        rule.aggregate_into(&grads, 0, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out[0], (1.0 + 4.0) / 2.0);
    }

    #[test]
    fn tolerance_and_kappa_delegate() {
        let rule = StalenessDamped::new(Arc::new(Mda::new()), 0.5);
        let bare = Mda::new();
        assert_eq!(rule.max_byzantine(11), bare.max_byzantine(11));
        assert_eq!(rule.kappa(11, 5), bare.kappa(11, 5));
    }

    #[test]
    fn inner_errors_surface() {
        let grads = vec![Vector::zeros(2); 5];
        let rule = StalenessDamped::new(Arc::new(Mda::new()), 0.5);
        assert!(matches!(
            rule.aggregate(&grads, 3),
            Err(GarError::TooManyByzantine { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn zero_lambda_rejected() {
        let _ = StalenessDamped::new(Arc::new(Average::new()), 0.0);
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn amplifying_lambda_rejected() {
        let _ = StalenessDamped::new(Arc::new(Average::new()), 1.5);
    }

    /// Naive reference: clone each submission, scale by λ^age, call the
    /// inner rule's allocating `aggregate` — written without the scratch
    /// machinery.
    fn reference(
        gradients: &[Vector],
        ages: &[u32],
        lambda: f64,
        f: usize,
        inner: &dyn Gar,
    ) -> Result<Vector, GarError> {
        let damped: Vec<Vector> = gradients
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let mut v = g.clone();
                v.scale(lambda.powi(ages.get(i).copied().unwrap_or(0) as i32));
                v
            })
            .collect();
        inner.aggregate(&damped, f)
    }

    proptest! {
        #[test]
        fn prop_hot_path_matches_reference_bitwise(
            seed in 0u64..300,
            n in 5usize..12,
            k in 1u32..4,
        ) {
            let mut rng = Prng::seed_from_u64(seed);
            let grads: Vec<Vector> = (0..n).map(|_| rng.normal_vector(5, 1.0)).collect();
            let ages: Vec<u32> = (0..n).map(|i| (seed as u32 + i as u32) % (k + 1)).collect();
            let inner = CoordinateMedian::new();
            let rule = StalenessDamped::new(Arc::new(inner), 0.5);
            let f = rule.max_byzantine(n);
            let expected = reference(&grads, &ages, 0.5, f, &inner).unwrap();
            // Dirty reused scratch with stale oversized weighted storage.
            let mut scratch = GarScratch::new();
            scratch.weighted.resize_with(16, || Vector::from(vec![9.0; 3]));
            scratch.set_submission_ages(&ages);
            let mut out = Vector::from(vec![4.0; 2]);
            rule.aggregate_into(&grads, f, &mut scratch, &mut out).unwrap();
            prop_assert_eq!(out.dim(), expected.dim());
            for (a, b) in out.iter().zip(expected.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
