//! Intra-round data-parallel execution of per-item GAR work — the
//! [`ComputePool`] and its deterministic sharding driver.
//!
//! Every data-parallel piece of a GAR in this crate has the same shape:
//! `items` independent outputs (coordinates for the column-statistics
//! family, candidates for Krum scoring), each a pure function of `rows`
//! packed input values. [`run_sharded`] evaluates that shape either
//! inline (pool size 1 — exactly the historical serial loop, no threads
//! ever spawned) or sharded over the pool's persistent worker threads.
//!
//! **Determinism.** Both paths evaluate every item with the *single*
//! shared [`eval_item`] routine, and each item's packed inputs are
//! byte-identical however the item range is sharded — so the parallel
//! result is bit-identical to serial at any pool size, by construction
//! rather than by tolerance. Shard boundaries are a fixed function of
//! `(items, pool size)` alone, never of timing; they could not change the
//! bits even if they drifted, but fixed boundaries keep the schedule
//! reproducible too.
//!
//! **Allocation-freedom.** The crate forbids `unsafe`, so persistent
//! threads cannot borrow the round's gradients; instead each shard's
//! inputs are packed into an owned [`ShardTask`] that round-trips through
//! the worker's command/reply channel pair and is recycled afterwards —
//! the same leased-packet idiom as the threaded engine's wire-frame
//! arena. After the first parallel round every buffer (task values,
//! outputs, per-thread sort scratch, channel queues) has warmed to the
//! topology's shape and steady-state rounds allocate nothing, pinned by
//! `tests/tests/alloc_steady_state.rs`.

use crossbeam::channel::{self, Receiver, Sender};
use dpbyz_tensor::stats;
use std::fmt;
use std::ops::Range;
use std::thread::JoinHandle;

/// Upper bound on the items packed into one shard task. Caps the packed
/// transpose buffer at `8·rows·MAX_TASK_ITEMS` bytes per in-flight task
/// (≈ 360 KiB at n = 11) so huge `d` streams through the pool in
/// cache-sized waves instead of materializing an O(n·d) transpose.
const MAX_TASK_ITEMS: usize = 4096;

/// One per-item statistic over `rows` packed values. Adding a variant
/// here parallelizes a new GAR family with no new thread plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum ShardOp {
    /// Coordinate median ([`CoordinateMedian`](crate::CoordinateMedian)).
    #[default]
    Median,
    /// `trim`-trimmed mean ([`TrimmedMean`](crate::TrimmedMean)).
    TrimmedMean {
        /// Values dropped at each end.
        trim: usize,
    },
    /// Mean of the `keep` values closest to the median
    /// ([`Meamed`](crate::Meamed); [`Bulyan`](crate::Bulyan) stage 2).
    MeanAroundMedian {
        /// Values kept around the centre.
        keep: usize,
    },
    /// Mean of the `keep` values closest to the `trim`-trimmed mean
    /// ([`Phocas`](crate::Phocas)).
    MeanAroundTrimmedMean {
        /// Values dropped at each end for the centre estimate.
        trim: usize,
        /// Values kept around the centre.
        keep: usize,
    },
    /// Krum score: the sum of the `k` smallest packed neighbour
    /// distances ([`Krum`](crate::Krum) / [`MultiKrum`](crate::MultiKrum)
    /// / [`Bulyan`](crate::Bulyan) stage 1).
    KrumScores {
        /// Nearest neighbours summed (`m − f − 2`).
        k: usize,
    },
}

/// Evaluates `op` over one item's packed values — the **single**
/// implementation both the serial and the sharded path run, which is what
/// makes pool-size bit-identity structural. Each arm performs exactly the
/// statistics calls the pre-parallel GAR bodies performed.
pub(crate) fn eval_item(op: ShardOp, values: &[f64], sort_buf: &mut Vec<f64>) -> f64 {
    match op {
        ShardOp::Median => stats::median_with(values, sort_buf).expect("non-empty column"), // lint:allow(panic-unwrap, reason = "callers validate a non-empty cohort before sharding")
        ShardOp::TrimmedMean { trim } => {
            stats::trimmed_mean_with(values, trim, sort_buf).expect("2f < n") // lint:allow(panic-unwrap, reason = "2f < n is enforced by the caller's tolerance check")
        }
        ShardOp::MeanAroundMedian { keep } => {
            let med = stats::median_with(values, sort_buf).expect("non-empty column"); // lint:allow(panic-unwrap, reason = "callers validate a non-empty cohort before sharding")
                                                                                       // lint:allow(panic-unwrap, reason = "keep <= n by construction from the caller's tolerance check")
            stats::mean_around_with(values, med, keep, sort_buf).expect("keep <= n")
        }
        ShardOp::MeanAroundTrimmedMean { trim, keep } => {
            let tm = stats::trimmed_mean_with(values, trim, sort_buf).expect("2f < n"); // lint:allow(panic-unwrap, reason = "2f < n is enforced by the caller's tolerance check")
                                                                                        // lint:allow(panic-unwrap, reason = "keep <= n by construction from the caller's tolerance check")
            stats::mean_around_with(values, tm, keep, sort_buf).expect("keep <= n")
        }
        ShardOp::KrumScores { k } => {
            sort_buf.clear();
            sort_buf.extend_from_slice(values);
            sort_buf.sort_unstable_by(|x, y| x.partial_cmp(y).expect("finite distances")); // lint:allow(panic-unwrap, reason = "distances between finite gradients; NaN is excluded by the kernel contract")
            sort_buf[..k].iter().sum()
        }
    }
}

/// One shard's owned work packet: `items` consecutive items starting at
/// `base`, each `rows` values, packed column-major into `values`. The
/// packet is leased to a worker thread through its command channel and
/// returned (with `out` filled) through its reply channel, so its buffers
/// are recycled across rounds.
#[derive(Debug, Default)]
pub(crate) struct ShardTask {
    op: ShardOp,
    base: usize,
    rows: usize,
    items: usize,
    values: Vec<f64>,
    out: Vec<f64>,
    sort_buf: Vec<f64>,
}

/// Evaluates every item of a task into its `out` buffer.
fn eval_task(task: &mut ShardTask) {
    // lint:begin(zero-copy)
    task.out.clear();
    for i in 0..task.items {
        let values = &task.values[i * task.rows..(i + 1) * task.rows];
        task.out
            .push(eval_item(task.op, values, &mut task.sort_buf));
    }
    // lint:end(zero-copy)
}

enum Command {
    Run(ShardTask),
    Stop,
}

/// One persistent worker: a command/reply bounded-channel pair and the
/// join handle — the same shape as the threaded engine's `WorkerPool`.
struct PoolThread {
    cmd_tx: Sender<Command>,
    reply_rx: Receiver<ShardTask>,
    handle: Option<JoinHandle<()>>,
}

fn spawn_thread() -> PoolThread {
    let (cmd_tx, cmd_rx) = channel::bounded::<Command>(1);
    let (reply_tx, reply_rx) = channel::bounded::<ShardTask>(1);
    let handle = std::thread::Builder::new()
        .name("dpbyz-agg".to_string())
        .spawn(move || {
            // Stop commands and disconnection both end the loop.
            while let Ok(Command::Run(mut task)) = cmd_rx.recv() {
                eval_task(&mut task);
                if reply_tx.send(task).is_err() {
                    break;
                }
            }
        })
        .expect("spawn aggregation worker thread"); // lint:allow(panic-unwrap, reason = "thread spawn failure is unrecoverable resource exhaustion")
    PoolThread {
        cmd_tx,
        reply_rx,
        handle: Some(handle),
    }
}

impl Drop for PoolThread {
    fn drop(&mut self) {
        // A send failure means the worker is already gone; join regardless.
        let _ = self.cmd_tx.send(Command::Stop);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A persistent pool of aggregation worker threads.
///
/// Size 1 (the default) is the serial path: no thread is ever spawned and
/// [`run_sharded`] degenerates to the historical inline loop. At size
/// `s > 1` the pool lazily spawns `s − 1` workers on the first parallel
/// call; the calling thread always computes one shard itself, so `s` is
/// the total compute parallelism.
pub(crate) struct ComputePool {
    size: usize,
    threads: Vec<PoolThread>,
    /// Idle task packets, one per worker slot, recycled across rounds.
    slots: Vec<ShardTask>,
}

impl Default for ComputePool {
    fn default() -> Self {
        ComputePool {
            size: 1,
            threads: Vec::new(),
            slots: Vec::new(),
        }
    }
}

impl fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComputePool")
            .field("size", &self.size)
            .field("spawned", &self.threads.len())
            .finish()
    }
}

impl ComputePool {
    /// Sets the total parallelism (clamped to ≥ 1). Shrinking reclaims
    /// surplus worker threads immediately; growing spawns lazily on the
    /// next parallel call.
    pub(crate) fn set_size(&mut self, size: usize) {
        self.size = size.max(1);
        if self.threads.len() > self.size - 1 {
            self.threads.truncate(self.size - 1);
        }
    }

    /// The configured total parallelism (≥ 1).
    pub(crate) fn size(&self) -> usize {
        self.size
    }

    fn ensure_threads(&mut self) {
        while self.threads.len() + 1 < self.size {
            self.threads.push(spawn_thread());
        }
        if self.slots.len() + 1 < self.size {
            self.slots.resize_with(self.size - 1, ShardTask::default);
        }
    }
}

/// Evaluates `out[j] = eval_item(op, packed values of item j)` for every
/// `j in 0..items`, sharding the item range over `pool`.
///
/// `pack(range, values)` must clear `values` and append exactly
/// `range.len() · rows` values — item `range.start`'s `rows` values
/// first, then the next item's, and so on. Packing is invoked with
/// deterministic, fixed-boundary ranges: a function of `(items, pool
/// size)` only.
///
/// The result is bit-identical at every pool size: each item is evaluated
/// by the same [`eval_item`] routine over the same packed values
/// regardless of which thread runs it. At pool size 1 this is exactly the
/// historical serial loop (pack one column, evaluate, store) with no
/// thread, channel, or extra buffer touched.
#[allow(clippy::too_many_arguments)] // flat borrow list: every buffer comes from one GarScratch
pub(crate) fn run_sharded(
    pool: &mut ComputePool,
    col: &mut Vec<f64>,
    sort_buf: &mut Vec<f64>,
    op: ShardOp,
    items: usize,
    rows: usize,
    pack: &dyn Fn(Range<usize>, &mut Vec<f64>),
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), items, "output slice must cover every item");
    // lint:begin(zero-copy)
    if pool.size() <= 1 {
        for (j, slot) in out.iter_mut().enumerate() {
            pack(j..j + 1, col);
            *slot = eval_item(op, col, sort_buf);
        }
        return;
    }
    let size = pool.size();
    pool.ensure_threads();
    let chunk = items.div_ceil(size).clamp(1, MAX_TASK_ITEMS);
    let mut start = 0;
    while start < items {
        // One wave: hand a task to each worker thread, compute the last
        // shard inline on this thread, then collect in send order. Result
        // placement depends only on each task's `base`, so completion
        // order is invisible.
        let mut sent = 0;
        while sent + 1 < size && start < items {
            let end = (start + chunk).min(items);
            let mut task = std::mem::take(&mut pool.slots[sent]);
            task.op = op;
            task.base = start;
            task.rows = rows;
            task.items = end - start;
            pack(start..end, &mut task.values);
            pool.threads[sent]
                .cmd_tx
                .send(Command::Run(task))
                .expect("aggregation worker alive"); // lint:allow(panic-unwrap, reason = "worker threads only exit on Stop or pool drop")
            sent += 1;
            start = end;
        }
        if start < items {
            let end = (start + chunk).min(items);
            pack(start..end, col);
            for (i, j) in (start..end).enumerate() {
                out[j] = eval_item(op, &col[i * rows..(i + 1) * rows], sort_buf);
            }
            start = end;
        }
        for slot in 0..sent {
            let task = pool.threads[slot]
                .reply_rx
                .recv()
                .expect("aggregation worker alive"); // lint:allow(panic-unwrap, reason = "worker threads only exit on Stop or pool drop")
            out[task.base..task.base + task.items].copy_from_slice(&task.out);
            pool.slots[slot] = task;
        }
    }
    // lint:end(zero-copy)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Items 0..items, each item j packing rows values j, j+1, …
    fn ramp_pack(rows: usize) -> impl Fn(Range<usize>, &mut Vec<f64>) {
        move |range: Range<usize>, values: &mut Vec<f64>| {
            values.clear();
            for j in range {
                for r in 0..rows {
                    values.push((j + r) as f64 * 0.25 - 1.0);
                }
            }
        }
    }

    fn run_at(size: usize, op: ShardOp, items: usize, rows: usize) -> Vec<f64> {
        let mut pool = ComputePool::default();
        pool.set_size(size);
        let mut col = Vec::new();
        let mut sort_buf = Vec::new();
        let mut out = vec![f64::NAN; items];
        run_sharded(
            &mut pool,
            &mut col,
            &mut sort_buf,
            op,
            items,
            rows,
            &ramp_pack(rows),
            &mut out,
        );
        out
    }

    #[test]
    fn sharded_matches_serial_bitwise_for_every_op() {
        let ops = [
            ShardOp::Median,
            ShardOp::TrimmedMean { trim: 2 },
            ShardOp::MeanAroundMedian { keep: 5 },
            ShardOp::MeanAroundTrimmedMean { trim: 2, keep: 5 },
            ShardOp::KrumScores { k: 3 },
        ];
        for op in ops {
            let serial = run_at(1, op, 257, 9);
            for size in [2, 3, 8, 64] {
                let parallel = run_at(size, op, 257, 9);
                for (a, b) in serial.iter().zip(&parallel) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{op:?} at pool size {size}");
                }
            }
        }
    }

    #[test]
    fn pool_larger_than_items_and_empty_items() {
        let serial = run_at(1, ShardOp::Median, 3, 5);
        let wide = run_at(16, ShardOp::Median, 3, 5);
        assert_eq!(serial, wide);
        assert!(run_at(4, ShardOp::Median, 0, 5).is_empty());
    }

    #[test]
    fn size_one_spawns_no_threads_and_resizing_reclaims_them() {
        let mut pool = ComputePool::default();
        assert_eq!(pool.size(), 1);
        assert!(pool.threads.is_empty());
        pool.set_size(4);
        pool.ensure_threads();
        assert_eq!(pool.threads.len(), 3);
        pool.set_size(2);
        assert_eq!(pool.threads.len(), 1);
        pool.set_size(0); // clamped
        assert_eq!(pool.size(), 1);
        assert!(pool.threads.is_empty());
    }

    #[test]
    fn task_packets_are_recycled_across_calls() {
        let mut pool = ComputePool::default();
        pool.set_size(3);
        let mut col = Vec::new();
        let mut sort_buf = Vec::new();
        let mut out = vec![0.0; 40];
        for _ in 0..3 {
            run_sharded(
                &mut pool,
                &mut col,
                &mut sort_buf,
                ShardOp::Median,
                40,
                7,
                &ramp_pack(7),
                &mut out,
            );
        }
        // Every slot's buffers warmed to the shard shape and stayed.
        for slot in &pool.slots {
            assert!(slot.values.capacity() > 0);
            assert!(slot.out.capacity() > 0);
        }
    }
}
