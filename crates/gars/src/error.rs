//! Error type for aggregation.

use std::fmt;

/// Errors produced by gradient aggregation rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GarError {
    /// No gradients (or zero-dimensional gradients) were submitted.
    Empty,
    /// Gradients have inconsistent dimensions.
    DimensionMismatch {
        /// Dimension of the first gradient.
        expected: usize,
        /// Offending dimension.
        actual: usize,
    },
    /// The assumed number of Byzantine workers exceeds the rule's tolerance.
    TooManyByzantine {
        /// Total number of workers.
        n: usize,
        /// Assumed Byzantine count.
        f: usize,
        /// Maximum tolerated by this rule at this `n`.
        max: usize,
    },
}

impl fmt::Display for GarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GarError::Empty => write!(f, "no gradients to aggregate"),
            GarError::DimensionMismatch { expected, actual } => {
                write!(f, "gradient dimension mismatch: {expected} vs {actual}")
            }
            GarError::TooManyByzantine { n, f: fa, max } => write!(
                f,
                "f = {fa} Byzantine workers among n = {n} exceeds this rule's tolerance ({max})"
            ),
        }
    }
}

impl std::error::Error for GarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GarError::Empty.to_string().contains("no gradients"));
        assert!(GarError::DimensionMismatch {
            expected: 2,
            actual: 3
        }
        .to_string()
        .contains("2 vs 3"));
        let e = GarError::TooManyByzantine {
            n: 11,
            f: 6,
            max: 5,
        };
        assert!(e.to_string().contains("f = 6"));
        assert!(e.to_string().contains("tolerance (5)"));
    }
}
