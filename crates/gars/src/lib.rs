//! Byzantine-resilient gradient aggregation rules (GARs).
//!
//! The parameter server applies a GAR `F` to the `n` submitted gradients
//! each step (Eq. 1 / Eq. 9). This crate implements the statistically-robust
//! GARs the paper analyzes, each paired with its VN-ratio bound
//! `κ_F(n, f)` — the constant of Eq. 2 under which the GAR is certified
//! `(α, f)`-Byzantine resilient:
//!
//! | GAR | `κ_F(n, f)` | tolerance |
//! |-----|-------------|-----------|
//! | [`Mda`] | `(n−f) / (√8·f)` | `2f < n` |
//! | [`Krum`] / [`Bulyan`] | `1/√(2·η(n,f))` | `2f + 2 < n` (Bulyan: `4f + 3 ≤ n`) |
//! | [`CoordinateMedian`] | `1/√(n−f)` | `2f ≤ n−1` |
//! | [`Meamed`] | `1/√(10·(n−f))` | `2f ≤ n−1` |
//! | [`TrimmedMean`] | `√((n−2f)² / (2(f+1)(n−f)))` | `2f < n` |
//! | [`Phocas`] | `√(4 + (n−2f)²/(12(f+1)(n−f)))` | `2f < n` |
//!
//! with `η(n, f) = n − f + (f(n−f−2) + f²(n−f−1)) / (n−2f−2)`.
//!
//! [`Average`] (not Byzantine resilient — Blanchard et al. show no linear
//! rule is) is included as the honest-case baseline, and
//! [`GeometricMedian`] (no published κ in the paper's framework) as an
//! extension point beyond the paper's GAR set.
//!
//! # Example
//!
//! ```
//! use dpbyz_gars::{Gar, Mda};
//! use dpbyz_tensor::Vector;
//!
//! let grads = vec![
//!     Vector::from(vec![1.0, 0.0]),
//!     Vector::from(vec![1.1, 0.1]),
//!     Vector::from(vec![0.9, -0.1]),
//!     Vector::from(vec![100.0, 100.0]), // Byzantine
//! ];
//! let agg = Mda::new().aggregate(&grads, 1).unwrap();
//! assert!(agg.l2_norm() < 2.0); // the outlier was excluded
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod average;
mod bucketing;
mod bulyan;
mod centered_clipping;
mod compute;
mod error;
mod geometric_median;
mod krum;
mod mda;
mod meamed;
mod median;
mod phocas;
mod scratch;
mod staleness;
mod trimmed_mean;
pub mod vn;

pub use average::Average;
pub use bucketing::Bucketing;
pub use bulyan::Bulyan;
pub use centered_clipping::CenteredClipping;
pub use error::GarError;
pub use geometric_median::GeometricMedian;
pub use krum::{Krum, MultiKrum};
pub use mda::Mda;
pub use meamed::Meamed;
pub use median::CoordinateMedian;
pub use phocas::Phocas;
pub use scratch::GarScratch;
pub use staleness::StalenessDamped;
pub use trimmed_mean::TrimmedMean;

use dpbyz_tensor::Vector;

/// A gradient aggregation rule.
///
/// Implementations are deterministic pure functions of the submitted
/// gradients (the paper's GARs are deterministic, §2.1).
pub trait Gar: Send + Sync {
    /// Rule name for reports.
    fn name(&self) -> &'static str;

    /// Aggregates `gradients` assuming at most `f` of them are Byzantine.
    ///
    /// # Errors
    ///
    /// [`GarError::Empty`] for no gradients, [`GarError::DimensionMismatch`]
    /// for ragged input, [`GarError::TooManyByzantine`] if `f` exceeds the
    /// rule's tolerance for `n = gradients.len()`.
    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError>;

    /// Aggregates into a caller-provided output buffer, reusing `scratch`
    /// across calls — the zero-copy hot path the round engine drives every
    /// step. Must produce exactly the same coordinates as
    /// [`Gar::aggregate`], bit for bit.
    ///
    /// The default delegates to `aggregate` (one allocation per call), so
    /// out-of-tree GARs written against the two-method trait keep working
    /// unchanged; every built-in rule overrides it with an
    /// allocation-free implementation. Implementations may leave `out` at
    /// a different dimension on error.
    ///
    /// # Errors
    ///
    /// As [`Gar::aggregate`].
    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        let _ = scratch;
        let result = self.aggregate(gradients, f)?;
        out.copy_from(&result);
        Ok(())
    }

    /// The VN-ratio bound `κ_F(n, f)` of Eq. 2, or `None` when the rule has
    /// no known bound for this `(n, f)` (e.g. `f` beyond tolerance, or
    /// plain averaging).
    fn kappa(&self, n: usize, f: usize) -> Option<f64>;

    /// The largest number of Byzantine workers tolerated among `n`.
    fn max_byzantine(&self, n: usize) -> usize;
}

/// Validates common input conditions; returns the dimension.
pub(crate) fn check_input(gradients: &[Vector]) -> Result<usize, GarError> {
    let first = gradients.first().ok_or(GarError::Empty)?;
    let dim = first.dim();
    if dim == 0 {
        return Err(GarError::Empty);
    }
    for g in gradients {
        if g.dim() != dim {
            return Err(GarError::DimensionMismatch {
                expected: dim,
                actual: g.dim(),
            });
        }
    }
    Ok(dim)
}

/// Every GAR in this crate, boxed — convenient for sweeps over rules.
/// Parameterized rules carry neutral defaults (centered clipping at τ = 1,
/// bucketing over the coordinate median with s = 2, staleness damping over
/// the coordinate median with λ = 0.5).
pub fn all_gars() -> Vec<Box<dyn Gar>> {
    vec![
        Box::new(Average::new()),
        Box::new(Krum::new()),
        Box::new(Mda::new()),
        Box::new(CoordinateMedian::new()),
        Box::new(TrimmedMean::new()),
        Box::new(Meamed::new()),
        Box::new(Phocas::new()),
        Box::new(Bulyan::new()),
        Box::new(GeometricMedian::new()),
        Box::new(CenteredClipping::default()),
        Box::new(Bucketing::new(
            std::sync::Arc::new(CoordinateMedian::new()),
            2,
        )),
        Box::new(StalenessDamped::new(
            std::sync::Arc::new(CoordinateMedian::new()),
            0.5,
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::Prng;
    use proptest::prelude::*;

    /// All robust GARs (excludes Average) with an (n, f) they tolerate.
    fn robust_cases() -> Vec<(Box<dyn Gar>, usize, usize)> {
        vec![
            (Box::new(Krum::new()), 11, 3),
            (Box::new(Mda::new()), 11, 5),
            (Box::new(CoordinateMedian::new()), 11, 5),
            (Box::new(TrimmedMean::new()), 11, 5),
            (Box::new(Meamed::new()), 11, 5),
            (Box::new(Phocas::new()), 11, 5),
            (Box::new(Bulyan::new()), 11, 2),
        ]
    }

    #[test]
    fn all_gars_lists_twelve() {
        assert_eq!(all_gars().len(), 12);
    }

    #[test]
    fn unanimous_input_is_fixed_point() {
        // If every worker submits the same vector, every GAR must return it.
        let g = Vector::from(vec![0.5, -1.5, 2.0]);
        for (gar, n, f) in robust_cases() {
            let grads = vec![g.clone(); n];
            let out = gar.aggregate(&grads, f).unwrap();
            assert!(
                out.approx_eq(&g, 1e-12),
                "{} broke unanimity: {:?}",
                gar.name(),
                out
            );
        }
    }

    #[test]
    fn outlier_resistance_of_all_robust_gars() {
        // f Byzantine gradients at 1e6 must not drag the output far from
        // the honest cluster around the origin.
        let mut rng = Prng::seed_from_u64(1);
        for (gar, n, f) in robust_cases() {
            let mut grads: Vec<Vector> = (0..n - f).map(|_| rng.normal_vector(4, 0.1)).collect();
            for _ in 0..f {
                grads.push(Vector::filled(4, 1e6));
            }
            let out = gar.aggregate(&grads, f).unwrap();
            assert!(
                out.l2_norm() < 10.0,
                "{} hijacked by outliers: ‖out‖ = {}",
                gar.name(),
                out.l2_norm()
            );
        }
    }

    #[test]
    fn average_is_hijacked_by_one_outlier() {
        // The contrast case: averaging is NOT robust (Blanchard et al.).
        let mut grads = vec![Vector::zeros(2); 10];
        grads.push(Vector::filled(2, 1e6));
        let out = Average::new().aggregate(&grads, 0).unwrap();
        assert!(out.l2_norm() > 1e4);
    }

    #[test]
    fn kappa_defined_and_positive_across_tolerance() {
        for (gar, n, _) in robust_cases() {
            for f in 1..=gar.max_byzantine(n) {
                let k = gar
                    .kappa(n, f)
                    .unwrap_or_else(|| panic!("{} has no kappa at f={f}", gar.name()));
                assert!(
                    k > 0.0 && k.is_finite(),
                    "{} kappa at f={f}: {k}",
                    gar.name()
                );
            }
        }
    }

    #[test]
    fn kappa_decreases_with_more_byzantine_for_subset_rules() {
        // For the subset-selection rules (MDA, Krum, Trimmed Mean, Phocas)
        // more Byzantine workers tighten the VN requirement. (Median and
        // Meamed have κ = c/√(n−f), which — per the published formulas —
        // *loosens* as f grows, so they are excluded here.)
        let cases: Vec<Box<dyn Gar>> = vec![
            Box::new(Mda::new()),
            Box::new(Krum::new()),
            Box::new(TrimmedMean::new()),
            Box::new(Phocas::new()),
        ];
        let n = 23;
        for gar in cases {
            let mut prev = f64::INFINITY;
            for f in 1..=gar.max_byzantine(n) {
                let k = gar.kappa(n, f).unwrap();
                assert!(
                    k <= prev + 1e-12,
                    "{}: kappa increased at f={f}: {k} > {prev}",
                    gar.name()
                );
                prev = k;
            }
        }
    }

    #[test]
    fn kappa_none_beyond_tolerance() {
        for (gar, n, _) in robust_cases() {
            let too_many = gar.max_byzantine(n) + 1;
            assert!(
                gar.kappa(n, too_many).is_none(),
                "{} returned kappa beyond tolerance",
                gar.name()
            );
        }
    }

    proptest! {
        #[test]
        fn prop_permutation_invariance(seed in 0u64..500) {
            // GARs must not depend on worker order.
            let mut rng = Prng::seed_from_u64(seed);
            let n = 11;
            let grads: Vec<Vector> = (0..n).map(|_| rng.normal_vector(3, 1.0)).collect();
            let mut shuffled = grads.clone();
            rng.shuffle(&mut shuffled);
            for (gar, _, f) in robust_cases() {
                let a = gar.aggregate(&grads, f).unwrap();
                let b = gar.aggregate(&shuffled, f).unwrap();
                prop_assert!(
                    a.approx_eq(&b, 1e-9),
                    "{} is order-dependent", gar.name()
                );
            }
        }

        #[test]
        fn prop_translation_equivariance(seed in 0u64..300) {
            // F(g₁+t, …, gₙ+t) = F(g₁, …, gₙ) + t for every rule here:
            // distances, medians, trimmed means and subset selections are
            // all translation-equivariant. An aggregation rule without
            // this property would treat the origin as special — a red
            // flag for any gradient method.
            let mut rng = Prng::seed_from_u64(seed);
            let n = 11;
            let grads: Vec<Vector> = (0..n).map(|_| rng.normal_vector(3, 1.0)).collect();
            let t = rng.normal_vector(3, 5.0);
            let shifted: Vec<Vector> = grads.iter().map(|g| g + &t).collect();
            for (gar, _, f) in robust_cases() {
                let base = gar.aggregate(&grads, f).unwrap();
                let moved = gar.aggregate(&shifted, f).unwrap();
                prop_assert!(
                    moved.approx_eq(&(&base + &t), 1e-7),
                    "{} is not translation-equivariant", gar.name()
                );
            }
        }

        #[test]
        fn prop_positive_scaling_equivariance(seed in 0u64..300, scale in 0.1..10.0f64) {
            // F(c·g₁, …, c·gₙ) = c·F(g₁, …, gₙ) for c > 0: rescaling the
            // learning problem must rescale the aggregate.
            let mut rng = Prng::seed_from_u64(seed);
            let n = 11;
            let grads: Vec<Vector> = (0..n).map(|_| rng.normal_vector(3, 1.0)).collect();
            let scaled: Vec<Vector> = grads.iter().map(|g| g.scaled(scale)).collect();
            for (gar, _, f) in robust_cases() {
                let base = gar.aggregate(&grads, f).unwrap();
                let out = gar.aggregate(&scaled, f).unwrap();
                prop_assert!(
                    out.approx_eq(&base.scaled(scale), 1e-6 * scale.max(1.0)),
                    "{} is not scaling-equivariant", gar.name()
                );
            }
        }

        #[test]
        fn prop_duplicated_honest_majority_wins(seed in 0u64..200) {
            // If n−f workers submit the *same* vector h and f submit the
            // same attack vector a, every robust rule must output
            // something much closer to h than to a.
            let mut rng = Prng::seed_from_u64(seed);
            let h = rng.normal_vector(3, 1.0);
            let a = &h + &rng.normal_vector(3, 50.0);
            for (gar, n, f) in robust_cases() {
                let mut grads = vec![h.clone(); n - f];
                grads.extend(std::iter::repeat_n(a.clone(), f));
                let out = gar.aggregate(&grads, f).unwrap();
                prop_assert!(
                    out.l2_distance(&h) <= out.l2_distance(&a),
                    "{} sided with the Byzantine bloc", gar.name()
                );
            }
        }

        #[test]
        fn prop_output_in_coordinate_envelope(seed in 0u64..500) {
            // For every GAR here, each output coordinate lies within the
            // [min, max] envelope of the submitted coordinates (true for
            // means, medians, trimmed means, selections, and averages of
            // subsets).
            let mut rng = Prng::seed_from_u64(seed);
            let n = 11;
            let grads: Vec<Vector> = (0..n).map(|_| rng.normal_vector(3, 1.0)).collect();
            for (gar, _, f) in robust_cases() {
                let out = gar.aggregate(&grads, f).unwrap();
                for j in 0..3 {
                    let lo = grads.iter().map(|g| g[j]).fold(f64::INFINITY, f64::min);
                    let hi = grads.iter().map(|g| g[j]).fold(f64::NEG_INFINITY, f64::max);
                    prop_assert!(
                        out[j] >= lo - 1e-9 && out[j] <= hi + 1e-9,
                        "{} left the envelope on coord {j}", gar.name()
                    );
                }
            }
        }
    }
}
