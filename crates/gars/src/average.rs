//! Plain averaging — the honest-case aggregation (Eq. 1), provably *not*
//! Byzantine resilient.

use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;

/// Arithmetic mean of all submitted gradients.
///
/// Blanchard et al. prove no linear combination of the gradients can be
/// `(α, f)`-Byzantine resilient for `f ≥ 1`; this rule is the baseline the
/// paper's unattacked configurations use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Average;

impl Average {
    /// Creates the rule.
    pub fn new() -> Self {
        Average
    }
}

impl Gar for Average {
    fn name(&self) -> &'static str {
        "average"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        _scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        check_input(gradients)?;
        if f > 0 {
            return Err(GarError::TooManyByzantine {
                n: gradients.len(),
                f,
                max: 0,
            });
        }
        Vector::mean_into(gradients, out).expect("checked non-empty"); // lint:allow(panic-unwrap, reason = "check_input validated a non-empty cohort above")
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, _n: usize, _f: usize) -> Option<f64> {
        // Averaging has no Byzantine-resilience certificate.
        None
    }

    fn max_byzantine(&self, _n: usize) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_gradients() {
        let grads = vec![Vector::from(vec![1.0, 0.0]), Vector::from(vec![3.0, 2.0])];
        let out = Average::new().aggregate(&grads, 0).unwrap();
        assert_eq!(out.as_slice(), &[2.0, 1.0]);
    }

    #[test]
    fn rejects_byzantine_assumption() {
        let grads = vec![Vector::zeros(2); 3];
        assert!(matches!(
            Average::new().aggregate(&grads, 1),
            Err(GarError::TooManyByzantine { max: 0, .. })
        ));
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert_eq!(Average::new().aggregate(&[], 0), Err(GarError::Empty));
        let ragged = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(matches!(
            Average::new().aggregate(&ragged, 0),
            Err(GarError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn no_kappa() {
        assert!(Average::new().kappa(11, 0).is_none());
        assert_eq!(Average::new().max_byzantine(100), 0);
        assert_eq!(Average::new().name(), "average");
    }
}
