//! Geometric median via the smoothed Weiszfeld algorithm.
//!
//! The geometric median `argmin_y Σ‖g_i − y‖` underlies several
//! Byzantine-robust schemes (e.g. Chen et al. 2017's Byzantine gradient
//! descent, and RFA). The paper's Table 1 does not analyze it — no
//! `κ_F(n, f)` in its framework is published — so [`Gar::kappa`] returns
//! `None`; it is included as an extension point for sweeps beyond the
//! paper's GAR set.

use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;

/// Smoothed Weiszfeld iteration parameters.
const MAX_ITERS: usize = 100;
const SMOOTHING: f64 = 1e-9;
const TOLERANCE: f64 = 1e-10;

/// Geometric median aggregation.
///
/// Tolerates any minority of Byzantine workers (`2f < n`) in the breakdown
/// sense: moving the median outside the honest hull requires corrupting at
/// least half the points.
///
/// # Example
///
/// ```
/// use dpbyz_gars::{Gar, GeometricMedian};
/// use dpbyz_tensor::Vector;
///
/// let grads = vec![
///     Vector::from(vec![0.0, 0.0]),
///     Vector::from(vec![0.1, 0.0]),
///     Vector::from(vec![-0.1, 0.0]),
///     Vector::from(vec![1e6, 1e6]),
/// ];
/// let out = GeometricMedian::new().aggregate(&grads, 1).unwrap();
/// assert!(out.l2_norm() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeometricMedian;

impl GeometricMedian {
    /// Creates the rule.
    pub fn new() -> Self {
        GeometricMedian
    }
}

fn check_tolerance(n: usize, f: usize) -> Result<(), GarError> {
    if 2 * f >= n {
        return Err(GarError::TooManyByzantine {
            n,
            f,
            max: n.saturating_sub(1) / 2,
        });
    }
    Ok(())
}

/// One smoothed Weiszfeld step from `y`, written into `next`.
fn weiszfeld_step_into(gradients: &[Vector], y: &Vector, next: &mut Vector) {
    next.resize(y.dim(), 0.0);
    next.fill(0.0);
    let mut denominator = 0.0;
    for g in gradients {
        let w = 1.0 / (g.l2_distance(y) + SMOOTHING);
        next.axpy(w, g);
        denominator += w;
    }
    next.scale(1.0 / denominator);
}

impl Gar for GeometricMedian {
    fn name(&self) -> &'static str {
        "geometric-median"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        check_input(gradients)?;
        check_tolerance(gradients.len(), f)?;
        // Start from the coordinate-wise mean; iterate to fixed point,
        // ping-ponging between `out` and one scratch buffer.
        Vector::mean_into(gradients, out).expect("validated input"); // lint:allow(panic-unwrap, reason = "check_input validated a non-empty cohort above")
        let next = &mut scratch.vec_a;
        for _ in 0..MAX_ITERS {
            weiszfeld_step_into(gradients, out, next);
            let moved = next.l2_distance(out);
            std::mem::swap(next, out);
            if moved < TOLERANCE {
                break;
            }
        }
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, _n: usize, _f: usize) -> Option<f64> {
        // No published VN bound in the paper's framework.
        None
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::Prng;

    #[test]
    fn scalar_geometric_median_is_the_median() {
        // In 1-D the geometric median coincides with the (set-valued)
        // median; for odd counts it is the middle order statistic.
        let grads = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![100.0]),
        ];
        let out = GeometricMedian::new().aggregate(&grads, 1).unwrap();
        assert!((out[0] - 2.0).abs() < 1e-3, "got {}", out[0]);
    }

    #[test]
    fn resists_minority_cluster() {
        let mut rng = Prng::seed_from_u64(1);
        let mut grads: Vec<Vector> = (0..6).map(|_| rng.normal_vector(3, 0.1)).collect();
        for _ in 0..5 {
            grads.push(Vector::filled(3, 1e5));
        }
        let out = GeometricMedian::new().aggregate(&grads, 5).unwrap();
        assert!(out.l2_norm() < 2.0, "hijacked: {}", out.l2_norm());
    }

    #[test]
    fn unanimous_is_fixed_point() {
        let g = Vector::from(vec![3.0, -1.0]);
        let grads = vec![g.clone(); 5];
        let out = GeometricMedian::new().aggregate(&grads, 2).unwrap();
        assert!(out.approx_eq(&g, 1e-6));
    }

    #[test]
    fn minimizes_sum_of_distances_locally() {
        // The output must have a smaller objective than the mean and the
        // coordinate median on an asymmetric cloud.
        let mut rng = Prng::seed_from_u64(2);
        let mut grads: Vec<Vector> = (0..8).map(|_| rng.normal_vector(2, 1.0)).collect();
        grads.push(Vector::filled(2, 30.0));
        let objective = |y: &Vector| grads.iter().map(|g| g.l2_distance(y)).sum::<f64>();
        let gm = GeometricMedian::new().aggregate(&grads, 2).unwrap();
        let mean = Vector::mean(&grads).unwrap();
        assert!(objective(&gm) <= objective(&mean) + 1e-6);
    }

    #[test]
    fn tolerance_and_kappa() {
        let grads = vec![Vector::zeros(1); 10];
        assert!(GeometricMedian::new().aggregate(&grads, 5).is_err());
        assert!(GeometricMedian::new().aggregate(&grads, 4).is_ok());
        assert!(GeometricMedian::new().kappa(11, 5).is_none());
        assert_eq!(GeometricMedian::new().max_byzantine(11), 5);
    }

    #[test]
    fn permutation_invariant_within_tolerance() {
        let mut rng = Prng::seed_from_u64(3);
        let grads: Vec<Vector> = (0..9).map(|_| rng.normal_vector(4, 1.0)).collect();
        let mut shuffled = grads.clone();
        rng.shuffle(&mut shuffled);
        let a = GeometricMedian::new().aggregate(&grads, 3).unwrap();
        let b = GeometricMedian::new().aggregate(&shuffled, 3).unwrap();
        assert!(a.approx_eq(&b, 1e-6));
    }
}
