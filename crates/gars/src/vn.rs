//! The variance-to-norm (VN) ratio — the certification quantity of Eq. 2.
//!
//! `VN = √(E‖G − E[G]‖²) / ‖E[G]‖`; a GAR `F` is certified
//! `(α, f)`-Byzantine resilient when `VN ≤ κ_F(n, f)`. This module provides
//! empirical estimators of the ratio from a sample of honest gradients,
//! used by the experiment harness to measure where training actually sits
//! relative to each GAR's threshold.

use crate::GarError;
use dpbyz_tensor::Vector;

/// An empirical VN-ratio measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VnEstimate {
    /// Estimate of `E‖G − E[G]‖²` (unbiased, around the sample mean).
    pub variance: f64,
    /// Estimate of `‖E[G]‖` (norm of the sample mean).
    pub mean_norm: f64,
}

impl VnEstimate {
    /// The ratio `√variance / mean_norm` (`+∞` if the mean norm is 0).
    pub fn ratio(&self) -> f64 {
        if self.mean_norm == 0.0 {
            f64::INFINITY
        } else {
            self.variance.sqrt() / self.mean_norm
        }
    }

    /// Whether the VN condition holds against a GAR bound `kappa`.
    pub fn satisfies(&self, kappa: f64) -> bool {
        self.ratio() <= kappa
    }
}

/// Estimates the VN ratio from a sample of honest (possibly noisy)
/// gradients of the same step.
///
/// # Errors
///
/// [`GarError::Empty`] with fewer than 2 gradients,
/// [`GarError::DimensionMismatch`] for ragged input.
pub fn estimate(honest_gradients: &[Vector]) -> Result<VnEstimate, GarError> {
    estimate_with(honest_gradients, &mut Vector::default())
}

/// [`estimate`] with a caller-provided mean scratch buffer, so the
/// per-round VN diagnostics allocate nothing at steady state. Bit-identical
/// to [`estimate`] (same mean accumulation, same sum-of-squares order).
///
/// # Errors
///
/// As [`estimate`].
pub fn estimate_with(
    honest_gradients: &[Vector],
    mean: &mut Vector,
) -> Result<VnEstimate, GarError> {
    if honest_gradients.len() < 2 {
        return Err(GarError::Empty);
    }
    let dim = honest_gradients[0].dim();
    for g in honest_gradients {
        if g.dim() != dim {
            return Err(GarError::DimensionMismatch {
                expected: dim,
                actual: g.dim(),
            });
        }
    }
    Vector::mean_into(honest_gradients, mean).expect("validated input"); // lint:allow(panic-unwrap, reason = "the caller validated a non-empty honest cohort")
    let ss: f64 = honest_gradients
        .iter()
        .map(|v| v.l2_distance_squared(mean))
        .sum();
    Ok(VnEstimate {
        variance: ss / (honest_gradients.len() - 1) as f64,
        mean_norm: mean.l2_norm(),
    })
}

/// The *theoretical* VN ratio after DP noise injection (numerator of
/// Eq. 8): `√(σ_G² + d·s²) / ‖∇Q‖`, where `σ_G²` is the intrinsic gradient
/// variance and `s` the per-coordinate noise std.
pub fn ratio_with_noise(gradient_variance: f64, dim: usize, noise_std: f64, grad_norm: f64) -> f64 {
    assert!(gradient_variance >= 0.0 && noise_std >= 0.0 && grad_norm >= 0.0);
    if grad_norm == 0.0 {
        return f64::INFINITY;
    }
    (gradient_variance + dim as f64 * noise_std * noise_std).sqrt() / grad_norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::Prng;

    #[test]
    fn identical_gradients_have_zero_ratio() {
        let grads = vec![Vector::from(vec![1.0, 1.0]); 5];
        let est = estimate(&grads).unwrap();
        assert_eq!(est.variance, 0.0);
        assert_eq!(est.ratio(), 0.0);
        assert!(est.satisfies(0.1));
    }

    #[test]
    fn zero_mean_gives_infinite_ratio() {
        let grads = vec![Vector::from(vec![1.0]), Vector::from(vec![-1.0])];
        let est = estimate(&grads).unwrap();
        assert_eq!(est.mean_norm, 0.0);
        assert!(est.ratio().is_infinite());
        assert!(!est.satisfies(1e12));
    }

    #[test]
    fn estimator_recovers_known_moments() {
        // Gradients ~ N(mu, sigma^2 I_d): E||G - EG||^2 = d sigma^2.
        let mut rng = Prng::seed_from_u64(1);
        let d = 10;
        let mu = Vector::filled(d, 2.0);
        let sigma = 0.5;
        let grads: Vec<Vector> = (0..5000)
            .map(|_| &mu + &rng.normal_vector(d, sigma))
            .collect();
        let est = estimate(&grads).unwrap();
        let expected_var = d as f64 * sigma * sigma;
        assert!(
            (est.variance - expected_var).abs() / expected_var < 0.1,
            "variance {} vs {}",
            est.variance,
            expected_var
        );
        let expected_ratio = expected_var.sqrt() / mu.l2_norm();
        assert!((est.ratio() - expected_ratio).abs() / expected_ratio < 0.1);
    }

    #[test]
    fn noise_increases_theoretical_ratio() {
        let base = ratio_with_noise(1.0, 100, 0.0, 2.0);
        let noisy = ratio_with_noise(1.0, 100, 0.1, 2.0);
        assert!(noisy > base);
        // d·s² = 1 adds up with σ² = 1: ratio = √2/2.
        assert!((noisy - (2f64).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_with_noise_grows_with_dimension() {
        let r100 = ratio_with_noise(0.0, 100, 0.1, 1.0);
        let r400 = ratio_with_noise(0.0, 400, 0.1, 1.0);
        assert!((r400 / r100 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_rejects_degenerate_input() {
        assert!(estimate(&[]).is_err());
        assert!(estimate(&[Vector::zeros(2)]).is_err());
        let ragged = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(matches!(
            estimate(&ragged),
            Err(GarError::DimensionMismatch { .. })
        ));
    }
}
