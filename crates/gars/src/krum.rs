//! Krum and Multi-Krum (Blanchard et al., NeurIPS 2017).

use crate::scratch::mean_indexed_into;
use crate::{check_input, Gar, GarError, GarScratch};
use dpbyz_tensor::Vector;

/// The Krum score of every gradient: the sum of squared distances to its
/// `n − f − 2` nearest neighbours (excluding itself). Allocating
/// convenience wrapper over [`GarScratch::compute_krum_scores`], kept for
/// tests.
#[cfg(test)]
pub(crate) fn krum_scores(gradients: &[Vector], f: usize) -> Vec<f64> {
    let mut scratch = GarScratch::new();
    scratch.set_active_full(gradients.len());
    scratch.compute_krum_scores(gradients, f);
    std::mem::take(&mut scratch.scores)
}

/// Position (into `members`) of the minimal score, breaking exact ties by
/// lexicographic comparison of the gradient coordinates so the result is
/// independent of submission order. Ties are structural, not exotic: with
/// `k = 1` neighbour (the smallest tolerated pool), two mutually-nearest
/// gradients share the same score — their mutual distance.
pub(crate) fn canonical_argmin_indexed(
    scores: &[f64],
    gradients: &[Vector],
    members: &[usize],
) -> usize {
    let mut best = 0;
    for i in 1..scores.len() {
        let ord = scores[i].partial_cmp(&scores[best]).expect("finite scores"); // lint:allow(panic-unwrap, reason = "scores are sums of squared distances of finite gradients; NaN is excluded by the kernel contract")
        if ord == std::cmp::Ordering::Less
            || (ord == std::cmp::Ordering::Equal
                && lex_less(&gradients[members[i]], &gradients[members[best]]))
        {
            best = i;
        }
    }
    best
}

/// Lexicographic strict order on coordinates.
pub(crate) fn lex_less(a: &Vector, b: &Vector) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        if x < y {
            return true;
        }
        if x > y {
            return false;
        }
    }
    false
}

/// Requires `n ≥ 2f + 3` (so that `n − 2f − 2 ≥ 1`).
fn check_tolerance(n: usize, f: usize) -> Result<(), GarError> {
    if n < 2 * f + 3 {
        return Err(GarError::TooManyByzantine {
            n,
            f,
            max: n.saturating_sub(3) / 2,
        });
    }
    Ok(())
}

/// `η(n, f) = n − f + (f(n−f−2) + f²(n−f−1)) / (n − 2f − 2)` — the constant
/// in Krum's (and Bulyan's) VN bound `κ = 1/√(2η)`.
pub(crate) fn eta(n: usize, f: usize) -> f64 {
    let (nf, ff) = (n as f64, f as f64);
    nf - ff + (ff * (nf - ff - 2.0) + ff * ff * (nf - ff - 1.0)) / (nf - 2.0 * ff - 2.0)
}

/// Krum: selects the single gradient with the smallest Krum score.
///
/// # Example
///
/// ```
/// use dpbyz_gars::{Gar, Krum};
/// use dpbyz_tensor::Vector;
///
/// let grads: Vec<Vector> = (0..7)
///     .map(|i| Vector::from(vec![i as f64 * 0.01]))
///     .chain(std::iter::once(Vector::from(vec![1000.0])))
///     .collect();
/// let out = Krum::new().aggregate(&grads, 2).unwrap();
/// assert!(out[0] < 1.0); // the outlier is never selected
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Krum;

impl Krum {
    /// Creates the rule.
    pub fn new() -> Self {
        Krum
    }
}

impl Gar for Krum {
    fn name(&self) -> &'static str {
        "krum"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        check_input(gradients)?;
        check_tolerance(gradients.len(), f)?;
        scratch.set_active_full(gradients.len());
        scratch.compute_krum_scores(gradients, f);
        let best = canonical_argmin_indexed(&scratch.scores, gradients, &scratch.active);
        out.copy_from(&gradients[scratch.active[best]]);
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        if f == 0 || check_tolerance(n, f).is_err() {
            return None;
        }
        Some(1.0 / (2.0 * eta(n, f)).sqrt())
    }

    fn max_byzantine(&self, n: usize) -> usize {
        n.saturating_sub(3) / 2
    }
}

/// Multi-Krum: averages the `m` gradients with the smallest Krum scores
/// (`m = n − f` here, the usual choice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiKrum;

impl MultiKrum {
    /// Creates the rule.
    pub fn new() -> Self {
        MultiKrum
    }
}

impl Gar for MultiKrum {
    fn name(&self) -> &'static str {
        "multi-krum"
    }

    fn aggregate(&self, gradients: &[Vector], f: usize) -> Result<Vector, GarError> {
        let mut out = Vector::default();
        self.aggregate_into(gradients, f, &mut GarScratch::new(), &mut out)?;
        Ok(out)
    }

    fn aggregate_into(
        &self,
        gradients: &[Vector],
        f: usize,
        scratch: &mut GarScratch,
        out: &mut Vector,
    ) -> Result<(), GarError> {
        // lint:begin(zero-copy)
        check_input(gradients)?;
        check_tolerance(gradients.len(), f)?;
        let n = gradients.len();
        let m = n - f;
        scratch.set_active_full(n);
        scratch.compute_krum_scores(gradients, f);
        let GarScratch {
            ref scores,
            ref mut order,
            ..
        } = *scratch;
        order.clear();
        order.extend(0..n);
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("finite scores") // lint:allow(panic-unwrap, reason = "scores are sums of squared distances of finite gradients; NaN is excluded by the kernel contract")
                .then_with(|| {
                    if lex_less(&gradients[a], &gradients[b]) {
                        std::cmp::Ordering::Less
                    } else if lex_less(&gradients[b], &gradients[a]) {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
        });
        mean_indexed_into(gradients, &order[..m], out);
        Ok(())
        // lint:end(zero-copy)
    }

    fn kappa(&self, n: usize, f: usize) -> Option<f64> {
        Krum.kappa(n, f)
    }

    fn max_byzantine(&self, n: usize) -> usize {
        Krum.max_byzantine(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_tensor::Prng;

    fn honest_cluster(rng: &mut Prng, n: usize, dim: usize) -> Vec<Vector> {
        (0..n).map(|_| rng.normal_vector(dim, 0.1)).collect()
    }

    #[test]
    fn output_is_one_of_the_inputs() {
        let mut rng = Prng::seed_from_u64(1);
        let grads = honest_cluster(&mut rng, 9, 3);
        let out = Krum::new().aggregate(&grads, 2).unwrap();
        assert!(grads.iter().any(|g| g == &out));
    }

    #[test]
    fn never_selects_far_outlier() {
        let mut rng = Prng::seed_from_u64(2);
        for _ in 0..20 {
            let mut grads = honest_cluster(&mut rng, 7, 3);
            grads.push(Vector::filled(3, 500.0));
            grads.push(Vector::filled(3, -500.0));
            let out = Krum::new().aggregate(&grads, 2).unwrap();
            assert!(out.l2_norm() < 5.0);
        }
    }

    #[test]
    fn tolerance_boundary() {
        // n = 2f + 3 is the minimum.
        let grads = vec![Vector::zeros(1); 7];
        assert!(Krum::new().aggregate(&grads, 2).is_ok());
        assert!(matches!(
            Krum::new().aggregate(&grads, 3),
            Err(GarError::TooManyByzantine { .. })
        ));
        assert_eq!(Krum::new().max_byzantine(7), 2);
        assert_eq!(Krum::new().max_byzantine(11), 4);
    }

    #[test]
    fn eta_matches_hand_computation() {
        // n = 11, f = 3: η = 8 + (3·6 + 9·7)/3 = 8 + 27 = 35.
        assert!((eta(11, 3) - 35.0).abs() < 1e-12);
        let k = Krum::new().kappa(11, 3).unwrap();
        assert!((k - 1.0 / 70f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn kappa_none_for_zero_or_excess_f() {
        assert!(Krum::new().kappa(11, 0).is_none());
        assert!(Krum::new().kappa(11, 5).is_none());
        assert!(Krum::new().kappa(11, 4).is_some());
    }

    #[test]
    fn multi_krum_averages_good_subset() {
        let mut rng = Prng::seed_from_u64(3);
        let mut grads = honest_cluster(&mut rng, 9, 2);
        grads.push(Vector::filled(2, 100.0));
        let out = MultiKrum::new().aggregate(&grads, 1).unwrap();
        assert!(out.l2_norm() < 12.0, "norm {}", out.l2_norm());
        // Multi-Krum output is generally NOT one of the inputs.
        assert_eq!(MultiKrum::new().name(), "multi-krum");
    }

    #[test]
    fn multi_krum_equals_mean_without_byzantine_room() {
        // With f = 0, m = n, Multi-Krum averages everything.
        let grads = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![3.0]),
        ];
        let out = MultiKrum::new().aggregate(&grads, 0).unwrap();
        assert!((out[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn krum_scores_prefer_cluster_center() {
        // Tight cluster at 0 plus one point at 10: the cluster points must
        // all score lower than the outlier.
        let mut grads = vec![
            Vector::from(vec![0.0]),
            Vector::from(vec![0.1]),
            Vector::from(vec![-0.1]),
            Vector::from(vec![0.05]),
            Vector::from(vec![-0.05]),
            Vector::from(vec![0.02]),
        ];
        grads.push(Vector::from(vec![10.0]));
        let scores = krum_scores(&grads, 2);
        let outlier_score = scores[6];
        for s in &scores[..6] {
            assert!(*s < outlier_score);
        }
    }
}
