//! Aggregation-rule throughput: every GAR across worker counts and model
//! sizes. MDA's exact subset search is the expensive one — this bench
//! documents where the greedy fallback takes over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbyz_gars::{all_gars, Gar, GarScratch, Mda};
use dpbyz_tensor::{Prng, Vector};
use std::hint::black_box;

fn gradients(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = Prng::seed_from_u64(seed);
    (0..n).map(|_| rng.normal_vector(dim, 1.0)).collect()
}

fn bench_all_gars(c: &mut Criterion) {
    let mut group = c.benchmark_group("gar_aggregation_n11_d69");
    let grads = gradients(11, 69, 1);
    for gar in all_gars() {
        // Each rule's own tolerance at the paper topology, capped at the
        // protocol's f = 5, so newly added GARs bench at a valid count.
        let f = gar.max_byzantine(11).min(5);
        group.bench_function(gar.name(), |b| {
            b.iter(|| gar.aggregate(black_box(&grads), f).unwrap())
        });
    }
    group.finish();
}

/// Old vs new hot path: the allocating `aggregate` (fresh distance
/// matrices, cloned pools, fresh outputs — what the engine called before
/// the zero-copy refactor) against `aggregate_into` with a reused
/// `GarScratch` and output buffer (what it calls now).
fn bench_alloc_vs_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("gar_alloc_vs_scratch_n11_d1000");
    let grads = gradients(11, 1_000, 4);
    let mut scratch = GarScratch::new();
    let mut out = Vector::default();
    for gar in all_gars() {
        // Each rule's own tolerance at the paper topology, capped at the
        // protocol's f = 5, so newly added GARs bench at a valid count.
        let f = gar.max_byzantine(11).min(5);
        group.bench_function(format!("{}/alloc", gar.name()), |b| {
            b.iter(|| gar.aggregate(black_box(&grads), f).unwrap())
        });
        group.bench_function(format!("{}/scratch", gar.name()), |b| {
            b.iter(|| {
                gar.aggregate_into(black_box(&grads), f, &mut scratch, &mut out)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_dimension_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mda_dimension_scaling");
    for dim in [69usize, 1_000, 10_000] {
        let grads = gradients(11, dim, 2);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &grads, |b, g| {
            b.iter(|| Mda::new().aggregate(black_box(g), 5).unwrap())
        });
    }
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mda_worker_scaling");
    // n = 11 uses exact enumeration; n = 41 falls back to the greedy
    // 2-approximation (C(41,21) is astronomical).
    for n in [11usize, 21, 41] {
        let f = (n - 1) / 2;
        let grads = gradients(n, 69, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &grads, |b, g| {
            b.iter(|| Mda::new().aggregate(black_box(g), f).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_all_gars,
    bench_alloc_vs_scratch,
    bench_dimension_scaling,
    bench_worker_scaling
);
criterion_main!(benches);
