//! Noise-injection throughput: Gaussian vs Laplace across model sizes,
//! plus gradient clipping and privacy accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbyz_dp::accountant::RdpAccountant;
use dpbyz_dp::{GaussianMechanism, LaplaceMechanism, Mechanism, PrivacyBudget};
use dpbyz_tensor::{Prng, Vector};
use std::hint::black_box;

fn bench_mechanisms(c: &mut Criterion) {
    let budget = PrivacyBudget::new(0.2, 1e-6).unwrap();
    for dim in [69usize, 10_000, 100_000] {
        let mut group = c.benchmark_group(format!("noise_injection_d{dim}"));
        let gradient = Vector::filled(dim, 0.001);
        let gaussian = GaussianMechanism::for_clipped_gradients(budget, 0.01, 50).unwrap();
        let laplace = LaplaceMechanism::for_clipped_gradients(0.2, 0.01, 50, dim).unwrap();
        group.bench_function("gaussian", |b| {
            let mut rng = Prng::seed_from_u64(1);
            b.iter(|| gaussian.perturb(black_box(&gradient), &mut rng))
        });
        group.bench_function("laplace", |b| {
            let mut rng = Prng::seed_from_u64(1);
            b.iter(|| laplace.perturb(black_box(&gradient), &mut rng))
        });
        group.finish();
    }
}

fn bench_clipping(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_clipping");
    for dim in [69usize, 100_000] {
        let mut rng = Prng::seed_from_u64(2);
        let g = rng.normal_vector(dim, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &g, |b, g| {
            b.iter(|| black_box(g).clipped_l2(0.01))
        });
    }
    group.finish();
}

fn bench_accounting(c: &mut Criterion) {
    c.bench_function("rdp_epsilon_conversion", |b| {
        let mut acc = RdpAccountant::new(2.0).unwrap();
        acc.step_many(1000);
        b.iter(|| black_box(&acc).epsilon(1e-6))
    });
}

criterion_group!(benches, bench_mechanisms, bench_clipping, bench_accounting);
criterion_main!(benches);
