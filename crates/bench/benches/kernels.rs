//! Scalar-reference vs vectorized kernel throughput, per kernel, across
//! dimensions 10 / 1 000 / 100 000.
//!
//! The vectorized kernels (`dpbyz_tensor::kernels`) are 4-lane blocked
//! loops with fixed, machine-independent summation order; the references
//! (`kernels::reference`) are the historical sequential folds. This group
//! is the per-kernel evidence behind the `results/BENCH_kernels.json`
//! artifact that `bench_baseline` archives per commit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbyz_tensor::{kernels, Prng, Vector};
use std::hint::black_box;

const DIMS: [usize; 3] = [10, 1_000, 100_000];

fn vectors(dim: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = Prng::seed_from_u64(seed);
    (
        rng.normal_vector(dim, 1.0).into_vec(),
        rng.normal_vector(dim, 1.0).into_vec(),
    )
}

fn bench_reductions(c: &mut Criterion) {
    for dim in DIMS {
        let (a, b) = vectors(dim, 1);
        let mut group = c.benchmark_group(format!("kernels_d{dim}"));
        group.bench_function(BenchmarkId::new("dot", "scalar"), |bench| {
            bench.iter(|| kernels::reference::dot(black_box(&a), black_box(&b)))
        });
        group.bench_function(BenchmarkId::new("dot", "vectorized"), |bench| {
            bench.iter(|| kernels::dot(black_box(&a), black_box(&b)))
        });
        group.bench_function(BenchmarkId::new("l2_norm_squared", "scalar"), |bench| {
            bench.iter(|| kernels::reference::sum_squares(black_box(&a)))
        });
        group.bench_function(BenchmarkId::new("l2_norm_squared", "vectorized"), |bench| {
            bench.iter(|| kernels::sum_squares(black_box(&a)))
        });
        group.bench_function(BenchmarkId::new("squared_distance", "scalar"), |bench| {
            bench.iter(|| kernels::reference::squared_distance(black_box(&a), black_box(&b)))
        });
        group.bench_function(
            BenchmarkId::new("squared_distance", "vectorized"),
            |bench| bench.iter(|| kernels::squared_distance(black_box(&a), black_box(&b))),
        );
        group.bench_function(BenchmarkId::new("sum", "scalar"), |bench| {
            bench.iter(|| kernels::reference::sum(black_box(&a)))
        });
        group.bench_function(BenchmarkId::new("sum", "vectorized"), |bench| {
            bench.iter(|| kernels::sum(black_box(&a)))
        });
        group.finish();
    }
}

fn bench_elementwise(c: &mut Criterion) {
    for dim in DIMS {
        let (a, b) = vectors(dim, 2);
        let mut group = c.benchmark_group(format!("kernels_elementwise_d{dim}"));
        let mut out = vec![0.0; dim];
        group.bench_function(BenchmarkId::new("axpy", "scalar"), |bench| {
            bench.iter(|| {
                for (o, x) in out.iter_mut().zip(&a) {
                    *o += 0.5 * x;
                }
                black_box(out.last());
            })
        });
        group.bench_function(BenchmarkId::new("axpy", "vectorized"), |bench| {
            bench.iter(|| {
                kernels::axpy(&mut out, 0.5, black_box(&a));
                black_box(out.last());
            })
        });
        group.bench_function(BenchmarkId::new("hadamard", "vectorized"), |bench| {
            bench.iter(|| {
                kernels::hadamard(black_box(&a), black_box(&b), &mut out);
                black_box(out.last());
            })
        });
        group.finish();
    }
}

/// The per-pair scalar path vs the batched all-pairs fill the Krum-family
/// scratch drives every round (n = 11, the paper topology).
fn bench_distance_matrix(c: &mut Criterion) {
    for dim in DIMS {
        let mut rng = Prng::seed_from_u64(3);
        let grads: Vec<Vector> = (0..11).map(|_| rng.normal_vector(dim, 1.0)).collect();
        let members: Vec<usize> = (0..grads.len()).collect();
        let mut group = c.benchmark_group(format!("kernels_distance_matrix_n11_d{dim}"));
        let mut out = Vec::new();
        group.bench_function("scalar_per_pair", |bench| {
            bench.iter(|| {
                kernels::reference::pairwise_squared_distances(
                    black_box(&grads),
                    &members,
                    &mut out,
                );
                black_box(out.last());
            })
        });
        group.bench_function("vectorized_batched", |bench| {
            bench.iter(|| {
                kernels::pairwise_squared_distances(black_box(&grads), &members, &mut out);
                black_box(out.last());
            })
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_reductions,
    bench_elementwise,
    bench_distance_matrix
);
criterion_main!(benches);
