//! End-to-end distributed-step throughput: the paper's Fig. 2 protocol
//! (n = 11, d = 69, MDA + ALIE) per configuration, and the batch-size
//! extremes of Figs. 3 and 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbyz_bench::{cell_experiment, Cell};
use dpbyz_dp::{GaussianMechanism, Mechanism};
use dpbyz_gars::{Gar, GarScratch, Mda};
use dpbyz_tensor::{Prng, Vector};
use std::hint::black_box;

/// One protocol cell via the same construction path the figure harness
/// uses, so the bench always measures the configuration the figures run.
fn run_steps(batch: usize, eps: Option<f64>, attack: Option<&'static str>, steps: u32) {
    let cell = Cell {
        label: "bench",
        epsilon: eps,
        attack,
    };
    let exp = cell_experiment(cell, batch, steps, 1200).unwrap();
    black_box(exp.run(1).unwrap());
}

fn bench_configurations(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_20steps_b50");
    group.sample_size(10);
    group.bench_function("clean", |b| b.iter(|| run_steps(50, None, None, 20)));
    group.bench_function("dp", |b| b.iter(|| run_steps(50, Some(0.2), None, 20)));
    group.bench_function("mda_alie", |b| {
        b.iter(|| run_steps(50, None, Some("alie"), 20))
    });
    group.bench_function("dp_mda_alie", |b| {
        b.iter(|| run_steps(50, Some(0.2), Some("alie"), 20))
    });
    group.finish();
}

fn bench_batch_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_20steps_batch_scaling");
    group.sample_size(10);
    for batch in [10usize, 50, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| run_steps(batch, Some(0.2), Some("alie"), 20))
        });
    }
    group.finish();
}

/// Old vs new server-round body (n = 11, d = 69, MDA): the pre-refactor
/// clone-per-round path — clone the submission set, allocate the noise
/// vector, allocate the VN mean, allocate the aggregate — against the
/// zero-copy path over persistent buffers. Both compute identical values;
/// the difference is pure allocation traffic.
fn bench_round_body_old_vs_new(c: &mut Criterion) {
    const N: usize = 11;
    const DIM: usize = 69;
    let mut rng = Prng::seed_from_u64(7);
    let outputs: Vec<Vector> = (0..N).map(|_| rng.normal_vector(DIM, 1.0)).collect();
    let mechanism = GaussianMechanism::with_sigma(0.01).unwrap();
    let gar = Mda::new();

    let mut group = c.benchmark_group("round_body_old_vs_new_n11_d69");
    group.sample_size(20);
    group.bench_function("old_clone_path", |b| {
        let mut rng = Prng::seed_from_u64(8);
        b.iter(|| {
            // What `ServerCore::process_round` + the worker loop did per
            // round before the refactor.
            let submissions: Vec<Vector> = outputs
                .iter()
                .map(|o| mechanism.perturb(o, &mut rng))
                .collect();
            let mean = Vector::mean(&submissions).unwrap();
            let aggregated = gar.aggregate(&submissions, 5).unwrap();
            black_box((mean.l2_norm(), aggregated))
        })
    });
    group.bench_function("new_zero_copy_path", |b| {
        let mut rng = Prng::seed_from_u64(8);
        let mut submissions = outputs.clone();
        let mut mean = Vector::default();
        let mut aggregated = Vector::default();
        let mut scratch = GarScratch::new();
        b.iter(|| {
            for (slot, o) in submissions.iter_mut().zip(&outputs) {
                slot.copy_from(o);
                mechanism.perturb_in_place(slot, &mut rng);
            }
            Vector::mean_into(&submissions, &mut mean).unwrap();
            gar.aggregate_into(&submissions, 5, &mut scratch, &mut aggregated)
                .unwrap();
            black_box(mean.l2_norm())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_configurations,
    bench_batch_sizes,
    bench_round_body_old_vs_new
);
criterion_main!(benches);
