//! End-to-end distributed-step throughput: the paper's Fig. 2 protocol
//! (n = 11, d = 69, MDA + ALIE) per configuration, and the batch-size
//! extremes of Figs. 3 and 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpbyz_bench::{cell_experiment, Cell};
use std::hint::black_box;

/// One protocol cell via the same construction path the figure harness
/// uses, so the bench always measures the configuration the figures run.
fn run_steps(batch: usize, eps: Option<f64>, attack: Option<&'static str>, steps: u32) {
    let cell = Cell {
        label: "bench",
        epsilon: eps,
        attack,
    };
    let exp = cell_experiment(cell, batch, steps, 1200).unwrap();
    black_box(exp.run(1).unwrap());
}

fn bench_configurations(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_20steps_b50");
    group.sample_size(10);
    group.bench_function("clean", |b| b.iter(|| run_steps(50, None, None, 20)));
    group.bench_function("dp", |b| b.iter(|| run_steps(50, Some(0.2), None, 20)));
    group.bench_function("mda_alie", |b| {
        b.iter(|| run_steps(50, None, Some("alie"), 20))
    });
    group.bench_function("dp_mda_alie", |b| {
        b.iter(|| run_steps(50, Some(0.2), Some("alie"), 20))
    });
    group.finish();
}

fn bench_batch_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_20steps_batch_scaling");
    group.sample_size(10);
    for batch in [10usize, 50, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| run_steps(batch, Some(0.2), Some("alie"), 20))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_configurations, bench_batch_sizes);
criterion_main!(benches);
