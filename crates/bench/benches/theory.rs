//! Theory-calculator throughput: Table 1 condition evaluation and the VN
//! estimators — these run inside sweep loops, so they should be cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use dpbyz_core::theory::{table1, vn};
use dpbyz_dp::PrivacyBudget;
use dpbyz_gars::vn as gars_vn;
use dpbyz_tensor::{Prng, Vector};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let budget = PrivacyBudget::new(0.2, 1e-6).unwrap();
    c.bench_function("table1_full_table", |b| {
        b.iter(|| table1::table(black_box(11), 5, 25_600_000, 50, budget))
    });
}

fn bench_vn_theory(c: &mut Criterion) {
    let budget = PrivacyBudget::new(0.2, 1e-6).unwrap();
    c.bench_function("eq8_noisy_vn_ratio", |b| {
        b.iter(|| vn::noisy_vn_ratio(black_box(0.01), 0.01, budget, 0.01, 50, 69))
    });
}

fn bench_vn_empirical(c: &mut Criterion) {
    let mut rng = Prng::seed_from_u64(1);
    let grads: Vec<Vector> = (0..11).map(|_| rng.normal_vector(69, 0.1)).collect();
    c.bench_function("empirical_vn_estimate_n11_d69", |b| {
        b.iter(|| gars_vn::estimate(black_box(&grads)).unwrap())
    });
}

criterion_group!(benches, bench_table1, bench_vn_theory, bench_vn_empirical);
criterion_main!(benches);
