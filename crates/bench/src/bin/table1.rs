//! Regenerates Table 1 (per-GAR necessary conditions under DP) and
//! cross-checks it against *measured* VN ratios from live training.
//!
//! Usage:
//!   cargo run --release -p dpbyz-bench --bin table1
//!   cargo run --release -p dpbyz-bench --bin table1 -- --resnet

use dpbyz::analysis;
use dpbyz::prelude::*;
use dpbyz::report::csv;
use dpbyz::theory::table1::{self, Condition};
use dpbyz_bench::{arg_present, write_csv};

fn main() {
    let budget = PrivacyBudget::new(0.2, 1e-6).expect("paper budget");
    let (n, f, d) = (11usize, 5usize, 69usize);

    println!("=== Table 1 — necessary conditions for the VN certificate under DP");
    println!("    (n = {n}, f = {f}, d = {d}, ε = 0.2, δ = 1e-6)\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "GAR", "b = 10", "b = 50", "b = 500"
    );

    let mut rows = Vec::new();
    for gar in GarKind::ROBUST {
        let mut row = vec![gar.name().to_string()];
        print!("{:<14}", gar.name());
        for b in [10usize, 50, 500] {
            let cell = table1::condition_for(gar, n, f, d, b, budget)
                .map(|r| {
                    let tag = if r.satisfied { "ok" } else { "VIOLATED" };
                    match r.condition {
                        Condition::MinBatch(m) => format!("{tag} (b≥{m:.0})"),
                        Condition::MaxByzantineFraction(t) => format!("{tag} (τ≤{t:.4})"),
                    }
                })
                .unwrap_or_else(|| "-".to_string());
            print!(" {cell:>12}");
            row.push(cell);
        }
        println!();
        rows.push(row);
    }
    write_csv(
        "table1_conditions.csv",
        &csv(&["gar", "b=10", "b=50", "b=500"], &rows),
    );

    println!("\n=== κ_F(n, f) vs measured VN ratios (reduced-scale live runs)");
    println!("    VN(clean) from pre-noise gradients, VN(DP) from submissions");
    println!("    (momentum disabled: Eq. 2/8 are statements about raw per-step gradients)\n");

    // Measure the empirical VN ratio in live runs: unattacked averaging
    // config records honest gradients, without and with DP. Both cells ×
    // seeds run concurrently on the parallel sweep executor (grid order:
    // the `nodp` element first, then ε = 0.2).
    let seeds = [1u64, 2];
    let results = SweepBuilder::over(
        Experiment::builder()
            .batch_size(50)
            .steps(100)
            .dataset_size(2000)
            .momentum(0.0),
    )
    .with_no_dp()
    .epsilons(&[0.2])
    .seeds(&seeds)
    .run()
    .expect("VN measurement cells run");
    let clean_histories = &results.cells[0].histories;
    let dp_histories = &results.cells[1].histories;
    // Average over the productive early phase (near convergence ‖∇Q‖ → 0
    // and every ratio diverges regardless of DP).
    let early_mean = |xs: &[f64]| -> f64 {
        let vals: Vec<f64> = xs
            .iter()
            .copied()
            .filter(|x| x.is_finite())
            .take(15)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let vn_clean: f64 = clean_histories
        .iter()
        .map(|h| early_mean(&h.vn_clean))
        .sum::<f64>()
        / seeds.len() as f64;
    let vn_dp: f64 = dp_histories
        .iter()
        .map(|h| early_mean(&h.vn_submitted))
        .sum::<f64>()
        / seeds.len() as f64;
    println!("  measured VN ratio without DP: {vn_clean:.3}");
    println!(
        "  measured VN ratio with DP:    {vn_dp:.3}   (×{:.1})",
        vn_dp / vn_clean
    );

    let mut kappa_rows = Vec::new();
    println!(
        "\n{:<14} {:>10} {:>16} {:>16}",
        "GAR", "κ(n,f)", "clean VN ≤ κ?", "DP VN ≤ κ?"
    );
    for gar in GarKind::ROBUST {
        let fr = match gar {
            GarKind::Krum | GarKind::MultiKrum => 4,
            GarKind::Bulyan => 2,
            _ => f,
        };
        let Some(kappa) = gar.kappa(n, fr) else {
            continue;
        };
        let c_ok = vn_clean <= kappa;
        let d_ok = vn_dp <= kappa;
        println!(
            "{:<14} {:>10.4} {:>16} {:>16}",
            gar.name(),
            kappa,
            if c_ok { "yes" } else { "no" },
            if d_ok { "yes" } else { "no" }
        );
        kappa_rows.push(vec![
            gar.name().to_string(),
            format!("{kappa:.5}"),
            format!("{vn_clean:.4}"),
            format!("{vn_dp:.4}"),
            c_ok.to_string(),
            d_ok.to_string(),
        ]);
    }
    write_csv(
        "table1_vn_measured.csv",
        &csv(
            &["gar", "kappa", "vn_clean", "vn_dp", "clean_ok", "dp_ok"],
            &kappa_rows,
        ),
    );
    println!("\n  expected shape: the DP column flips certificates to 'no' that the");
    println!("  clean column still grants — Eq. 8's d·s² term at work.");

    if arg_present("--resnet") {
        let ex = analysis::resnet50_example(budget);
        println!("\n=== §3 worked example: ResNet-50 (d = {})", ex.dim);
        println!("    √d = {:.0}  (the paper's 'b > 5000')", ex.sqrt_d);
        for (gar, b) in ex.required_batches {
            match b {
                Some(b) => println!("    {:<14} requires b ≥ {b}", gar.name()),
                None => println!("    {:<14} condition vacuous at f/n = 5/11", gar.name()),
            }
        }
    }
}
