//! One-command reproduction of every artefact, mirroring the paper's
//! "all our results, including the graphs, are reproducible in one
//! command" (§5.2).
//!
//! Usage:
//!   cargo run --release -p dpbyz-bench --bin reproduce             # full scale
//!   cargo run --release -p dpbyz-bench --bin reproduce -- --quick  # smoke
//!
//! Runs, in order: Figures 2–4, Table 1 (+ ResNet-50 example), the
//! Theorem 1 scaling sweeps, the hyper-parameter sweep with ablations, and
//! the §7 future-work measurements. All CSVs land in `results/`.

use std::process::Command;

fn run(bin: &str, extra: &[&str]) -> bool {
    println!("\n════════════════════════════════════════════════════════════");
    println!("  {bin} {}", extra.join(" "));
    println!("════════════════════════════════════════════════════════════");
    let mut args = vec!["run", "--release", "-p", "dpbyz-bench", "--bin", bin, "--"];
    args.extend_from_slice(extra);
    let status = Command::new(env!("CARGO"))
        .args(&args)
        .status()
        .expect("spawn cargo");
    if !status.success() {
        eprintln!("  {bin} FAILED ({status})");
    }
    status.success()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let extra: &[&str] = if quick { &["--quick"] } else { &[] };

    let mut ok = true;
    ok &= run("figures", extra);
    ok &= run("table1", &["--resnet"]);
    ok &= run("theorem1", extra);
    ok &= run("sweep", extra);
    ok &= run("futurework", extra);

    println!("\n════════════════════════════════════════════════════════════");
    if ok {
        println!("  all artefacts regenerated — CSVs in results/, summary in EXPERIMENTS.md");
    } else {
        println!("  some artefacts FAILED — see output above");
        std::process::exit(1);
    }
}
