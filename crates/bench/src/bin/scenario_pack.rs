//! Run a registered scenario pack end-to-end on the parallel sweep
//! executor and print / CSV its per-cell tail losses.
//!
//! The pack system is the registry for *studies*: `paper-core` replays
//! the seed §5 grid, `attack-zoo` crosses every registered GAR with every
//! registered attack, `clipping-study` probes the radius-tuned defenses.
//! See `docs/SCENARIOS.md` (or the `dpbyz::scenarios` rustdoc module) for
//! the full catalog.
//!
//! Usage:
//!   cargo run --release -p dpbyz-bench --bin scenario_pack -- --list
//!   cargo run --release -p dpbyz-bench --bin scenario_pack [-- --pack ID] [--quick] [--pool N] [--dp]
//!
//! `--dp` arms the paper's (0.2, 1e-6) per-step budget on the *base*
//! experiment. Cells that pin their own privacy stance keep it —
//! `paper-core`'s `/dp` cells pin ε = 0.2 and its `/nodp` cells clear
//! the budget outright — while cells that say nothing about DP (the
//! whole `attack-zoo`) inherit the flag.

use dpbyz::prelude::*;
use dpbyz::report::csv;
use dpbyz_bench::{arg_present, arg_value, write_csv};

fn main() {
    if arg_present("--list") {
        println!("registered scenario packs:");
        for id in scenario_pack_ids() {
            let pack = scenario_pack(&id).expect("listed pack resolves");
            println!(
                "  {id:<18} {} cells — {}",
                pack.cells.len(),
                pack.description
            );
        }
        return;
    }

    let pack_id = arg_value("--pack").unwrap_or_else(|| "paper-core".to_string());
    let quick = arg_present("--quick");
    let pool: Option<usize> = arg_value("--pool").map(|v| match v.parse() {
        Ok(n) if n >= 1 => n,
        _ => panic!("--pool takes a positive integer, e.g. --pool 8 (got `{v}`)"),
    });
    let (steps, size, seeds): (u32, usize, Vec<u64>) = if quick {
        (60, 1000, vec![1])
    } else {
        (400, 6000, vec![1, 2, 3])
    };

    let pack = match scenario_pack(&pack_id) {
        Ok(pack) => pack,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    println!(
        "pack `{}` — {} ({} cells × {} seeds, {} steps)",
        pack.id,
        pack.description,
        pack.cells.len(),
        seeds.len(),
        steps
    );

    let mut base = Experiment::builder().steps(steps).dataset_size(size);
    if arg_present("--dp") {
        base = base.epsilon(0.2);
    }
    let mut sweep = SweepBuilder::over(base)
        .with_pack(&pack_id)
        .seeds(&seeds)
        .progress(|e| eprintln!("  [{}/{}] {}", e.completed, e.total, e.job.label));
    if let Some(pool) = pool {
        sweep = sweep.pool_size(pool);
    }
    let results = sweep.run().expect("pack cells run");

    let tail = |run: &CellRun| {
        let k = (steps as usize / 20).max(1);
        run.histories.iter().map(|h| h.tail_loss(k)).sum::<f64>() / run.histories.len() as f64
    };
    println!("\n{:<42} {:>12}", "cell", "tail loss");
    let mut rows = Vec::new();
    for cell in &results.cells {
        let loss = tail(cell);
        println!("{:<42} {loss:>12.6}", cell.label);
        rows.push(vec![cell.label.clone(), format!("{loss}")]);
    }
    write_csv(
        &format!("scenario_pack_{}.csv", pack.id),
        &csv(&["cell", "tail_loss"], &rows),
    );
}
