//! Emits `results/BENCH_baseline.json` and `results/BENCH_kernels.json`:
//! quick, fixed-seed micro-runs of the round-engine and kernel hot paths,
//! so CI can archive small artifacts per commit and future PRs can track
//! the perf trajectory without re-running the full criterion suite.
//!
//! Every measured workload is seeded and fixed-shape; the JSON keys are
//! stable so baselines diff cleanly. Timings are wall-clock medians of
//! `REPEATS` runs (median, not mean: robust to CI scheduler noise).
//!
//! ```text
//! cargo run --release -p dpbyz-bench --bin bench_baseline
//! ```

use dpbyz::gars::GarScratch;
use dpbyz::registry::build_gar;
use dpbyz::ComponentSpec;
use dpbyz_bench::{cell_experiment, results_dir, Cell};
use dpbyz_tensor::{kernels, Prng, Vector};
use std::time::Instant;

const REPEATS: usize = 5;

/// Median wall-clock seconds of `REPEATS` runs of `f`.
fn time_median(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[REPEATS / 2]
}

/// Hand-rolled JSON with a stable key order, no serializer dependency.
fn write_json(file: &str, schema: &str, entries: &[(String, f64)]) {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"schema\": \"{schema}\",\n"));
    json.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    json.push_str("  \"seconds\": {\n");
    for (i, (key, secs)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{key}\": {secs:.9}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    let path = results_dir().join(file);
    std::fs::write(&path, &json).expect("write bench json");
    println!("wrote {}", path.display());
    print!("{json}");
}

/// The kernel-layer micro-baseline: scalar reference vs 4-lane blocked
/// kernel, per kernel, plus the batched distance-matrix fill the
/// Krum-family scratch drives (n = 11). Inner repetition counts are fixed
/// so every entry lands in a robustly timeable range.
/// A two-slice kernel under measurement (one-slice kernels ignore `b`).
type SliceKernel<'a> = &'a dyn Fn(&[f64], &[f64]) -> f64;

fn kernel_entries() -> Vec<(String, f64)> {
    let mut entries: Vec<(String, f64)> = Vec::new();
    // Times `reps` calls of a two-slice kernel and records the median.
    let entry = |entries: &mut Vec<(String, f64)>,
                 key: String,
                 reps: usize,
                 kernel: SliceKernel<'_>,
                 a: &[f64],
                 b: &[f64]| {
        let secs = time_median(|| {
            for _ in 0..reps {
                std::hint::black_box(kernel(std::hint::black_box(a), b));
            }
        });
        entries.push((key, secs));
    };
    for dim in [10usize, 1_000, 100_000] {
        let reps = 20_000_000 / dim.max(1);
        let mut rng = Prng::seed_from_u64(7);
        let a = rng.normal_vector(dim, 1.0).into_vec();
        let b = rng.normal_vector(dim, 1.0).into_vec();
        let cases: [(&str, SliceKernel<'_>); 6] = [
            ("dot/scalar", &|x, y| kernels::reference::dot(x, y)),
            ("dot/vectorized", &kernels::dot),
            ("squared_distance/scalar", &|x, y| {
                kernels::reference::squared_distance(x, y)
            }),
            ("squared_distance/vectorized", &kernels::squared_distance),
            ("l2_norm_squared/scalar", &|x, _| {
                kernels::reference::sum_squares(x)
            }),
            ("l2_norm_squared/vectorized", &|x, _| {
                kernels::sum_squares(x)
            }),
        ];
        for (name, kernel) in cases {
            let (stem, variant) = name.split_once('/').expect("name has a variant");
            entry(
                &mut entries,
                format!("{stem}_d{dim}/{variant}"),
                reps,
                kernel,
                &a,
                &b,
            );
        }
    }

    // The batched all-pairs distance-matrix fill vs the per-pair scalar
    // path (n = 11, d = 1000, 50 rounds per sample — the Krum-family
    // round shape).
    let mut rng = Prng::seed_from_u64(9);
    let grads: Vec<Vector> = (0..11).map(|_| rng.normal_vector(1_000, 1.0)).collect();
    let members: Vec<usize> = (0..grads.len()).collect();
    let mut out = Vec::new();
    let secs = time_median(|| {
        for _ in 0..50 {
            kernels::reference::pairwise_squared_distances(&grads, &members, &mut out);
            std::hint::black_box(out.last());
        }
    });
    entries.push(("distance_matrix_50rounds_n11_d1000/scalar".into(), secs));
    let secs = time_median(|| {
        for _ in 0..50 {
            kernels::pairwise_squared_distances(&grads, &members, &mut out);
            std::hint::black_box(out.last());
        }
    });
    entries.push(("distance_matrix_50rounds_n11_d1000/vectorized".into(), secs));
    entries
}

fn main() {
    let mut entries: Vec<(String, f64)> = Vec::new();

    // End-to-end training cells (20 steps, b = 50, dataset 1200): the
    // figure-harness construction path, on the zero-copy engine.
    for (label, epsilon, attack) in [
        ("training_20steps/clean", None, None),
        ("training_20steps/dp_mda_alie", Some(0.2), Some("alie")),
    ] {
        let cell = Cell {
            label: "baseline",
            epsilon,
            attack,
        };
        let exp = cell_experiment(cell, 50, 20, 1200).expect("baseline cell builds");
        let secs = time_median(|| {
            std::hint::black_box(exp.run(1).expect("baseline cell runs"));
        });
        entries.push((label.to_string(), secs));
    }

    // Aggregation hot path, allocating vs scratch-reusing (n = 11,
    // d = 1000, 50 rounds per sample).
    let mut rng = Prng::seed_from_u64(1);
    let grads: Vec<Vector> = (0..11).map(|_| rng.normal_vector(1_000, 1.0)).collect();
    for (id, f) in [("krum", 4usize), ("mda", 5), ("median", 5), ("bulyan", 2)] {
        let gar = build_gar(&ComponentSpec::new(id)).expect("built-in gar");
        let secs = time_median(|| {
            for _ in 0..50 {
                std::hint::black_box(gar.aggregate(&grads, f).expect("aggregates"));
            }
        });
        entries.push((format!("gar_50rounds_d1000/{id}/alloc"), secs));
        let mut scratch = GarScratch::new();
        let mut out = Vector::default();
        let secs = time_median(|| {
            for _ in 0..50 {
                gar.aggregate_into(&grads, f, &mut scratch, &mut out)
                    .expect("aggregates");
            }
            std::hint::black_box(out.l2_norm());
        });
        entries.push((format!("gar_50rounds_d1000/{id}/scratch"), secs));
    }

    write_json("BENCH_baseline.json", "dpbyz-bench-baseline/v1", &entries);

    // The kernel-layer companion artifact: scalar vs vectorized per
    // kernel, so the perf trajectory of the innermost loops accumulates
    // alongside the end-to-end baseline.
    let kernel = kernel_entries();
    write_json("BENCH_kernels.json", "dpbyz-bench-kernels/v1", &kernel);
}
