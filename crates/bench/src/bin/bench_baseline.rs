//! Emits `results/BENCH_baseline.json`: a quick, fixed-seed micro-run of
//! the round-engine hot paths, so CI can archive one small artifact per
//! commit and future PRs can track the perf trajectory without re-running
//! the full criterion suite.
//!
//! Every measured workload is seeded and fixed-shape; the JSON keys are
//! stable so baselines diff cleanly. Timings are wall-clock medians of
//! `REPEATS` runs (median, not mean: robust to CI scheduler noise).
//!
//! ```text
//! cargo run --release -p dpbyz-bench --bin bench_baseline
//! ```

use dpbyz::gars::GarScratch;
use dpbyz::registry::build_gar;
use dpbyz::ComponentSpec;
use dpbyz_bench::{cell_experiment, results_dir, Cell};
use dpbyz_tensor::{Prng, Vector};
use std::time::Instant;

const REPEATS: usize = 5;

/// Median wall-clock seconds of `REPEATS` runs of `f`.
fn time_median(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[REPEATS / 2]
}

fn main() {
    let mut entries: Vec<(String, f64)> = Vec::new();

    // End-to-end training cells (20 steps, b = 50, dataset 1200): the
    // figure-harness construction path, on the zero-copy engine.
    for (label, epsilon, attack) in [
        ("training_20steps/clean", None, None),
        ("training_20steps/dp_mda_alie", Some(0.2), Some("alie")),
    ] {
        let cell = Cell {
            label: "baseline",
            epsilon,
            attack,
        };
        let exp = cell_experiment(cell, 50, 20, 1200).expect("baseline cell builds");
        let secs = time_median(|| {
            std::hint::black_box(exp.run(1).expect("baseline cell runs"));
        });
        entries.push((label.to_string(), secs));
    }

    // Aggregation hot path, allocating vs scratch-reusing (n = 11,
    // d = 1000, 50 rounds per sample).
    let mut rng = Prng::seed_from_u64(1);
    let grads: Vec<Vector> = (0..11).map(|_| rng.normal_vector(1_000, 1.0)).collect();
    for (id, f) in [("krum", 4usize), ("mda", 5), ("median", 5), ("bulyan", 2)] {
        let gar = build_gar(&ComponentSpec::new(id)).expect("built-in gar");
        let secs = time_median(|| {
            for _ in 0..50 {
                std::hint::black_box(gar.aggregate(&grads, f).expect("aggregates"));
            }
        });
        entries.push((format!("gar_50rounds_d1000/{id}/alloc"), secs));
        let mut scratch = GarScratch::new();
        let mut out = Vector::default();
        let secs = time_median(|| {
            for _ in 0..50 {
                gar.aggregate_into(&grads, f, &mut scratch, &mut out)
                    .expect("aggregates");
            }
            std::hint::black_box(out.l2_norm());
        });
        entries.push((format!("gar_50rounds_d1000/{id}/scratch"), secs));
    }

    // Hand-rolled JSON: stable key order, no serializer dependency.
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"dpbyz-bench-baseline/v1\",\n");
    json.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    json.push_str("  \"seconds\": {\n");
    for (i, (key, secs)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{key}\": {secs:.6}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    let path = results_dir().join("BENCH_baseline.json");
    std::fs::write(&path, &json).expect("write baseline json");
    println!("wrote {}", path.display());
    print!("{json}");
}
