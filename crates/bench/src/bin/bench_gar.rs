//! Emits `results/BENCH_gar.json`: per-GAR aggregation timings, serial vs
//! the intra-round parallel path, at d ∈ {10³, 10⁵, 10⁶} on the paper's
//! n = 11 cohort — plus the untiled vs cache-tiled distance-matrix fill
//! the Krum family drives. Companion artifact to `BENCH_baseline.json`;
//! CI archives it per commit so the perf trajectory of the aggregation
//! layer accumulates alongside the round-engine baseline.
//!
//! Both paths are bit-identical by construction (and digest-pinned in the
//! test suite), so every pair of entries here measures the same
//! computation — the deltas are pure scheduling and cache effects.
//!
//! ```text
//! cargo run --release -p dpbyz-bench --bin bench_gar          # full run
//! cargo run --release -p dpbyz-bench --bin bench_gar -- --test # CI smoke
//! ```

use dpbyz::gars::GarScratch;
use dpbyz::registry::build_gar;
use dpbyz::ComponentSpec;
use dpbyz_bench::results_dir;
use dpbyz_tensor::{kernels, Prng, Vector};
use std::time::Instant;

const REPEATS: usize = 5;

/// The paper's cohort size.
const N: usize = 11;

/// Threads on the parallel entries. The artifact records serial and
/// parallel side by side; on a single-core runner the parallel column
/// simply prices the pool's coordination overhead.
const AGG_THREADS: usize = 4;

/// The GARs with a sharded intra-round path, each at its tolerance for
/// n = 11 (capped at the protocol's f = 5).
const GARS: [(&str, usize); 7] = [
    ("median", 5),
    ("trimmed-mean", 5),
    ("meamed", 5),
    ("phocas", 5),
    ("krum", 4),
    ("multi-krum", 4),
    ("bulyan", 2),
];

/// Median wall-clock seconds of `REPEATS` runs of `f`.
fn time_median(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[REPEATS / 2]
}

/// Hand-rolled JSON with a stable key order, no serializer dependency.
fn write_json(file: &str, schema: &str, entries: &[(String, f64)]) {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"schema\": \"{schema}\",\n"));
    json.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    json.push_str("  \"seconds\": {\n");
    for (i, (key, secs)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{key}\": {secs:.9}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    let path = results_dir().join(file);
    std::fs::write(&path, &json).expect("write bench json");
    println!("wrote {}", path.display());
    print!("{json}");
}

/// Rounds per timing sample, scaled down with the dimension so every
/// entry lands in a robustly timeable range.
fn rounds_for(dim: usize) -> usize {
    (500_000 / dim.max(1)).max(1)
}

/// Appends the serial and parallel entries for one GAR at one dimension,
/// asserting bitwise agreement between the two paths as it goes.
fn gar_entries(entries: &mut Vec<(String, f64)>, id: &str, f: usize, dim: usize, grads: &[Vector]) {
    let gar = build_gar(&ComponentSpec::new(id)).expect("built-in gar");
    let rounds = rounds_for(dim);
    let mut out = Vector::default();

    let mut serial = GarScratch::new();
    let secs = time_median(|| {
        for _ in 0..rounds {
            gar.aggregate_into(grads, f, &mut serial, &mut out)
                .expect("aggregates");
        }
        std::hint::black_box(out.l2_norm());
    });
    entries.push((format!("gar_{rounds}rounds_d{dim}/{id}/serial"), secs));
    let reference = out.clone();

    let mut parallel = GarScratch::new();
    parallel.set_parallelism(AGG_THREADS);
    let secs = time_median(|| {
        for _ in 0..rounds {
            gar.aggregate_into(grads, f, &mut parallel, &mut out)
                .expect("aggregates");
        }
        std::hint::black_box(out.l2_norm());
    });
    entries.push((
        format!("gar_{rounds}rounds_d{dim}/{id}/parallel{AGG_THREADS}"),
        secs,
    ));

    assert!(
        reference
            .iter()
            .zip(out.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "{id}: parallel diverged from serial at d = {dim}"
    );
}

/// Appends the untiled vs cache-tiled all-pairs distance-fill entries at
/// one dimension (the Krum-family O(n²·d) hot spot).
fn distance_entries(entries: &mut Vec<(String, f64)>, dim: usize, grads: &[Vector]) {
    let members: Vec<usize> = (0..grads.len()).collect();
    let rounds = rounds_for(dim);
    let mut out = Vec::new();
    let mut acc = Vec::new();
    let secs = time_median(|| {
        for _ in 0..rounds {
            kernels::pairwise_squared_distances(grads, &members, &mut out);
            std::hint::black_box(out.last());
        }
    });
    entries.push((format!("distance_fill_{rounds}rounds_d{dim}/untiled"), secs));
    let secs = time_median(|| {
        for _ in 0..rounds {
            kernels::pairwise_squared_distances_tiled(grads, &members, &mut out, &mut acc);
            std::hint::black_box(out.last());
        }
    });
    entries.push((format!("distance_fill_{rounds}rounds_d{dim}/tiled"), secs));
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    // Smoke mode (CI): one tiny dimension, every code path exercised —
    // including the serial/parallel bitwise assertion — no artifact.
    let dims: &[usize] = if smoke {
        &[257]
    } else {
        &[1_000, 100_000, 1_000_000]
    };

    let mut entries: Vec<(String, f64)> = Vec::new();
    for &dim in dims {
        let mut rng = Prng::seed_from_u64(21);
        let grads: Vec<Vector> = (0..N).map(|_| rng.normal_vector(dim, 1.0)).collect();
        for (id, f) in GARS {
            gar_entries(&mut entries, id, f, dim, &grads);
        }
        distance_entries(&mut entries, dim, &grads);
    }

    if smoke {
        println!(
            "smoke OK ({} entries measured, artifact skipped)",
            entries.len()
        );
    } else {
        write_json("BENCH_gar.json", "dpbyz-bench-gar/v1", &entries);
    }
}
