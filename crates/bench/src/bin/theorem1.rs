//! Validates Theorem 1's error rate Θ(d·log(1/δ)/(T·b²·ε²)) empirically:
//! one sweep per variable (d, b, ε, T), fitting the log-log slope of
//! measured suboptimality against each.
//!
//! Expected slopes: +1 in d, −2 in b, −2 in ε, −1 in T (and ≈ 0 in d for
//! the no-DP control).
//!
//! Every (cell, seed) job across all five sweeps is fanned over one
//! parallel executor run; results are read back by label.
//!
//! Usage: cargo run --release -p dpbyz-bench --bin theorem1 [-- --quick]

use dpbyz::report::csv;
use dpbyz::sweep::{CellRun, SweepBuilder, SweepResults};
use dpbyz::theory::convergence;
use dpbyz::{Experiment, PrivacyBudget};
use dpbyz_bench::{arg_present, write_csv};

/// Measured suboptimality E[Q(w_{T+1})] − Q* averaged over a cell's seeds.
fn suboptimality(run: &CellRun) -> f64 {
    let dist = run
        .experiment
        .mean_estimation_instance()
        .expect("mean estimation workload");
    let total: f64 = run
        .histories
        .iter()
        .map(|h| 0.5 * h.final_params.l2_distance_squared(dist.true_mean()))
        .sum();
    total / run.histories.len() as f64
}

fn measured(results: &SweepResults, label: &str) -> f64 {
    suboptimality(results.get(label).expect("cell ran"))
}

/// Least-squares slope of log(y) against log(x).
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

const DIMS: [usize; 4] = [8, 32, 128, 512];
const BATCHES: [usize; 4] = [5, 10, 20, 40];
const EPSILONS: [f64; 4] = [0.05, 0.1, 0.2, 0.4];
const HORIZONS: [u32; 4] = [100, 200, 400, 800];

fn main() {
    let quick = arg_present("--quick");
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    };
    let budget = PrivacyBudget::new(0.2, 1e-6).expect("paper budget");

    // Assemble every cell of all five sweeps, then run them in one
    // parallel executor pass (they are all independent mean-estimation
    // instances — exactly the executor's job).
    let theorem1_cell = |dim: usize, budget: Option<PrivacyBudget>, steps: u32, b: usize| {
        Experiment::theorem1(dim, 1.0, budget, steps, b, 1).expect("valid spec")
    };
    let mut sweep = SweepBuilder::new().seeds(&seeds);
    for &d in &DIMS {
        sweep = sweep.cell(format!("d{d}"), theorem1_cell(d, Some(budget), 400, 10));
        sweep = sweep.cell(format!("d_nodp{d}"), theorem1_cell(d, None, 400, 10));
    }
    for &b in &BATCHES {
        sweep = sweep.cell(format!("b{b}"), theorem1_cell(64, Some(budget), 400, b));
    }
    for &e in &EPSILONS {
        let bud = PrivacyBudget::new(e, 1e-6).expect("valid");
        sweep = sweep.cell(format!("eps{e}"), theorem1_cell(64, Some(bud), 400, 10));
    }
    for &t in &HORIZONS {
        sweep = sweep.cell(format!("T{t}"), theorem1_cell(64, Some(budget), t, 10));
    }
    let results = sweep.run().expect("theorem 1 cells run");

    println!("=== Theorem 1 scaling sweeps (mean estimation, σ² = 1, γ_t = 1/t, n = 1)");
    let mut all_rows: Vec<Vec<String>> = Vec::new();

    // Sweep d.
    let mut pts = Vec::new();
    println!("\n-- dimension sweep (T = 400, b = 10, ε = 0.2) — paper: error ∝ d");
    for &d in &DIMS {
        let err = measured(&results, &format!("d{d}"));
        let lo = convergence::lower_bound(1.0, 2.0, 400, 10, d, Some(budget));
        println!("  d = {d:>4}: measured {err:>12.4}, thm lower {lo:>12.4}");
        pts.push((d as f64, err));
        all_rows.push(vec![
            "d".into(),
            d.to_string(),
            format!("{err:.6}"),
            format!("{lo:.6}"),
        ]);
    }
    let slope_d = loglog_slope(&pts);
    println!("  log-log slope in d: {slope_d:.2}   (paper: +1)");

    // No-DP control: flat in d.
    let mut pts0 = Vec::new();
    println!("\n-- no-DP control (same sweep) — paper: O(1/T), dimension-free");
    for &d in &DIMS {
        let err = measured(&results, &format!("d_nodp{d}"));
        println!("  d = {d:>4}: measured {err:>12.6}");
        pts0.push((d as f64, err.max(1e-12)));
        all_rows.push(vec![
            "d_nodp".into(),
            d.to_string(),
            format!("{err:.8}"),
            String::new(),
        ]);
    }
    let slope_d0 = loglog_slope(&pts0);
    println!("  log-log slope in d: {slope_d0:.2}   (paper: ~0)");

    // Sweep b.
    let mut ptsb = Vec::new();
    println!("\n-- batch-size sweep (d = 64, T = 400, ε = 0.2) — paper: error ∝ 1/b²");
    for &b in &BATCHES {
        let err = measured(&results, &format!("b{b}"));
        println!("  b = {b:>3}: measured {err:>12.4}");
        ptsb.push((b as f64, err));
        all_rows.push(vec![
            "b".into(),
            b.to_string(),
            format!("{err:.6}"),
            String::new(),
        ]);
    }
    let slope_b = loglog_slope(&ptsb);
    println!("  log-log slope in b: {slope_b:.2}   (paper: -2)");

    // Sweep ε.
    let mut ptse = Vec::new();
    println!("\n-- ε sweep (d = 64, T = 400, b = 10) — paper: error ∝ 1/ε²");
    for &e in &EPSILONS {
        let err = measured(&results, &format!("eps{e}"));
        println!("  ε = {e:>5.2}: measured {err:>12.4}");
        ptse.push((e, err));
        all_rows.push(vec![
            "eps".into(),
            e.to_string(),
            format!("{err:.6}"),
            String::new(),
        ]);
    }
    let slope_e = loglog_slope(&ptse);
    println!("  log-log slope in ε: {slope_e:.2}   (paper: -2)");

    // Sweep T.
    let mut ptst = Vec::new();
    println!("\n-- horizon sweep (d = 64, b = 10, ε = 0.2) — paper: error ∝ 1/T");
    for &t in &HORIZONS {
        let err = measured(&results, &format!("T{t}"));
        println!("  T = {t:>4}: measured {err:>12.4}");
        ptst.push((t as f64, err));
        all_rows.push(vec![
            "T".into(),
            t.to_string(),
            format!("{err:.6}"),
            String::new(),
        ]);
    }
    let slope_t = loglog_slope(&ptst);
    println!("  log-log slope in T: {slope_t:.2}   (paper: -1)");

    write_csv(
        "theorem1_sweeps.csv",
        &csv(&["sweep", "value", "measured", "thm_lower"], &all_rows),
    );

    println!("\n=== summary of fitted slopes (paper's Θ(d·log(1/δ)/(T·b²·ε²))):");
    println!("  d: {slope_d:+.2} (expect +1)   no-DP d: {slope_d0:+.2} (expect 0)");
    println!("  b: {slope_b:+.2} (expect -2)   ε: {slope_e:+.2} (expect -2)   T: {slope_t:+.2} (expect -1)");
}
