//! Validates Theorem 1's error rate Θ(d·log(1/δ)/(T·b²·ε²)) empirically:
//! one sweep per variable (d, b, ε, T), fitting the log-log slope of
//! measured suboptimality against each.
//!
//! Expected slopes: +1 in d, −2 in b, −2 in ε, −1 in T (and ≈ 0 in d for
//! the no-DP control).
//!
//! Usage: cargo run --release -p dpbyz-bench --bin theorem1 [-- --quick]

use dpbyz::report::csv;
use dpbyz::theory::convergence;
use dpbyz::{Experiment, PrivacyBudget};
use dpbyz_bench::{arg_present, write_csv};

/// Measured suboptimality E[Q(w_{T+1})] − Q* averaged over seeds.
fn measure(dim: usize, budget: Option<PrivacyBudget>, steps: u32, b: usize, seeds: &[u64]) -> f64 {
    let exp = Experiment::theorem1(dim, 1.0, budget, steps, b, 1).expect("valid spec");
    let dist = exp.mean_estimation_instance().expect("mean estimation");
    let mut total = 0.0;
    for &s in seeds {
        let h = exp.run(s).expect("run succeeds");
        total += 0.5 * h.final_params.l2_distance_squared(dist.true_mean());
    }
    total / seeds.len() as f64
}

/// Least-squares slope of log(y) against log(x).
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    let quick = arg_present("--quick");
    let seeds: Vec<u64> = if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    };
    let budget = PrivacyBudget::new(0.2, 1e-6).expect("paper budget");

    println!("=== Theorem 1 scaling sweeps (mean estimation, σ² = 1, γ_t = 1/t, n = 1)");
    let mut all_rows: Vec<Vec<String>> = Vec::new();

    // Sweep d.
    let dims = [8usize, 32, 128, 512];
    let mut pts = Vec::new();
    println!("\n-- dimension sweep (T = 400, b = 10, ε = 0.2) — paper: error ∝ d");
    for &d in &dims {
        let err = measure(d, Some(budget), 400, 10, &seeds);
        let lo = convergence::lower_bound(1.0, 2.0, 400, 10, d, Some(budget));
        println!("  d = {d:>4}: measured {err:>12.4}, thm lower {lo:>12.4}");
        pts.push((d as f64, err));
        all_rows.push(vec![
            "d".into(),
            d.to_string(),
            format!("{err:.6}"),
            format!("{lo:.6}"),
        ]);
    }
    let slope_d = loglog_slope(&pts);
    println!("  log-log slope in d: {slope_d:.2}   (paper: +1)");

    // No-DP control: flat in d.
    let mut pts0 = Vec::new();
    println!("\n-- no-DP control (same sweep) — paper: O(1/T), dimension-free");
    for &d in &dims {
        let err = measure(d, None, 400, 10, &seeds);
        println!("  d = {d:>4}: measured {err:>12.6}");
        pts0.push((d as f64, err.max(1e-12)));
        all_rows.push(vec![
            "d_nodp".into(),
            d.to_string(),
            format!("{err:.8}"),
            String::new(),
        ]);
    }
    let slope_d0 = loglog_slope(&pts0);
    println!("  log-log slope in d: {slope_d0:.2}   (paper: ~0)");

    // Sweep b.
    let batches = [5usize, 10, 20, 40];
    let mut ptsb = Vec::new();
    println!("\n-- batch-size sweep (d = 64, T = 400, ε = 0.2) — paper: error ∝ 1/b²");
    for &b in &batches {
        let err = measure(64, Some(budget), 400, b, &seeds);
        println!("  b = {b:>3}: measured {err:>12.4}");
        ptsb.push((b as f64, err));
        all_rows.push(vec![
            "b".into(),
            b.to_string(),
            format!("{err:.6}"),
            String::new(),
        ]);
    }
    let slope_b = loglog_slope(&ptsb);
    println!("  log-log slope in b: {slope_b:.2}   (paper: -2)");

    // Sweep ε.
    let epsilons = [0.05f64, 0.1, 0.2, 0.4];
    let mut ptse = Vec::new();
    println!("\n-- ε sweep (d = 64, T = 400, b = 10) — paper: error ∝ 1/ε²");
    for &e in &epsilons {
        let bud = PrivacyBudget::new(e, 1e-6).expect("valid");
        let err = measure(64, Some(bud), 400, 10, &seeds);
        println!("  ε = {e:>5.2}: measured {err:>12.4}");
        ptse.push((e, err));
        all_rows.push(vec![
            "eps".into(),
            e.to_string(),
            format!("{err:.6}"),
            String::new(),
        ]);
    }
    let slope_e = loglog_slope(&ptse);
    println!("  log-log slope in ε: {slope_e:.2}   (paper: -2)");

    // Sweep T.
    let horizons = [100u32, 200, 400, 800];
    let mut ptst = Vec::new();
    println!("\n-- horizon sweep (d = 64, b = 10, ε = 0.2) — paper: error ∝ 1/T");
    for &t in &horizons {
        let err = measure(64, Some(budget), t, 10, &seeds);
        println!("  T = {t:>4}: measured {err:>12.4}");
        ptst.push((t as f64, err));
        all_rows.push(vec![
            "T".into(),
            t.to_string(),
            format!("{err:.6}"),
            String::new(),
        ]);
    }
    let slope_t = loglog_slope(&ptst);
    println!("  log-log slope in T: {slope_t:.2}   (paper: -1)");

    write_csv(
        "theorem1_sweeps.csv",
        &csv(&["sweep", "value", "measured", "thm_lower"], &all_rows),
    );

    println!("\n=== summary of fitted slopes (paper's Θ(d·log(1/δ)/(T·b²·ε²))):");
    println!("  d: {slope_d:+.2} (expect +1)   no-DP d: {slope_d0:+.2} (expect 0)");
    println!("  b: {slope_b:+.2} (expect -2)   ε: {slope_e:+.2} (expect -2)   T: {slope_t:+.2} (expect -1)");
}
