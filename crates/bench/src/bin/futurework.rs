//! The paper's §7 future-work directions, measured.
//!
//! 1. **Exponential gradient averaging** (server-side EMA) under DP+ALIE —
//!    does variance reduction claw back any of the lost robustness?
//! 2. **Dynamic sampling** (growing batches) under DP+ALIE.
//! 3. **Shuffle amplification** \[44\]: how much local noise a shuffler
//!    would save at realistic population sizes.
//!
//! Usage: cargo run --release -p dpbyz-bench --bin futurework [-- --quick]

use dpbyz::dp::amplification;
use dpbyz::prelude::*;
use dpbyz::report::csv;
use dpbyz::BatchGrowth;
use dpbyz_bench::{arg_present, write_csv};

fn dp_alie(batch: usize, steps: u32, size: usize) -> Experiment {
    Experiment::builder()
        .batch_size(batch)
        .steps(steps)
        .dataset_size(size)
        .gar("mda")
        .attack("alie")
        .epsilon(0.2)
        .build()
        .expect("valid spec")
}

fn mean_tail_and_acc(exp: &Experiment, seeds: &[u64]) -> (f64, f64) {
    let hs = exp.run_seeds(seeds).expect("runs");
    let k = (hs[0].train_loss.len() / 20).max(1);
    let loss = hs.iter().map(|h| h.tail_loss(k)).sum::<f64>() / hs.len() as f64;
    let acc = hs
        .iter()
        .map(|h| h.final_accuracy().unwrap_or(f64::NAN))
        .sum::<f64>()
        / hs.len() as f64;
    (loss, acc)
}

fn main() {
    let quick = arg_present("--quick");
    let (steps, size, seeds): (u32, usize, Vec<u64>) = if quick {
        (120, 2000, vec![1, 2])
    } else {
        (500, 8000, vec![1, 2, 3])
    };

    // Deep in the infeasible region (b = 50, ε = 0.2) every variant
    // saturates at the same collapsed fixed point — itself a finding
    // (variance reduction cannot rescue a dead certificate). The boundary
    // configuration (ε = 0.4, b = 150, where the sweep shows partial
    // protection) is where the extensions can move the needle.
    println!("=== §7 extension 1: gradient EMA under DP + ALIE");
    let mut rows = Vec::new();
    for (regime, batch, eps) in [
        ("collapsed (ε=0.2, b=50)", 50, 0.2),
        ("boundary (ε=0.4, b=150)", 150, 0.4),
    ] {
        let mut base = dp_alie(batch, steps, size);
        base.budget = Some(PrivacyBudget::new(eps, 1e-6).expect("valid"));
        let (l0, a0) = mean_tail_and_acc(&base, &seeds);
        println!(
            "  {regime:<26} no EMA   : loss {l0:.5}, acc {:.1}%",
            a0 * 100.0
        );
        rows.push(vec![
            regime.into(),
            "none".into(),
            format!("{l0:.5}"),
            format!("{a0:.4}"),
        ]);
        for beta in [0.9, 0.99] {
            let mut exp = base.clone();
            exp.config.gradient_ema = Some(beta);
            let (loss, acc) = mean_tail_and_acc(&exp, &seeds);
            println!(
                "  {regime:<26} EMA β={beta:<5}: loss {loss:.5}, acc {:.1}%",
                acc * 100.0
            );
            rows.push(vec![
                regime.into(),
                format!("{beta}"),
                format!("{loss:.5}"),
                format!("{acc:.4}"),
            ]);
        }
    }
    write_csv(
        "futurework_ema.csv",
        &csv(&["regime", "ema_beta", "tail_loss", "accuracy"], &rows),
    );

    println!("\n=== §7 extension 2: dynamic batch growth under DP(ε=0.4) + ALIE");
    let mut rows = Vec::new();
    for (label, growth) in [
        ("constant b=50", None),
        ("b=50 ×1.01/step, cap 500", Some((1.01, 500))),
        ("b=50 ×1.02/step, cap 500", Some((1.02, 500))),
    ] {
        let mut exp = dp_alie(50, steps, size);
        exp.budget = Some(PrivacyBudget::new(0.4, 1e-6).expect("valid"));
        if let Some((factor, max)) = growth {
            exp.config.batch_growth = Some(BatchGrowth { factor, max });
        }
        let (loss, acc) = mean_tail_and_acc(&exp, &seeds);
        println!(
            "  {label:<26}: tail loss {loss:.5}, acc {:.1}%",
            acc * 100.0
        );
        rows.push(vec![label.into(), format!("{loss:.5}")]);
    }
    write_csv(
        "futurework_batchgrowth.csv",
        &csv(&["schedule", "tail_loss"], &rows),
    );
    println!("  note: growth only shrinks σ_G (noise stays calibrated to b₁ —");
    println!("  conservative DP); recalibrating per step would also shrink d·s².");

    println!("\n=== §7 extension 3: shuffle amplification [44] — local ε₀ budget per");
    println!("    worker to hit a central (ε, δ = 1e-6) target:");
    let mut rows = Vec::new();
    for eps_central in [0.01f64, 0.05, 0.2] {
        for n in [20_000usize, 100_000, 1_000_000] {
            match amplification::local_epsilon_budget(eps_central, n, 1e-6) {
                Ok(local) => {
                    let factor = local / eps_central;
                    let capped = if local >= 0.5 { " (theorem cap)" } else { "" };
                    println!(
                        "  central ε = {eps_central:<5} n = {n:>8}: ε₀ ≤ {local:.3}  (noise ÷{factor:.1}){capped}"
                    );
                    rows.push(vec![
                        eps_central.to_string(),
                        n.to_string(),
                        format!("{local:.4}"),
                        format!("{factor:.2}"),
                    ]);
                }
                Err(e) => println!("  central ε = {eps_central:<5} n = {n:>8}: inapplicable ({e})"),
            }
        }
    }
    write_csv(
        "futurework_shuffle.csv",
        &csv(
            &["central_epsilon", "n", "local_epsilon", "noise_reduction"],
            &rows,
        ),
    );
    println!("\n  reading: an anonymizing shuffler relaxes each worker's noise by");
    println!("  ~√n — directly attacking the d·s² term of Eq. 8, as §7 anticipates.");
}
