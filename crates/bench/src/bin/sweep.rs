//! The "full version" hyper-parameter sweep plus the DESIGN.md ablations.
//!
//! 1. ε × b grid: tail loss of the DP+ALIE configuration — the graceful
//!    accuracy/privacy trade-off (§5.2's second takeaway).
//! 2. Ablation A — attack visibility: colluders observing submitted
//!    (noisy) vs pre-noise honest gradients.
//! 3. Ablation B — momentum placement: server-side vs worker-side.
//! 4. Ablation C — noise mechanism: Gaussian vs Laplace (Remark 3: the
//!    antagonism is mechanism-independent).
//!
//! All cells are fanned over the parallel sweep executor
//! (`dpbyz::sweep`): the ε × b grid is one `SweepBuilder` grid, the three
//! ablations ride in a second executor run as explicit cells.
//!
//! Usage:
//!   cargo run --release -p dpbyz-bench --bin sweep [-- --quick]
//!   cargo run --release -p dpbyz-bench --bin sweep -- --quick --pool 8
//!
//! `--pool N` overrides the executor's thread count (default: the
//! machine's available parallelism). `--pool 1` reproduces the old
//! serial loop's schedule — handy for timing the parallel speedup; the
//! results are bit-identical either way.

use dpbyz::prelude::*;
use dpbyz::report::csv;
use dpbyz::AttackVisibility;
use dpbyz_bench::{arg_present, arg_value, write_csv};

/// Tail training loss (last 5% of steps) of one cell, averaged over seeds.
fn mean_tail(run: &CellRun) -> f64 {
    let k = (run.histories[0].train_loss.len() / 20).max(1);
    run.histories.iter().map(|h| h.tail_loss(k)).sum::<f64>() / run.histories.len() as f64
}

fn base(eps: Option<f64>, steps: u32, size: usize) -> ExperimentBuilder {
    let mut builder = Experiment::builder()
        .steps(steps)
        .dataset_size(size)
        .gar("mda")
        .attack("alie");
    if let Some(eps) = eps {
        builder = builder.epsilon(eps);
    }
    builder
}

fn main() {
    let quick = arg_present("--quick");
    let pool: Option<usize> = arg_value("--pool").map(|v| match v.parse() {
        Ok(n) if n >= 1 => n,
        _ => panic!("--pool takes a positive integer, e.g. --pool 8 (got `{v}`)"),
    });
    let (steps, size, seeds): (u32, usize, Vec<u64>) = if quick {
        (120, 2000, vec![1, 2])
    } else {
        (500, 8000, vec![1, 2, 3])
    };
    let sized = |sweep: SweepBuilder| match pool {
        Some(pool) => sweep.pool_size(pool),
        None => sweep,
    };

    // 1. ε × b grid under ALIE + MDA: one parallel grid, deterministic
    // ε-major/b-minor order regardless of which worker finishes first.
    let epsilons = [0.05f64, 0.1, 0.2, 0.4, 0.8];
    let batches = [10usize, 25, 50, 150, 500];
    let grid = sized(
        SweepBuilder::over(base(None, steps, size))
            .epsilons(&epsilons)
            .batch_sizes(&batches)
            .seeds(&seeds),
    )
    .run()
    .expect("sweep grid runs");

    println!("=== ε × b sweep: tail training loss of DP+ALIE with MDA (lower = better)");
    print!("{:>8}", "ε \\ b");
    for b in batches {
        print!(" {b:>9}");
    }
    println!();
    let mut rows = Vec::new();
    let mut cells = grid.cells.iter();
    for &e in &epsilons {
        print!("{e:>8.2}");
        let mut row = vec![format!("{e}")];
        for _ in &batches {
            let loss = mean_tail(cells.next().expect("grid covers ε × b"));
            print!(" {loss:>9.4}");
            row.push(format!("{loss:.5}"));
        }
        println!();
        rows.push(row);
    }
    let mut header = vec!["epsilon".to_string()];
    header.extend(batches.iter().map(|b| format!("b{b}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    write_csv("sweep_eps_batch.csv", &csv(&header_refs, &rows));
    println!("  expected shape: losses fall monotonically toward the bottom-right");
    println!("  (larger ε, larger b) — a graceful trade-off, not a cliff.\n");

    // 2–4. The three ablations: six explicit cells, one executor run.
    let mut ablations = sized(SweepBuilder::new().seeds(&seeds));
    for vis in [AttackVisibility::Submitted, AttackVisibility::PreNoise] {
        let mut exp = base(Some(0.2), steps, size).build().expect("valid spec");
        exp.config.attack_visibility = vis;
        ablations = ablations.cell(format!("vis:{vis:?}"), exp);
    }
    for mode in [MomentumMode::Server, MomentumMode::Worker] {
        let mut exp = base(None, steps, size).build().expect("valid spec");
        exp.config.momentum_mode = mode;
        ablations = ablations.cell(format!("mom:{mode:?}"), exp);
    }
    for mech in ["gaussian", "laplace"] {
        let exp = base(Some(0.2), steps, size)
            .mechanism(mech)
            .build()
            .expect("valid spec");
        ablations = ablations.cell(format!("mech:{mech}"), exp);
    }
    let ablations = ablations.run().expect("ablation cells run");
    let tail_of = |label: &str| mean_tail(ablations.get(label).expect("cell ran"));

    println!("=== ablation A: attacker sees submitted (noisy) vs pre-noise gradients");
    let mut rows = Vec::new();
    for vis in [AttackVisibility::Submitted, AttackVisibility::PreNoise] {
        let loss = tail_of(&format!("vis:{vis:?}"));
        println!("  {vis:?}: tail loss {loss:.5}");
        rows.push(vec![format!("{vis:?}"), format!("{loss:.5}")]);
    }
    write_csv(
        "ablation_visibility.csv",
        &csv(&["visibility", "tail_loss"], &rows),
    );

    println!("\n=== ablation B: momentum at the server vs at the workers");
    let mut rows = Vec::new();
    for mode in [MomentumMode::Server, MomentumMode::Worker] {
        let loss = tail_of(&format!("mom:{mode:?}"));
        println!("  {mode:?}: tail loss {loss:.5} (no DP, ALIE)");
        rows.push(vec![format!("{mode:?}"), format!("{loss:.5}")]);
    }
    write_csv(
        "ablation_momentum.csv",
        &csv(&["momentum_mode", "tail_loss"], &rows),
    );

    println!("\n=== ablation C: Gaussian vs Laplace noise (Remark 3)");
    let mut rows = Vec::new();
    for mech in ["gaussian", "laplace"] {
        let loss = tail_of(&format!("mech:{mech}"));
        println!("  {mech}: tail loss {loss:.5}");
        rows.push(vec![mech.to_string(), format!("{loss:.5}")]);
    }
    write_csv(
        "ablation_mechanism.csv",
        &csv(&["mechanism", "tail_loss"], &rows),
    );
    println!("  expected shape: Laplace is at least as bad as Gaussian (its L1");
    println!("  calibration carries an extra √d), confirming the mechanism-agnostic claim.");
}
