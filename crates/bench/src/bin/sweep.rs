//! The "full version" hyper-parameter sweep plus the DESIGN.md ablations.
//!
//! 1. ε × b grid: tail loss of the DP+ALIE configuration — the graceful
//!    accuracy/privacy trade-off (§5.2's second takeaway).
//! 2. Ablation A — attack visibility: colluders observing submitted
//!    (noisy) vs pre-noise honest gradients.
//! 3. Ablation B — momentum placement: server-side vs worker-side.
//! 4. Ablation C — noise mechanism: Gaussian vs Laplace (Remark 3: the
//!    antagonism is mechanism-independent).
//!
//! Usage: cargo run --release -p dpbyz-bench --bin sweep [-- --quick]

use dpbyz::prelude::*;
use dpbyz::report::csv;
use dpbyz::AttackVisibility;
use dpbyz_bench::{arg_present, write_csv};

fn tail_loss(exp: &Experiment, seeds: &[u64]) -> f64 {
    let hs = exp.run_seeds(seeds).expect("sweep cell runs");
    let k = (hs[0].train_loss.len() / 20).max(1);
    hs.iter().map(|h| h.tail_loss(k)).sum::<f64>() / hs.len() as f64
}

fn base(batch: usize, eps: Option<f64>, steps: u32, size: usize) -> Experiment {
    let mut builder = Experiment::builder()
        .batch_size(batch)
        .steps(steps)
        .dataset_size(size)
        .gar("mda")
        .attack("alie");
    if let Some(eps) = eps {
        builder = builder.epsilon(eps);
    }
    builder.build().expect("valid spec")
}

fn main() {
    let quick = arg_present("--quick");
    let (steps, size, seeds): (u32, usize, Vec<u64>) = if quick {
        (120, 2000, vec![1, 2])
    } else {
        (500, 8000, vec![1, 2, 3])
    };

    // 1. ε × b grid under ALIE + MDA.
    let epsilons = [0.05f64, 0.1, 0.2, 0.4, 0.8];
    let batches = [10usize, 25, 50, 150, 500];
    println!("=== ε × b sweep: tail training loss of DP+ALIE with MDA (lower = better)");
    print!("{:>8}", "ε \\ b");
    for b in batches {
        print!(" {b:>9}");
    }
    println!();
    let mut rows = Vec::new();
    for &e in &epsilons {
        print!("{e:>8.2}");
        let mut row = vec![format!("{e}")];
        for &b in &batches {
            let loss = tail_loss(&base(b, Some(e), steps, size), &seeds);
            print!(" {loss:>9.4}");
            row.push(format!("{loss:.5}"));
        }
        println!();
        rows.push(row);
    }
    let mut header = vec!["epsilon".to_string()];
    header.extend(batches.iter().map(|b| format!("b{b}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    write_csv("sweep_eps_batch.csv", &csv(&header_refs, &rows));
    println!("  expected shape: losses fall monotonically toward the bottom-right");
    println!("  (larger ε, larger b) — a graceful trade-off, not a cliff.\n");

    // 2. Attack visibility ablation.
    println!("=== ablation A: attacker sees submitted (noisy) vs pre-noise gradients");
    let mut rows = Vec::new();
    for vis in [AttackVisibility::Submitted, AttackVisibility::PreNoise] {
        let mut exp = base(50, Some(0.2), steps, size);
        exp.config.attack_visibility = vis;
        let loss = tail_loss(&exp, &seeds);
        println!("  {vis:?}: tail loss {loss:.5}");
        rows.push(vec![format!("{vis:?}"), format!("{loss:.5}")]);
    }
    write_csv(
        "ablation_visibility.csv",
        &csv(&["visibility", "tail_loss"], &rows),
    );

    // 3. Momentum placement ablation.
    println!("\n=== ablation B: momentum at the server vs at the workers");
    let mut rows = Vec::new();
    for mode in [MomentumMode::Server, MomentumMode::Worker] {
        let mut exp = base(50, None, steps, size);
        exp.config.momentum_mode = mode;
        let loss = tail_loss(&exp, &seeds);
        println!("  {mode:?}: tail loss {loss:.5} (no DP, ALIE)");
        rows.push(vec![format!("{mode:?}"), format!("{loss:.5}")]);
    }
    write_csv(
        "ablation_momentum.csv",
        &csv(&["momentum_mode", "tail_loss"], &rows),
    );

    // 4. Mechanism ablation: Remark 3.
    println!("\n=== ablation C: Gaussian vs Laplace noise (Remark 3)");
    let mut rows = Vec::new();
    for mech in ["gaussian", "laplace"] {
        let mut exp = base(50, Some(0.2), steps, size);
        exp.mechanism = mech.into();
        let loss = tail_loss(&exp, &seeds);
        println!("  {mech}: tail loss {loss:.5}");
        rows.push(vec![mech.to_string(), format!("{loss:.5}")]);
    }
    write_csv(
        "ablation_mechanism.csv",
        &csv(&["mechanism", "tail_loss"], &rows),
    );
    println!("  expected shape: Laplace is at least as bad as Gaussian (its L1");
    println!("  calibration carries an extra √d), confirming the mechanism-agnostic claim.");
}
