//! Regenerates the data behind Figures 2, 3 and 4.
//!
//! Paper protocol (§5.1): logistic regression (d = 69) on `phishing`,
//! n = 11 workers (f = 5 under attack, MDA; averaging otherwise), lr = 2,
//! momentum 0.99, G_max = 10⁻², δ = 10⁻⁶, ε = 0.2 in the DP panels,
//! T = 1000 steps, seeds 1–5. Fig. 2: b = 50, Fig. 3: b = 10,
//! Fig. 4: b = 500.
//!
//! Usage:
//!   cargo run --release -p dpbyz-bench --bin figures            # all three
//!   cargo run --release -p dpbyz-bench --bin figures -- --fig 2
//!   cargo run --release -p dpbyz-bench --bin figures -- --quick # reduced scale

use dpbyz::data::synthetic::PHISHING_SIZE;
use dpbyz::prelude::*;
use dpbyz::report::{ascii_plot, csv, Series};
use dpbyz_bench::{arg_present, arg_value, run_cells, write_csv, CellResult, FIGURE_CELLS};

struct FigureSpec {
    number: u32,
    batch_size: usize,
    paper_note: &'static str,
}

const FIGURES: [FigureSpec; 3] = [
    FigureSpec {
        number: 2,
        batch_size: 50,
        paper_note: "b=50: no-DP converges under attack with MDA; DP destroys the protection",
    },
    FigureSpec {
        number: 3,
        batch_size: 10,
        paper_note: "b=10: variance too high — DP hampers training even without attack",
    },
    FigureSpec {
        number: 4,
        batch_size: 500,
        paper_note:
            "b=500: everything converges, DP+attack included (antagonism, not impossibility)",
    },
];

fn main() {
    let quick = arg_present("--quick");
    let which: Option<u32> = arg_value("--fig").and_then(|v| v.parse().ok());
    let (steps, dataset_size, seeds): (u32, usize, &[u64]) = if quick {
        (150, 3000, &[1, 2])
    } else {
        (1000, PHISHING_SIZE, &Experiment::PAPER_SEEDS)
    };

    for spec in FIGURES
        .iter()
        .filter(|s| which.is_none_or(|w| w == s.number))
    {
        println!(
            "\n=== Figure {} (b = {}) — {}",
            spec.number, spec.batch_size, spec.paper_note
        );
        // All six cells × seeds fan out over the parallel sweep executor;
        // results come back in FIGURE_CELLS order.
        let results: Vec<CellResult> =
            run_cells(&FIGURE_CELLS, spec.batch_size, steps, dataset_size, seeds)
                .expect("figure cells run");
        for res in &results {
            let tail = res.tail_loss();
            let acc = res.final_accuracy();
            println!(
                "  {:<8} tail loss {:.5} ± {:.5}, accuracy {:.1}% ± {:.1}%",
                res.cell.label,
                tail.mean,
                tail.std,
                acc.mean * 100.0,
                acc.std * 100.0
            );
        }

        // CSV: per-step mean loss for each cell.
        let mut rows = Vec::new();
        let curves: Vec<(String, Vec<f64>)> = results
            .iter()
            .map(|r| (r.cell.label.to_string(), r.mean_loss_curve()))
            .collect();
        for t in 0..steps as usize {
            let mut row = vec![(t + 1).to_string()];
            for (_, c) in &curves {
                row.push(format!("{:.6}", c[t]));
            }
            rows.push(row);
        }
        let mut header = vec!["step"];
        for (label, _) in &curves {
            header.push(label.as_str());
        }
        let header_refs: Vec<&str> = header.to_vec();
        write_csv(
            &format!("figure{}_loss.csv", spec.number),
            &csv(&header_refs, &rows),
        );

        // CSV: summary per cell.
        let summary_rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                let tail = r.tail_loss();
                let min = r.min_loss();
                let acc = r.final_accuracy();
                vec![
                    r.cell.label.to_string(),
                    format!("{:.6}", min.mean),
                    format!("{:.6}", tail.mean),
                    format!("{:.6}", tail.std),
                    format!("{:.4}", acc.mean),
                    format!("{:.4}", acc.std),
                    format!("{:.4}", r.mean_vn_submitted()),
                ]
            })
            .collect();
        write_csv(
            &format!("figure{}_summary.csv", spec.number),
            &csv(
                &[
                    "config",
                    "min_loss",
                    "tail_loss_mean",
                    "tail_loss_std",
                    "accuracy_mean",
                    "accuracy_std",
                    "vn_submitted",
                ],
                &summary_rows,
            ),
        );

        // ASCII rendering of the loss curves (log10), one glyph per cell.
        const GLYPHS: [char; 6] = ['c', 'a', 'f', 'd', 'A', 'F'];
        let logged: Vec<(String, Vec<f64>)> = curves
            .iter()
            .map(|(l, c)| (l.clone(), c.iter().map(|x| x.max(1e-9).log10()).collect()))
            .collect();
        let series: Vec<Series> = logged
            .iter()
            .zip(GLYPHS)
            .map(|((l, c), g)| Series::with_glyph(l.as_str(), c, g))
            .collect();
        println!("\n  log10(training loss) over steps:");
        print!("{}", ascii_plot(&series, 72, 16));
    }

    println!("\nShape check against the paper:");
    println!("  Fig 2 (b=50): 'dp+alie'/'dp+foe' tail losses well above the other four;");
    println!("  Fig 3 (b=10): 'dp' already fails (high tail loss) even unattacked;");
    println!("  Fig 4 (b=500): all six configurations reach a similar low loss.");
}
