//! Shared harness utilities for the experiment binaries.
//!
//! The binaries in `src/bin/` regenerate the paper's evaluation artefacts:
//!
//! * `figures` — Figs. 2, 3, 4 (loss/accuracy under the 2×2 DP×attack grid
//!   at b = 10/50/500);
//! * `table1` — the per-GAR necessary conditions plus empirical VN-ratio
//!   confirmation;
//! * `theorem1` — the Θ(d·log(1/δ)/(T·b²·ε²)) error-rate scaling sweeps;
//! * `sweep` — the "full version" hyper-parameter sweep and the ablations
//!   called out in DESIGN.md (attack visibility, momentum placement,
//!   Laplace vs Gaussian noise).
//!
//! Results are written as CSV under `results/` and summarized on stdout
//! with ASCII plots.

use dpbyz::prelude::*;
use std::path::{Path, PathBuf};

/// One cell of a figure's configuration grid. Attacks are named by
/// registry id (resolved through the `dpbyz` component registry), so
/// third-party attacks slot into sweeps without code changes here.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Short label, e.g. `"dp+alie"`.
    pub label: &'static str,
    /// Privacy ε (`None` = no DP).
    pub epsilon: Option<f64>,
    /// Attack registry id (`None` = unattacked, averaging over 11 honest
    /// workers).
    pub attack: Option<&'static str>,
}

/// The paper's 2 (DP) × 3 (attack) grid: the six curves behind each figure.
pub const FIGURE_CELLS: [Cell; 6] = [
    Cell {
        label: "clean",
        epsilon: None,
        attack: None,
    },
    Cell {
        label: "alie",
        epsilon: None,
        attack: Some("alie"),
    },
    Cell {
        label: "foe",
        epsilon: None,
        attack: Some("foe"),
    },
    Cell {
        label: "dp",
        epsilon: Some(0.2),
        attack: None,
    },
    Cell {
        label: "dp+alie",
        epsilon: Some(0.2),
        attack: Some("alie"),
    },
    Cell {
        label: "dp+foe",
        epsilon: Some(0.2),
        attack: Some("foe"),
    },
];

/// Aggregated outcome of one cell across seeds.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell.
    pub cell: Cell,
    /// Per-seed histories.
    pub histories: Vec<RunHistory>,
}

impl CellResult {
    /// Mean ± std of the tail training loss (last 5% of steps).
    pub fn tail_loss(&self) -> SeedSummary {
        let k = (self.histories[0].train_loss.len() / 20).max(1);
        SeedSummary::from_metric(&self.histories, |h| h.tail_loss(k))
    }

    /// Mean ± std of the minimum training loss.
    pub fn min_loss(&self) -> SeedSummary {
        SeedSummary::from_metric(&self.histories, |h| h.min_loss())
    }

    /// Mean ± std of the final test accuracy (NaN if never evaluated).
    pub fn final_accuracy(&self) -> SeedSummary {
        SeedSummary::from_metric(&self.histories, |h| h.final_accuracy().unwrap_or(f64::NAN))
    }

    /// Mean loss curve across seeds.
    pub fn mean_loss_curve(&self) -> Vec<f64> {
        SeedSummary::loss_curve(&self.histories)
            .into_iter()
            .map(|s| s.mean)
            .collect()
    }

    /// Mean VN ratio of submitted gradients across seeds and steps.
    pub fn mean_vn_submitted(&self) -> f64 {
        let sum: f64 = self.histories.iter().map(|h| h.mean_vn_submitted()).sum();
        sum / self.histories.len() as f64
    }
}

/// Builds one cell's experiment at a given batch size via the fluent
/// builder (paper protocol: MDA with f = 5 once an attack is armed,
/// averaging over 11 honest workers otherwise).
///
/// # Errors
///
/// Propagates [`PipelineError`] from the builder.
pub fn cell_experiment(
    cell: Cell,
    batch_size: usize,
    steps: u32,
    dataset_size: usize,
) -> Result<Experiment, PipelineError> {
    let mut builder = Experiment::builder()
        .batch_size(batch_size)
        .steps(steps)
        .dataset_size(dataset_size);
    if let Some(attack) = cell.attack {
        builder = builder.gar("mda").attack(attack);
    }
    if let Some(epsilon) = cell.epsilon {
        builder = builder.epsilon(epsilon);
    }
    builder.build()
}

/// Runs one cell at a given batch size across seeds, parallelizing over
/// the seeds.
///
/// # Errors
///
/// Propagates [`PipelineError`] from the pipeline.
pub fn run_cell(
    cell: Cell,
    batch_size: usize,
    steps: u32,
    dataset_size: usize,
    seeds: &[u64],
) -> Result<CellResult, PipelineError> {
    let mut results = run_cells(&[cell], batch_size, steps, dataset_size, seeds)?;
    Ok(results.pop().expect("one cell in, one result out")) // lint:allow(panic-unwrap, reason = "one cell in, one result out: the grid passed below is a singleton")
}

/// Runs a whole grid of cells across seeds on the parallel sweep
/// executor: every (cell, seed) job is fanned over the thread pool and
/// the results come back in the input cell order, bit-identical to the
/// serial loop.
///
/// # Errors
///
/// Propagates [`PipelineError`] from the pipeline; an empty cell list is
/// a [`PipelineError::Spec`] (the axis-free `SweepBuilder` would
/// otherwise fall back to running its base cell and discard it).
pub fn run_cells(
    cells: &[Cell],
    batch_size: usize,
    steps: u32,
    dataset_size: usize,
    seeds: &[u64],
) -> Result<Vec<CellResult>, PipelineError> {
    if cells.is_empty() {
        return Err(PipelineError::Spec(
            "run_cells needs at least one cell".into(),
        ));
    }
    let mut sweep = SweepBuilder::new().seeds(seeds);
    for cell in cells {
        sweep = sweep.cell(
            cell.label,
            cell_experiment(*cell, batch_size, steps, dataset_size)?,
        );
    }
    let results = sweep.run()?;
    Ok(results
        .cells
        .into_iter()
        .zip(cells)
        .map(|(run, &cell)| CellResult {
            cell,
            histories: run.histories,
        })
        .collect())
}

/// Directory experiment CSVs are written to (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir"); // lint:allow(panic-unwrap, reason = "bench harness I/O: failing to persist results should abort the run loudly")
    dir
}

/// Writes a CSV file into [`results_dir`] and reports the path on stdout.
pub fn write_csv(name: &str, content: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, content).expect("write results csv"); // lint:allow(panic-unwrap, reason = "bench harness I/O: failing to persist results should abort the run loudly")
    println!("  wrote {}", path.display());
}

/// Parses `--flag value`-style arguments very simply.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether a bare `--flag` is present.
pub fn arg_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_cells_cover_grid() {
        assert_eq!(FIGURE_CELLS.len(), 6);
        let dp_count = FIGURE_CELLS.iter().filter(|c| c.epsilon.is_some()).count();
        assert_eq!(dp_count, 3);
        let attacked = FIGURE_CELLS.iter().filter(|c| c.attack.is_some()).count();
        assert_eq!(attacked, 4);
    }

    #[test]
    fn run_cell_produces_summaries() {
        let res = run_cell(FIGURE_CELLS[0], 10, 8, 200, &[1, 2]).unwrap();
        assert_eq!(res.histories.len(), 2);
        let tail = res.tail_loss();
        assert_eq!(tail.runs, 2);
        assert!(tail.mean.is_finite());
        assert_eq!(res.mean_loss_curve().len(), 8);
        assert!(res.min_loss().mean <= tail.mean + 1e-9);
    }

    #[test]
    fn run_cells_rejects_empty_input() {
        assert!(matches!(
            run_cells(&[], 10, 5, 200, &[1]),
            Err(PipelineError::Spec(_))
        ));
    }

    #[test]
    fn run_cells_preserves_input_order_and_matches_serial() {
        let cells = [FIGURE_CELLS[0], FIGURE_CELLS[1]];
        let results = run_cells(&cells, 10, 5, 200, &[1, 2]).unwrap();
        assert_eq!(results.len(), 2);
        for (res, cell) in results.iter().zip(&cells) {
            assert_eq!(res.cell.label, cell.label);
            let serial = cell_experiment(*cell, 10, 5, 200)
                .unwrap()
                .run_seeds(&[1, 2])
                .unwrap();
            assert_eq!(res.histories, serial, "cell {}", cell.label);
        }
    }
}
