//! Gradient-inversion: the *privacy* attack motivating the DP side of the
//! paper.
//!
//! Zhu et al. ("Deep Leakage from Gradients", NeurIPS 2019 — the paper's
//! \[43\]) showed a curious parameter server can reconstruct training samples
//! from the gradients workers share in the clear. For the generalized
//! linear models in this workspace the reconstruction is *closed-form*:
//! a single-sample gradient of `ℓ(w·x + b, y)` factors as
//!
//! ```text
//! ∇_w = δ · x,    ∇_b = δ        (δ = dℓ/dz)
//! ```
//!
//! so `x = ∇_w / ∇_b` exactly. This module implements that attack for
//! `LinearRegression` and `LogisticRegression` (both of its losses) and
//! quantifies how worker-local DP noise (Eq. 6) destroys it — the
//! "before/after" the paper's threat model rests on.
//!
//! # Example
//!
//! ```
//! use dpbyz_attacks::inversion;
//! use dpbyz_models::{LogisticRegression, LossKind, Model};
//! use dpbyz_data::Batch;
//! use dpbyz_tensor::{Matrix, Prng, Vector};
//!
//! let model = LogisticRegression::new(3, LossKind::CrossEntropy);
//! let params = Vector::from(vec![0.1, -0.2, 0.3, 0.0]);
//! let x = vec![0.5, 1.0, -0.25];
//! let batch = Batch::new(Matrix::from_rows(&[x.clone()]).unwrap(), vec![1.0]).unwrap();
//! let grad = model.gradient(&params, &batch);
//!
//! let rec = inversion::invert_glm_gradient(&grad, 3).unwrap();
//! assert!(rec.features.approx_eq(&Vector::from(x), 1e-9));
//! ```

use dpbyz_tensor::Vector;

/// A reconstructed training example.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconstruction {
    /// Recovered feature vector.
    pub features: Vector,
    /// The residual scale `δ = dℓ/dz` the gradient was generated with —
    /// combined with the model output it pins down the label for both
    /// losses.
    pub residual: f64,
}

/// Inverts a *single-sample* gradient of any generalized linear model with
/// a trailing bias coordinate (`[∇_w …, ∇_b]`, the layout of
/// `LinearRegression` and `LogisticRegression`).
///
/// Returns `None` when `|∇_b|` is numerically zero — a saturated or
/// zero-residual sample genuinely leaks nothing through this channel.
pub fn invert_glm_gradient(gradient: &Vector, num_features: usize) -> Option<Reconstruction> {
    assert_eq!(
        gradient.dim(),
        num_features + 1,
        "gradient layout must be [w..., b]"
    );
    let delta = gradient[num_features];
    if delta.abs() < 1e-12 {
        return None;
    }
    let features: Vector = (0..num_features).map(|j| gradient[j] / delta).collect();
    Some(Reconstruction {
        features,
        residual: delta,
    })
}

/// Mean squared reconstruction error of the attack against a known sample,
/// `‖x̂ − x‖² / d` — the metric the DP-vs-no-DP comparison reports.
/// Returns `+∞` when inversion fails entirely.
pub fn reconstruction_mse(gradient: &Vector, true_features: &[f64]) -> f64 {
    match invert_glm_gradient(gradient, true_features.len()) {
        None => f64::INFINITY,
        Some(rec) => {
            rec.features
                .l2_distance_squared(&Vector::from(true_features))
                / true_features.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpbyz_data::Batch;
    use dpbyz_dp::{GaussianMechanism, Mechanism, PrivacyBudget};
    use dpbyz_models::{LinearRegression, LogisticRegression, LossKind, Model};
    use dpbyz_tensor::{Matrix, Prng};

    fn single_sample_batch(x: &[f64], y: f64) -> Batch {
        Batch::new(Matrix::from_rows(&[x.to_vec()]).unwrap(), vec![y]).unwrap()
    }

    #[test]
    fn exact_recovery_linear_regression() {
        let model = LinearRegression::new(4);
        let params = Vector::from(vec![0.3, -0.1, 0.2, 0.5, -0.7]);
        let x = [1.5, -2.0, 0.25, 3.0];
        let grad = model.gradient(&params, &single_sample_batch(&x, 0.9));
        let rec = invert_glm_gradient(&grad, 4).unwrap();
        assert!(rec.features.approx_eq(&Vector::from(&x[..]), 1e-9));
        assert!(reconstruction_mse(&grad, &x) < 1e-18);
    }

    #[test]
    fn exact_recovery_logistic_both_losses() {
        for loss in [LossKind::SigmoidMse, LossKind::CrossEntropy] {
            let model = LogisticRegression::new(3, loss);
            let params = Vector::from(vec![0.4, 0.1, -0.3, 0.2]);
            let x = [0.0, 1.0, 0.5];
            let grad = model.gradient(&params, &single_sample_batch(&x, 1.0));
            let rec = invert_glm_gradient(&grad, 3).expect("residual nonzero");
            assert!(
                rec.features.approx_eq(&Vector::from(&x[..]), 1e-8),
                "{loss:?} failed: {:?}",
                rec.features
            );
        }
    }

    #[test]
    fn zero_residual_leaks_nothing() {
        // Perfect prediction ⇒ zero gradient ⇒ nothing to invert.
        let model = LinearRegression::new(2);
        let params = Vector::from(vec![1.0, 1.0, 0.0]);
        let x = [2.0, 3.0];
        let y = 5.0; // w·x + b exactly
        let grad = model.gradient(&params, &single_sample_batch(&x, y));
        assert!(invert_glm_gradient(&grad, 2).is_none());
        assert!(reconstruction_mse(&grad, &x).is_infinite());
    }

    #[test]
    fn dp_noise_defeats_inversion() {
        // The headline defensive claim: with the paper's Eq. 6 noise the
        // reconstruction error explodes by many orders of magnitude.
        let model = LogisticRegression::new(8, LossKind::CrossEntropy);
        let mut rng = Prng::seed_from_u64(7);
        let params = rng.normal_vector(9, 0.5);
        let x: Vec<f64> = (0..8).map(|_| rng.uniform_range(0.0, 1.0)).collect();
        let clean_grad = model.gradient(&params, &single_sample_batch(&x, 1.0));

        let clean_mse = reconstruction_mse(&clean_grad, &x);
        assert!(
            clean_mse < 1e-16,
            "clean attack should be exact: {clean_mse}"
        );

        // Worker-local DP: clip then add calibrated Gaussian noise (b = 1
        // — the worst case for privacy, strongest case for the attack).
        let budget = PrivacyBudget::new(0.2, 1e-6).unwrap();
        let mech = GaussianMechanism::for_clipped_gradients(budget, 0.01, 1).unwrap();
        let noisy = mech.perturb(&clean_grad.clipped_l2(0.01), &mut rng);
        let noisy_mse = reconstruction_mse(&noisy, &x);
        assert!(
            noisy_mse > 1.0,
            "DP failed to defeat inversion: mse {noisy_mse}"
        );
    }

    #[test]
    fn batch_gradients_blur_reconstruction() {
        // Even without DP, averaging over a batch already mixes samples —
        // the attack is exact only at b = 1.
        let model = LinearRegression::new(3);
        let mut rng = Prng::seed_from_u64(9);
        let params = rng.normal_vector(4, 1.0);
        let x1 = [1.0, 0.0, 2.0];
        let x2 = [-1.0, 3.0, 0.5];
        let batch = Batch::new(
            Matrix::from_rows(&[x1.to_vec(), x2.to_vec()]).unwrap(),
            vec![0.7, -0.4],
        )
        .unwrap();
        let grad = model.gradient(&params, &batch);
        let mse1 = reconstruction_mse(&grad, &x1);
        assert!(mse1 > 1e-6, "batch mean should not recover x1 exactly");
    }

    #[test]
    #[should_panic(expected = "gradient layout")]
    fn wrong_layout_panics() {
        let _ = invert_glm_gradient(&Vector::zeros(3), 3);
    }
}
