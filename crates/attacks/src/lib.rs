//! Byzantine attack library for `dp-byz-sgd`.
//!
//! The paper evaluates two state-of-the-art attacks (§5.1), both of the form
//! *every Byzantine worker submits the same* `g_t + ν·a_t`, where `g_t`
//! approximates the true gradient:
//!
//! * [`LittleIsEnough`] (Baruch et al. 2019) — `a_t = −σ_t`, the negated
//!   coordinate-wise standard deviation of the honest gradient
//!   distribution; default `ν = 1.5` (the paper's setting).
//! * [`FallOfEmpires`] (Xie et al. 2019) — submits `(1 − ν)·g_t`
//!   (`a_t = −g_t`); default `ν = 1.1` (i.e. `ν′ = 0.1` in the original
//!   paper's notation).
//!
//! Beyond the paper's pair, the zoo carries
//! [`InnerProductManipulation`] (the ε-form of FoE's descent-direction
//! reversal) and the norm-[`Rescaling`] probe for radius-tuned defenses,
//! plus baselines [`SignFlip`], [`RandomNoise`], [`Zero`], [`LargeNorm`]
//! and [`Mimic`] for sweeps.
//!
//! Attackers are *omniscient colluders*: they observe the gradients the
//! honest workers submit in the current round (the strongest standard
//! threat model, matching the paper's experiments). Under DP those
//! observations are the *noisy* submissions — an attacker cannot see
//! through another worker's local randomizer; the
//! [`AttackContext::pre_noise_gradients`] field (ablation) optionally
//! exposes the pre-noise gradients instead.
//!
//! # Example
//!
//! ```
//! use dpbyz_attacks::{Attack, AttackContext, LittleIsEnough};
//! use dpbyz_tensor::{Prng, Vector};
//!
//! let honest = vec![
//!     Vector::from(vec![1.0, 0.0]),
//!     Vector::from(vec![1.2, 0.1]),
//!     Vector::from(vec![0.8, -0.1]),
//! ];
//! let ctx = AttackContext::new(&honest, 0);
//! let forged = LittleIsEnough::default().forge(&ctx, &mut Prng::seed_from_u64(0));
//! assert_eq!(forged.dim(), 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod inversion;

use dpbyz_tensor::{stats, Prng, Vector};

/// Everything a colluding Byzantine coalition can see in one round.
#[derive(Debug)]
pub struct AttackContext<'a> {
    /// Gradients submitted by the honest workers this round (post-noise
    /// when DP is on — what actually crosses the network).
    pub honest_gradients: &'a [Vector],
    /// Pre-noise honest gradients, for the (unrealistic) ablation where
    /// the attacker sees through the local randomizers. `None` in the
    /// realistic default.
    pub pre_noise_gradients: Option<&'a [Vector]>,
    /// Training step `t`.
    pub step: usize,
}

impl<'a> AttackContext<'a> {
    /// A realistic context: the coalition observes the submitted gradients.
    pub fn new(honest_gradients: &'a [Vector], step: usize) -> Self {
        AttackContext {
            honest_gradients,
            pre_noise_gradients: None,
            step,
        }
    }

    /// The gradients the attack statistics are computed from (pre-noise if
    /// exposed, submitted otherwise).
    pub fn observed(&self) -> &'a [Vector] {
        self.pre_noise_gradients.unwrap_or(self.honest_gradients)
    }

    /// Coordinate-wise mean of the observed honest gradients — the
    /// coalition's estimate `g_t` of the true gradient.
    ///
    /// # Panics
    ///
    /// Panics if no honest gradients are visible.
    pub fn honest_mean(&self) -> Vector {
        // lint:allow(panic-unwrap, reason = "the engine invokes attacks only with a non-empty honest cohort (n > f is validated at configuration)")
        Vector::mean(self.observed()).expect("attack requires visible honest gradients")
    }

    /// Writes [`AttackContext::honest_mean`] into `out` without allocating
    /// (when `out` already has capacity) — the buffer-reusing counterpart
    /// used by the in-place [`Attack::forge_into`] implementations.
    ///
    /// # Panics
    ///
    /// Panics if no honest gradients are visible.
    pub fn honest_mean_into(&self, out: &mut Vector) {
        // lint:allow(panic-unwrap, reason = "the engine invokes attacks only with a non-empty honest cohort (n > f is validated at configuration)")
        Vector::mean_into(self.observed(), out).expect("attack requires visible honest gradients");
    }

    /// Coordinate-wise std `σ_t` of the observed honest gradients
    /// (zero vector when only one honest gradient is visible).
    pub fn honest_std(&self) -> Vector {
        let obs = self.observed();
        if obs.len() < 2 {
            return Vector::zeros(obs.first().map_or(0, Vector::dim));
        }
        stats::coordinate_std(obs).expect("validated input") // lint:allow(panic-unwrap, reason = "the engine invokes attacks only with a non-empty honest cohort, so the std is defined")
    }
}

/// A Byzantine attack: forges the single gradient that every Byzantine
/// worker submits this round.
pub trait Attack: Send + Sync {
    /// Attack name for reports.
    fn name(&self) -> &'static str;

    /// Forges the Byzantine gradient for this round.
    fn forge(&self, ctx: &AttackContext<'_>, rng: &mut Prng) -> Vector;

    /// Forges into a caller-provided buffer — the output-reuse path the
    /// zero-copy round engine drives (the server keeps one forged-vector
    /// buffer alive across rounds). Must consume the RNG stream
    /// identically to [`Attack::forge`] and produce the same coordinates,
    /// bit for bit.
    ///
    /// The default delegates to `forge` (one allocation per round), so
    /// out-of-tree attacks keep working unchanged; the built-ins override
    /// it allocation-free.
    fn forge_into(&self, ctx: &AttackContext<'_>, rng: &mut Prng, out: &mut Vector) {
        let forged = self.forge(ctx, rng);
        out.copy_from(&forged);
    }
}

/// "A Little Is Enough" (Baruch et al. 2019): submit
/// `mean(honest) − ν·std(honest)` — small coordinated shifts hiding inside
/// the honest variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LittleIsEnough {
    /// Shift factor ν (paper default 1.5).
    pub nu: f64,
}

impl LittleIsEnough {
    /// Creates the attack with an explicit ν.
    pub fn new(nu: f64) -> Self {
        LittleIsEnough { nu }
    }
}

impl Default for LittleIsEnough {
    /// The paper's setting: ν = 1.5.
    fn default() -> Self {
        LittleIsEnough { nu: 1.5 }
    }
}

impl Attack for LittleIsEnough {
    fn name(&self) -> &'static str {
        "alie"
    }

    fn forge(&self, ctx: &AttackContext<'_>, _rng: &mut Prng) -> Vector {
        let mut g = ctx.honest_mean();
        g.axpy(-self.nu, &ctx.honest_std());
        g
    }

    fn forge_into(&self, ctx: &AttackContext<'_>, _rng: &mut Prng, out: &mut Vector) {
        // mean − ν·std computed coordinate-wise in place: the per-
        // coordinate accumulation, `1/(n−1)` scaling, and `+(−ν)·std`
        // update mirror `honest_std` + `axpy` exactly, so the output is
        // bit-identical to `forge`.
        ctx.honest_mean_into(out);
        let obs = ctx.observed();
        if obs.len() < 2 {
            return; // honest_std is the zero vector: forged = mean.
        }
        let inv = 1.0 / (obs.len() - 1) as f64;
        for j in 0..out.dim() {
            let m = out[j];
            let mut acc = 0.0;
            for v in obs {
                let d = v[j] - m;
                acc += d * d;
            }
            let std = (acc * inv).sqrt();
            out[j] = m + (-self.nu) * std;
        }
    }
}

/// "Fall of Empires" (Xie et al. 2019): submit `(1 − ν)·mean(honest)` —
/// inner-product manipulation; `ν > 1` reverses the descent direction
/// slightly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallOfEmpires {
    /// Scale factor ν (paper default 1.1, i.e. ν′ = 0.1).
    pub nu: f64,
}

impl FallOfEmpires {
    /// Creates the attack with an explicit ν.
    pub fn new(nu: f64) -> Self {
        FallOfEmpires { nu }
    }
}

impl Default for FallOfEmpires {
    /// The paper's setting: ν = 1.1.
    fn default() -> Self {
        FallOfEmpires { nu: 1.1 }
    }
}

impl Attack for FallOfEmpires {
    fn name(&self) -> &'static str {
        "foe"
    }

    fn forge(&self, ctx: &AttackContext<'_>, _rng: &mut Prng) -> Vector {
        ctx.honest_mean().scaled(1.0 - self.nu)
    }

    fn forge_into(&self, ctx: &AttackContext<'_>, _rng: &mut Prng, out: &mut Vector) {
        ctx.honest_mean_into(out);
        out.scale(1.0 - self.nu);
    }
}

/// Submits the negated honest mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignFlip;

impl Attack for SignFlip {
    fn name(&self) -> &'static str {
        "sign-flip"
    }

    fn forge(&self, ctx: &AttackContext<'_>, _rng: &mut Prng) -> Vector {
        -&ctx.honest_mean()
    }

    fn forge_into(&self, ctx: &AttackContext<'_>, _rng: &mut Prng, out: &mut Vector) {
        ctx.honest_mean_into(out);
        out.scale(-1.0);
    }
}

/// Submits pure Gaussian noise `N(0, std²·I)` — an *erroneous* rather than
/// malicious gradient (e.g. a corrupted worker).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomNoise {
    /// Per-coordinate standard deviation.
    pub std: f64,
}

impl RandomNoise {
    /// Creates the attack.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative.
    pub fn new(std: f64) -> Self {
        assert!(std >= 0.0, "std must be non-negative");
        RandomNoise { std }
    }
}

impl Attack for RandomNoise {
    fn name(&self) -> &'static str {
        "random-noise"
    }

    fn forge(&self, ctx: &AttackContext<'_>, rng: &mut Prng) -> Vector {
        let dim = ctx.observed().first().map_or(0, Vector::dim);
        rng.normal_vector(dim, self.std)
    }

    fn forge_into(&self, ctx: &AttackContext<'_>, rng: &mut Prng, out: &mut Vector) {
        let dim = ctx.observed().first().map_or(0, Vector::dim);
        out.resize(dim, 0.0);
        // Same per-coordinate draw order as `normal_vector`.
        for x in out.as_mut_slice() {
            *x = rng.normal(0.0, self.std);
        }
    }
}

/// Submits the zero vector (a silently failing worker; the paper's server
/// also substitutes 0 for non-received gradients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Zero;

impl Attack for Zero {
    fn name(&self) -> &'static str {
        "zero"
    }

    fn forge(&self, ctx: &AttackContext<'_>, _rng: &mut Prng) -> Vector {
        Vector::zeros(ctx.observed().first().map_or(0, Vector::dim))
    }

    fn forge_into(&self, ctx: &AttackContext<'_>, _rng: &mut Prng, out: &mut Vector) {
        out.resize(ctx.observed().first().map_or(0, Vector::dim), 0.0);
        out.fill(0.0);
    }
}

/// Mimic: every Byzantine worker replays the submission of one fixed
/// honest worker (Karimireddy et al. 2022). Statistically legal — the
/// forged gradient *is* an honest gradient — but it collapses the
/// diversity of the submitted set, over-weighting one worker's data and
/// starving the rest. Robust rules cannot reject it (it sits inside the
/// honest cluster by construction); the damage shows up as bias on
/// heterogeneous data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mimic {
    /// Index (into the visible honest gradients) of the worker to copy.
    pub target: usize,
}

impl Mimic {
    /// Creates the attack copying the honest worker at `target`.
    pub fn new(target: usize) -> Self {
        Mimic { target }
    }
}

impl Attack for Mimic {
    fn name(&self) -> &'static str {
        "mimic"
    }

    fn forge(&self, ctx: &AttackContext<'_>, _rng: &mut Prng) -> Vector {
        let obs = ctx.observed();
        assert!(!obs.is_empty(), "mimic requires visible honest gradients");
        obs[self.target % obs.len()].clone()
    }

    fn forge_into(&self, ctx: &AttackContext<'_>, _rng: &mut Prng, out: &mut Vector) {
        let obs = ctx.observed();
        assert!(!obs.is_empty(), "mimic requires visible honest gradients");
        out.copy_from(&obs[self.target % obs.len()]);
    }
}

/// Inner-product manipulation (Xie, Koyejo, Gupta — UAI 2020): submit
/// `−ε·mean(honest)`, a *small* negated multiple of the coalition's
/// gradient estimate. The goal is not to be an outlier — the forged
/// vector sits well inside the honest cluster for small ε — but to tip
/// the inner product `⟨F(…), ∇Q⟩` negative so the descent direction
/// reverses without tripping distance-based filters.
///
/// This is the ε-parameterized canonical form of the same paper's
/// [`FallOfEmpires`] (`foe` with ν = 1 + ε submits the identical vector);
/// the two ids are kept distinct because the literature sweeps them on
/// different scales: FoE's ν near 1, IPM's ε from 0.1 (stealthy) to ≫ 1
/// (norm-amplified).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InnerProductManipulation {
    /// Negative-scaling factor ε (stealthy default 0.1).
    pub epsilon: f64,
}

impl InnerProductManipulation {
    /// Creates the attack with an explicit ε.
    pub fn new(epsilon: f64) -> Self {
        InnerProductManipulation { epsilon }
    }
}

impl Default for InnerProductManipulation {
    /// The stealthy literature baseline: ε = 0.1.
    fn default() -> Self {
        InnerProductManipulation { epsilon: 0.1 }
    }
}

impl Attack for InnerProductManipulation {
    fn name(&self) -> &'static str {
        "ipm"
    }

    fn forge(&self, ctx: &AttackContext<'_>, _rng: &mut Prng) -> Vector {
        ctx.honest_mean().scaled(-self.epsilon)
    }

    fn forge_into(&self, ctx: &AttackContext<'_>, _rng: &mut Prng, out: &mut Vector) {
        ctx.honest_mean_into(out);
        out.scale(-self.epsilon);
    }
}

/// Norm-rescaling attack: submit the honest-mean *direction* rescaled to
/// a fixed L2 norm `|norm|` (reversed when `norm` is negative, the
/// default). Unlike the multiplicative [`LargeNorm`], the forged norm is
/// *absolute* — independent of the honest gradients' scale — which is
/// what makes it the natural probe for radius-tuned defenses like
/// centered clipping: a submission placed exactly at the clipping radius
/// evades shrinking entirely while biasing the aggregate maximally.
///
/// A zero honest mean forges the zero vector (no direction to rescale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rescaling {
    /// Target L2 norm; the sign selects the direction (negative =
    /// opposing the honest mean).
    pub norm: f64,
}

impl Rescaling {
    /// Creates the attack with an explicit signed target norm.
    pub fn new(norm: f64) -> Self {
        Rescaling { norm }
    }
}

impl Default for Rescaling {
    /// Unit norm, opposing the honest mean.
    fn default() -> Self {
        Rescaling { norm: -1.0 }
    }
}

impl Attack for Rescaling {
    fn name(&self) -> &'static str {
        "rescaling"
    }

    fn forge(&self, ctx: &AttackContext<'_>, _rng: &mut Prng) -> Vector {
        let mut g = ctx.honest_mean();
        let n = g.l2_norm();
        if n > 0.0 {
            g.scale(self.norm / n);
        }
        g
    }

    fn forge_into(&self, ctx: &AttackContext<'_>, _rng: &mut Prng, out: &mut Vector) {
        ctx.honest_mean_into(out);
        let n = out.l2_norm();
        if n > 0.0 {
            out.scale(self.norm / n);
        }
    }
}

/// Submits the honest mean blown up by a large factor — the naive attack
/// every robust GAR defeats trivially (a sanity baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LargeNorm {
    /// Multiplier applied to the honest mean.
    pub scale: f64,
}

impl LargeNorm {
    /// Creates the attack.
    pub fn new(scale: f64) -> Self {
        LargeNorm { scale }
    }
}

impl Default for LargeNorm {
    fn default() -> Self {
        LargeNorm { scale: 1e6 }
    }
}

impl Attack for LargeNorm {
    fn name(&self) -> &'static str {
        "large-norm"
    }

    fn forge(&self, ctx: &AttackContext<'_>, _rng: &mut Prng) -> Vector {
        ctx.honest_mean().scaled(self.scale)
    }

    fn forge_into(&self, ctx: &AttackContext<'_>, _rng: &mut Prng, out: &mut Vector) {
        ctx.honest_mean_into(out);
        out.scale(self.scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest() -> Vec<Vector> {
        vec![
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![2.0, 0.0]),
            Vector::from(vec![3.0, 0.0]),
        ]
    }

    #[test]
    fn context_mean_and_std() {
        let h = honest();
        let ctx = AttackContext::new(&h, 7);
        assert_eq!(ctx.honest_mean().as_slice(), &[2.0, 0.0]);
        assert_eq!(ctx.honest_std().as_slice(), &[1.0, 0.0]);
        assert_eq!(ctx.step, 7);
    }

    #[test]
    fn context_single_gradient_std_is_zero() {
        let h = vec![Vector::from(vec![5.0])];
        let ctx = AttackContext::new(&h, 0);
        assert_eq!(ctx.honest_std().as_slice(), &[0.0]);
    }

    #[test]
    fn pre_noise_overrides_observed() {
        let noisy = vec![Vector::from(vec![100.0])];
        let clean = vec![Vector::from(vec![1.0])];
        let mut ctx = AttackContext::new(&noisy, 0);
        assert_eq!(ctx.honest_mean()[0], 100.0);
        ctx.pre_noise_gradients = Some(&clean);
        assert_eq!(ctx.honest_mean()[0], 1.0);
    }

    #[test]
    fn alie_shifts_mean_by_nu_std() {
        let h = honest();
        let ctx = AttackContext::new(&h, 0);
        let mut rng = Prng::seed_from_u64(0);
        let forged = LittleIsEnough::default().forge(&ctx, &mut rng);
        // mean − 1.5·std = [2 − 1.5, 0] = [0.5, 0].
        assert!(forged.approx_eq(&Vector::from(vec![0.5, 0.0]), 1e-12));
        assert_eq!(LittleIsEnough::default().nu, 1.5);
    }

    #[test]
    fn alie_hides_within_variance() {
        // The forged gradient stays within ~2σ of the honest mean — the
        // point of the attack is to be indistinguishable from an honest
        // straggler.
        let h = honest();
        let ctx = AttackContext::new(&h, 0);
        let mut rng = Prng::seed_from_u64(0);
        let forged = LittleIsEnough::default().forge(&ctx, &mut rng);
        let dist = forged.l2_distance(&ctx.honest_mean());
        let spread = ctx.honest_std().l2_norm();
        assert!(dist <= 2.0 * spread);
    }

    #[test]
    fn foe_scales_mean_negative() {
        let h = honest();
        let ctx = AttackContext::new(&h, 0);
        let mut rng = Prng::seed_from_u64(0);
        let forged = FallOfEmpires::default().forge(&ctx, &mut rng);
        // (1 − 1.1)·[2, 0] = [−0.2, 0].
        assert!(forged.approx_eq(&Vector::from(vec![-0.2, 0.0]), 1e-12));
    }

    #[test]
    fn foe_nu_one_submits_zero() {
        let h = honest();
        let ctx = AttackContext::new(&h, 0);
        let mut rng = Prng::seed_from_u64(0);
        let forged = FallOfEmpires::new(1.0).forge(&ctx, &mut rng);
        assert_eq!(forged.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn sign_flip_negates() {
        let h = honest();
        let ctx = AttackContext::new(&h, 0);
        let mut rng = Prng::seed_from_u64(0);
        let forged = SignFlip.forge(&ctx, &mut rng);
        assert_eq!(forged.as_slice(), &[-2.0, 0.0]);
    }

    #[test]
    fn random_noise_has_right_shape_and_seeding() {
        let h = honest();
        let ctx = AttackContext::new(&h, 0);
        let a = RandomNoise::new(1.0).forge(&ctx, &mut Prng::seed_from_u64(1));
        let b = RandomNoise::new(1.0).forge(&ctx, &mut Prng::seed_from_u64(1));
        assert_eq!(a, b);
        assert_eq!(a.dim(), 2);
    }

    #[test]
    fn ipm_is_small_negated_mean() {
        let h = honest();
        let ctx = AttackContext::new(&h, 0);
        let mut rng = Prng::seed_from_u64(0);
        // −0.1·[2, 0] = [−0.2, 0].
        let forged = InnerProductManipulation::default().forge(&ctx, &mut rng);
        assert!(forged.approx_eq(&Vector::from(vec![-0.2, 0.0]), 1e-12));
        // Negative inner product with the honest mean: the defining goal.
        let dot: f64 = forged
            .iter()
            .zip(ctx.honest_mean().iter())
            .map(|(a, b)| a * b)
            .sum();
        assert!(dot < 0.0);
        // ε-form equivalence with FoE: ipm(ε) ≡ foe(1 + ε).
        let foe = FallOfEmpires::new(1.1).forge(&ctx, &mut rng);
        assert!(forged.approx_eq(&foe, 1e-12));
    }

    #[test]
    fn rescaling_fixes_the_forged_norm() {
        let h = honest();
        let ctx = AttackContext::new(&h, 0);
        let mut rng = Prng::seed_from_u64(0);
        let forged = Rescaling::new(-3.0).forge(&ctx, &mut rng);
        // Absolute norm 3, direction opposing the mean [2, 0].
        assert!((forged.l2_norm() - 3.0).abs() < 1e-12);
        assert!(forged.approx_eq(&Vector::from(vec![-3.0, 0.0]), 1e-12));
        // The norm is independent of the honest scale (unlike LargeNorm).
        let scaled: Vec<Vector> = h.iter().map(|g| g.scaled(100.0)).collect();
        let ctx = AttackContext::new(&scaled, 0);
        let forged = Rescaling::new(-3.0).forge(&ctx, &mut rng);
        assert!((forged.l2_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rescaling_zero_mean_forges_zero() {
        let h = vec![Vector::from(vec![1.0, 0.0]), Vector::from(vec![-1.0, 0.0])];
        let ctx = AttackContext::new(&h, 0);
        let mut rng = Prng::seed_from_u64(0);
        let forged = Rescaling::default().forge(&ctx, &mut rng);
        assert_eq!(forged.as_slice(), &[0.0, 0.0]);
        let mut out = Vector::from(vec![5.0]);
        Rescaling::default().forge_into(&ctx, &mut Prng::seed_from_u64(0), &mut out);
        assert_eq!(out.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn zero_and_large_norm() {
        let h = honest();
        let ctx = AttackContext::new(&h, 0);
        let mut rng = Prng::seed_from_u64(0);
        assert_eq!(Zero.forge(&ctx, &mut rng).as_slice(), &[0.0, 0.0]);
        let big = LargeNorm::default().forge(&ctx, &mut rng);
        assert!(big.l2_norm() > 1e5);
    }

    #[test]
    fn mimic_replays_target_worker() {
        let h = honest();
        let ctx = AttackContext::new(&h, 0);
        let mut rng = Prng::seed_from_u64(0);
        assert_eq!(Mimic::new(1).forge(&ctx, &mut rng), h[1]);
        // Out-of-range targets wrap.
        assert_eq!(Mimic::new(4).forge(&ctx, &mut rng), h[1]);
    }

    #[test]
    fn mimic_is_inside_honest_hull() {
        // The defining property: the forged gradient IS an honest one, so
        // no filter keyed on outlyingness can reject it.
        let h = honest();
        let ctx = AttackContext::new(&h, 3);
        let mut rng = Prng::seed_from_u64(0);
        let forged = Mimic::default().forge(&ctx, &mut rng);
        assert!(h.contains(&forged));
    }

    #[test]
    fn forge_into_matches_forge_bitwise() {
        let mut rng = Prng::seed_from_u64(17);
        let h: Vec<Vector> = (0..5)
            .map(|_| rng.normal_vector(6, 1.0))
            .collect::<Vec<_>>();
        let ctx = AttackContext::new(&h, 4);
        let attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(LittleIsEnough::default()),
            Box::new(FallOfEmpires::default()),
            Box::new(SignFlip),
            Box::new(RandomNoise::new(0.8)),
            Box::new(Zero),
            Box::new(LargeNorm::default()),
            Box::new(Mimic::new(2)),
            Box::new(InnerProductManipulation::default()),
            Box::new(Rescaling::new(-0.25)),
        ];
        for attack in &attacks {
            let allocating = attack.forge(&ctx, &mut Prng::seed_from_u64(5));
            let mut rng_in = Prng::seed_from_u64(5);
            let mut reused = Vector::from(vec![7.0; 2]); // dirty, wrong dim
            attack.forge_into(&ctx, &mut rng_in, &mut reused);
            assert_eq!(allocating.dim(), reused.dim(), "{}", attack.name());
            for (a, b) in allocating.iter().zip(reused.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} diverged", attack.name());
            }
            // RNG stream consumed identically.
            let mut rng_ref = Prng::seed_from_u64(5);
            let _ = attack.forge(&ctx, &mut rng_ref);
            assert_eq!(rng_in.uniform().to_bits(), rng_ref.uniform().to_bits());
        }
    }

    #[test]
    fn forge_into_single_observed_gradient_is_mean() {
        // ALIE with one visible gradient: std is the zero vector.
        let h = vec![Vector::from(vec![2.0, -3.0])];
        let ctx = AttackContext::new(&h, 0);
        let mut out = Vector::default();
        LittleIsEnough::default().forge_into(&ctx, &mut Prng::seed_from_u64(0), &mut out);
        assert_eq!(out, h[0]);
    }

    #[test]
    fn names_are_distinct() {
        let attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(LittleIsEnough::default()),
            Box::new(FallOfEmpires::default()),
            Box::new(SignFlip),
            Box::new(RandomNoise::new(1.0)),
            Box::new(Zero),
            Box::new(LargeNorm::default()),
            Box::new(Mimic::default()),
            Box::new(InnerProductManipulation::default()),
            Box::new(Rescaling::default()),
        ];
        let mut names: Vec<&str> = attacks.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
