//! Error type for tensor operations.

use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation (e.g. the left operand's).
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// An operation that requires at least one element was given none.
    Empty,
    /// A matrix constructor was given data whose length is not `rows * cols`.
    ShapeMismatch {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Length of the data supplied.
        len: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Valid length.
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            TensorError::Empty => write!(f, "operation requires at least one element"),
            TensorError::ShapeMismatch { rows, cols, len } => write!(
                f,
                "shape mismatch: {rows}x{cols} matrix requires {} elements, got {len}",
                rows * cols
            ),
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = TensorError::DimensionMismatch {
            expected: 3,
            actual: 5,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 5");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            rows: 2,
            cols: 3,
            len: 5,
        };
        assert!(e.to_string().contains("requires 6 elements, got 5"));
    }

    #[test]
    fn display_empty_and_index() {
        assert!(TensorError::Empty.to_string().contains("at least one"));
        let e = TensorError::IndexOutOfBounds { index: 9, len: 4 };
        assert!(e.to_string().contains("index 9"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TensorError::Empty);
        assert!(!e.to_string().is_empty());
    }
}
