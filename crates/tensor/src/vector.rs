//! Dense `R^d` vectors — the representation of model parameters and
//! gradients throughout the workspace.

use crate::{kernels, TensorError};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense vector of `f64` coordinates.
///
/// `Vector` is the unit of exchange in the distributed SGD protocol: workers
/// submit gradients as `Vector`s, aggregation rules consume slices of them,
/// and the parameter server's model state is one.
///
/// # Example
///
/// ```
/// use dpbyz_tensor::Vector;
///
/// let g = Vector::from(vec![1.0, -2.0, 2.0]);
/// assert_eq!(g.l2_norm(), 3.0);
/// let clipped = g.clipped_l2(1.0);
/// assert!((clipped.l2_norm() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector(Vec<f64>);

impl Vector {
    /// Creates a zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Vector(vec![0.0; dim])
    }

    /// Creates a vector of dimension `dim` with every coordinate equal to
    /// `value`.
    pub fn filled(dim: usize, value: f64) -> Self {
        Vector(vec![value; dim])
    }

    /// Creates a vector of dimension `dim` with every coordinate equal to 1.
    pub fn ones(dim: usize) -> Self {
        Self::filled(dim, 1.0)
    }

    /// Creates a standard basis vector `e_i` of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `i >= dim`.
    pub fn basis(dim: usize, i: usize) -> Result<Self, TensorError> {
        if i >= dim {
            return Err(TensorError::IndexOutOfBounds { index: i, len: dim });
        }
        let mut v = Self::zeros(dim);
        v.0[i] = 1.0;
        Ok(v)
    }

    /// The dimension (number of coordinates).
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has zero coordinates.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the coordinates as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Borrow the coordinates as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consume the vector, returning the underlying `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.0
    }

    /// Iterator over coordinates.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.0.iter()
    }

    /// Dot product `<self, other>`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ; in this workspace a dimension mismatch is
    /// always a programming error, never a runtime condition.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dot: dimension mismatch {} vs {}",
            self.dim(),
            other.dim()
        );
        kernels::dot(&self.0, &other.0)
    }

    /// Squared Euclidean norm `‖self‖²`.
    pub fn l2_norm_squared(&self) -> f64 {
        kernels::sum_squares(&self.0)
    }

    /// Euclidean norm `‖self‖₂`.
    pub fn l2_norm(&self) -> f64 {
        self.l2_norm_squared().sqrt()
    }

    /// Manhattan norm `‖self‖₁`.
    pub fn l1_norm(&self) -> f64 {
        self.0.iter().map(|x| x.abs()).sum()
    }

    /// Supremum norm `‖self‖∞` (0 for the empty vector).
    pub fn linf_norm(&self) -> f64 {
        self.0.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Euclidean distance `‖self − other‖₂`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn l2_distance(&self, other: &Vector) -> f64 {
        self.l2_distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance `‖self − other‖₂²` — alias of
    /// [`Vector::l2_distance_squared`] under the kernel-suite name used by
    /// the zero-copy aggregation hot path.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[inline]
    pub fn squared_distance(&self, other: &Vector) -> f64 {
        self.l2_distance_squared(other)
    }

    /// Squared Euclidean distance `‖self − other‖₂²`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn l2_distance_squared(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "distance: dimension mismatch {} vs {}",
            self.dim(),
            other.dim()
        );
        kernels::squared_distance(&self.0, &other.0)
    }

    /// Returns `self * scalar` as a new vector.
    pub fn scaled(&self, scalar: f64) -> Vector {
        Vector(self.0.iter().map(|x| x * scalar).collect())
    }

    /// Multiplies every coordinate by `scalar` in place.
    pub fn scale(&mut self, scalar: f64) {
        kernels::scale(&mut self.0, scalar);
    }

    /// In-place `self += alpha * other` (the BLAS `axpy` primitive — the
    /// inner loop of every SGD update).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        assert_eq!(
            self.dim(),
            other.dim(),
            "axpy: dimension mismatch {} vs {}",
            self.dim(),
            other.dim()
        );
        kernels::axpy(&mut self.0, alpha, &other.0);
    }

    /// Coordinate-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn hadamard(&self, other: &Vector) -> Vector {
        let mut out = Vector::default();
        self.hadamard_into(other, &mut out);
        out
    }

    /// Writes the coordinate-wise product `self ⊙ other` into `out`
    /// without allocating (when `out` already has capacity) — the
    /// in-place counterpart of [`Vector::hadamard`], bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn hadamard_into(&self, other: &Vector, out: &mut Vector) {
        assert_eq!(
            self.dim(),
            other.dim(),
            "hadamard: dimension mismatch {} vs {}",
            self.dim(),
            other.dim()
        );
        out.0.resize(self.dim(), 0.0);
        kernels::hadamard(&self.0, &other.0, &mut out.0);
    }

    /// Applies `f` to every coordinate, returning a new vector.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector(self.0.iter().map(|&x| f(x)).collect())
    }

    /// Applies `f` to every coordinate in place — the allocation-free
    /// counterpart of [`Vector::map`], bit-identical to it (same
    /// per-coordinate expression, no reordering).
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.0 {
            *x = f(*x);
        }
    }

    /// Projects the vector onto the L2 ball of radius `max_norm`, returning
    /// the result. Vectors already inside the ball are returned unchanged
    /// (clipping is idempotent and a contraction).
    ///
    /// This is the gradient-clipping primitive the paper relies on to bound
    /// sensitivity (Assumption 1): after `clipped_l2(g_max)` the L2 norm is
    /// at most `g_max`.
    pub fn clipped_l2(&self, max_norm: f64) -> Vector {
        assert!(max_norm >= 0.0, "clip radius must be non-negative");
        let norm = self.l2_norm();
        if norm <= max_norm || norm == 0.0 {
            self.clone()
        } else {
            self.scaled(max_norm / norm)
        }
    }

    /// In-place variant of [`Vector::clipped_l2`]. Returns `true` if the
    /// vector was actually rescaled.
    pub fn clip_l2(&mut self, max_norm: f64) -> bool {
        assert!(max_norm >= 0.0, "clip radius must be non-negative");
        let norm = self.l2_norm();
        if norm <= max_norm || norm == 0.0 {
            false
        } else {
            self.scale(max_norm / norm);
            true
        }
    }

    /// `true` iff every coordinate is finite (no NaN / ±∞).
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }

    /// Coordinate-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.dim() == other.dim()
            && self
                .0
                .iter()
                .zip(other.0.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Sets every coordinate to `value` — the allocation-free counterpart
    /// of [`Vector::filled`] for an existing buffer.
    pub fn fill(&mut self, value: f64) {
        kernels::fill(&mut self.0, value);
    }

    /// Resizes to `dim` coordinates, filling any *new* coordinates with
    /// `value` (existing coordinates are kept). Reuses the allocation when
    /// the capacity suffices.
    pub fn resize(&mut self, dim: usize, value: f64) {
        self.0.resize(dim, value);
    }

    /// Overwrites `self` with the coordinates of `other`, adapting the
    /// dimension if needed. Reuses the existing allocation whenever the
    /// capacity suffices, so at steady state (equal dimensions) this is a
    /// pure `memcpy` — the zero-copy engine's buffer-refill primitive.
    pub fn copy_from(&mut self, other: &Vector) {
        kernels::copy(&other.0, &mut self.0);
    }

    /// Writes `self − other` into `out` without allocating (when `out`
    /// already has capacity). Bit-identical to `&self - &other` (IEEE
    /// negation is exact, so `a − b` and `a + (−1)·b` agree bitwise).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn sub_into(&self, other: &Vector, out: &mut Vector) {
        assert_eq!(
            self.dim(),
            other.dim(),
            "sub_into: dimension mismatch {} vs {}",
            self.dim(),
            other.dim()
        );
        out.0.resize(self.dim(), 0.0);
        kernels::sub(&self.0, &other.0, &mut out.0);
    }

    /// The arithmetic mean of a non-empty slice of equal-dimension vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty slice and
    /// [`TensorError::DimensionMismatch`] if dimensions disagree.
    pub fn mean(vectors: &[Vector]) -> Result<Vector, TensorError> {
        let mut acc = Vector::default();
        Self::mean_into(vectors, &mut acc)?;
        Ok(acc)
    }

    /// Writes the arithmetic mean of `vectors` into `out` without
    /// allocating (when `out` already has capacity). Bit-identical to
    /// [`Vector::mean`]: same accumulation order, same final scaling.
    ///
    /// # Errors
    ///
    /// As [`Vector::mean`]; on error `out` is left in an unspecified but
    /// valid state.
    pub fn mean_into(vectors: &[Vector], out: &mut Vector) -> Result<(), TensorError> {
        let first = vectors.first().ok_or(TensorError::Empty)?;
        let dim = first.dim();
        out.0.clear();
        out.0.resize(dim, 0.0);
        for v in vectors {
            if v.dim() != dim {
                return Err(TensorError::DimensionMismatch {
                    expected: dim,
                    actual: v.dim(),
                });
            }
            out.axpy(1.0, v);
        }
        out.scale(1.0 / vectors.len() as f64);
        Ok(())
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Vector(v.to_vec())
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector(iter.into_iter().collect())
    }
}

impl AsRef<[f64]> for Vector {
    fn as_ref(&self) -> &[f64] {
        &self.0
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        let mut out = self.clone();
        out.axpy(1.0, rhs);
        out
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        let mut out = self.clone();
        out.axpy(-1.0, rhs);
        out
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_ones_filled() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(Vector::filled(2, 7.5).as_slice(), &[7.5, 7.5]);
    }

    #[test]
    fn basis_vector() {
        let e1 = Vector::basis(3, 1).unwrap();
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0]);
        assert!(Vector::basis(3, 3).is_err());
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b), 4.0 - 10.0 + 18.0);
        assert_eq!(a.l2_norm_squared(), 14.0);
        assert_eq!(b.l1_norm(), 15.0);
        assert_eq!(b.linf_norm(), 6.0);
    }

    #[test]
    fn distances() {
        let a = Vector::from(vec![0.0, 0.0]);
        let b = Vector::from(vec![3.0, 4.0]);
        assert_eq!(a.l2_distance(&b), 5.0);
        assert_eq!(a.l2_distance_squared(&b), 25.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert!(c.approx_eq(&a, 1e-15));
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        a.axpy(2.0, &Vector::from(vec![3.0, -1.0]));
        assert_eq!(a.as_slice(), &[7.0, -1.0]);
    }

    #[test]
    fn hadamard_product() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![2.0, 0.5, -1.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2.0, 1.0, -3.0]);
    }

    #[test]
    fn map_applies_function() {
        let a = Vector::from(vec![-1.0, 4.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn clipping_reduces_norm() {
        let g = Vector::from(vec![3.0, 4.0]);
        let c = g.clipped_l2(1.0);
        assert!((c.l2_norm() - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((c[0] / c[1] - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn clipping_noop_inside_ball() {
        let g = Vector::from(vec![0.3, 0.4]);
        assert_eq!(g.clipped_l2(1.0), g);
        let mut h = g.clone();
        assert!(!h.clip_l2(1.0));
        assert!(h.clip_l2(0.1));
        assert!((h.l2_norm() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn clipping_zero_vector() {
        let z = Vector::zeros(4);
        assert_eq!(z.clipped_l2(1.0), z);
    }

    #[test]
    fn mean_of_vectors() {
        let vs = vec![Vector::from(vec![1.0, 2.0]), Vector::from(vec![3.0, 6.0])];
        assert_eq!(Vector::mean(&vs).unwrap().as_slice(), &[2.0, 4.0]);
        assert_eq!(Vector::mean(&[]), Err(TensorError::Empty));
        let bad = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(matches!(
            Vector::mean(&bad),
            Err(TensorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn fill_copy_from_sub_into() {
        let mut v = Vector::from(vec![1.0, 2.0, 3.0]);
        v.fill(0.25);
        assert_eq!(v.as_slice(), &[0.25, 0.25, 0.25]);

        // copy_from adapts the dimension and reuses capacity.
        let src = Vector::from(vec![9.0, -9.0]);
        v.copy_from(&src);
        assert_eq!(v, src);
        let longer = Vector::from(vec![1.0, 2.0, 3.0, 4.0]);
        v.copy_from(&longer);
        assert_eq!(v, longer);

        let a = Vector::from(vec![5.0, 7.0]);
        let b = Vector::from(vec![1.0, 2.0]);
        let mut out = Vector::zeros(0);
        a.sub_into(&b, &mut out);
        assert_eq!(out, &a - &b);
    }

    #[test]
    fn mean_into_matches_mean_bitwise() {
        let mut rng = crate::Prng::seed_from_u64(5);
        let vs: Vec<Vector> = (0..7).map(|_| rng.normal_vector(9, 1.3)).collect();
        let allocating = Vector::mean(&vs).unwrap();
        let mut reused = Vector::from(vec![999.0; 3]); // dirty, wrong dim
        Vector::mean_into(&vs, &mut reused).unwrap();
        for (a, b) in allocating.iter().zip(reused.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(Vector::mean_into(&[], &mut reused).is_err());
        let ragged = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(Vector::mean_into(&ragged, &mut reused).is_err());
    }

    #[test]
    fn squared_distance_aliases_l2() {
        let a = Vector::from(vec![0.0, 0.0]);
        let b = Vector::from(vec![3.0, 4.0]);
        assert_eq!(a.squared_distance(&b), a.l2_distance_squared(&b));
    }

    #[test]
    fn finite_detection() {
        assert!(Vector::from(vec![1.0, -2.0]).is_finite());
        assert!(!Vector::from(vec![1.0, f64::NAN]).is_finite());
        assert!(!Vector::from(vec![f64::INFINITY]).is_finite());
    }

    #[test]
    fn serde_roundtrip() {
        let v = Vector::from(vec![1.5, -0.25]);
        let json = serde_json_like_roundtrip(&v);
        assert_eq!(json, v);
    }

    // serde_json isn't a sanctioned dependency; round-trip through the
    // serde data model with a tiny in-memory format instead.
    fn serde_json_like_roundtrip(v: &Vector) -> Vector {
        let bytes = bincode_like_serialize(v.as_slice());
        Vector::from(bincode_like_deserialize(&bytes))
    }

    fn bincode_like_serialize(xs: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + xs.len() * 8);
        out.extend_from_slice(&(xs.len() as u64).to_le_bytes());
        for x in xs {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    fn bincode_like_deserialize(bytes: &[u8]) -> Vec<f64> {
        let n = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        (0..n)
            .map(|i| f64::from_le_bytes(bytes[8 + i * 8..16 + i * 8].try_into().unwrap()))
            .collect()
    }

    #[test]
    #[should_panic(expected = "dot: dimension mismatch")]
    fn dot_mismatch_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    proptest! {
        #[test]
        fn prop_clip_is_contraction(xs in proptest::collection::vec(-1e3..1e3f64, 1..64), r in 0.0..10.0f64) {
            let v = Vector::from(xs);
            let c = v.clipped_l2(r);
            prop_assert!(c.l2_norm() <= r + 1e-9);
        }

        #[test]
        fn prop_clip_idempotent(xs in proptest::collection::vec(-1e3..1e3f64, 1..64), r in 0.01..10.0f64) {
            let v = Vector::from(xs);
            let once = v.clipped_l2(r);
            let twice = once.clipped_l2(r);
            prop_assert!(once.approx_eq(&twice, 1e-12));
        }

        #[test]
        fn prop_triangle_inequality(
            a in proptest::collection::vec(-1e3..1e3f64, 8),
            b in proptest::collection::vec(-1e3..1e3f64, 8),
        ) {
            let a = Vector::from(a);
            let b = Vector::from(b);
            prop_assert!((&a + &b).l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-9);
        }

        #[test]
        fn prop_cauchy_schwarz(
            a in proptest::collection::vec(-1e2..1e2f64, 8),
            b in proptest::collection::vec(-1e2..1e2f64, 8),
        ) {
            let a = Vector::from(a);
            let b = Vector::from(b);
            prop_assert!(a.dot(&b).abs() <= a.l2_norm() * b.l2_norm() + 1e-9);
        }

        #[test]
        fn prop_mean_between_min_max(xs in proptest::collection::vec(-1e3..1e3f64, 1..32)) {
            let vs: Vec<Vector> = xs.iter().map(|&x| Vector::from(vec![x])).collect();
            let m = Vector::mean(&vs).unwrap()[0];
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
