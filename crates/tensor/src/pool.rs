//! A checkout/checkin pool of equally-dimensioned vector buffers.
//!
//! The round engine recycles `R^d` buffers aggressively: worker outputs,
//! the server's submission set, GAR scratch. [`VectorPool`] is the shared
//! primitive behind that reuse — buffers are checked out, overwritten by
//! the caller, and checked back in, so steady-state rounds perform no heap
//! allocation. Checked-out buffers are always zeroed, which keeps results
//! independent of what a previous tenant left behind.

use crate::Vector;

/// A pool of reusable `dim`-dimensional [`Vector`] buffers.
///
/// # Example
///
/// ```
/// use dpbyz_tensor::VectorPool;
///
/// let mut pool = VectorPool::new(3);
/// let a = pool.checkout();
/// assert_eq!(a.as_slice(), &[0.0, 0.0, 0.0]);
/// pool.checkin(a);
/// assert_eq!(pool.available(), 1);
/// let _b = pool.checkout(); // reuses the returned buffer, no allocation
/// assert_eq!(pool.available(), 0);
/// ```
#[derive(Debug, Default)]
pub struct VectorPool {
    dim: usize,
    free: Vec<Vector>,
}

impl VectorPool {
    /// An empty pool of `dim`-dimensional buffers.
    pub fn new(dim: usize) -> Self {
        VectorPool {
            dim,
            free: Vec::new(),
        }
    }

    /// The dimension every pooled buffer has.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of buffers currently available for checkout.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Takes a zeroed buffer from the pool, allocating only when the free
    /// list is empty (i.e. only while the pool is warming up).
    pub fn checkout(&mut self) -> Vector {
        match self.free.pop() {
            Some(mut v) => {
                v.fill(0.0);
                v
            }
            None => Vector::zeros(self.dim),
        }
    }

    /// Returns a buffer to the pool for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the buffer's dimension does not match the pool's — mixing
    /// dimensions would silently hand the wrong shape to a later checkout.
    pub fn checkin(&mut self, v: Vector) {
        assert_eq!(
            v.dim(),
            self.dim,
            "VectorPool::checkin: buffer dim {} does not match pool dim {}",
            v.dim(),
            self.dim
        );
        self.free.push(v);
    }

    /// Pre-allocates buffers so the next `n` checkouts are allocation-free.
    pub fn reserve(&mut self, n: usize) {
        while self.free.len() < n {
            self.free.push(Vector::zeros(self.dim));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_zeroed_even_after_dirty_checkin() {
        let mut pool = VectorPool::new(2);
        let mut v = pool.checkout();
        v[0] = 42.0;
        pool.checkin(v);
        let again = pool.checkout();
        assert_eq!(again.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn reserve_prefills() {
        let mut pool = VectorPool::new(4);
        pool.reserve(3);
        assert_eq!(pool.available(), 3);
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.available(), 1);
        pool.checkin(a);
        pool.checkin(b);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match pool dim")]
    fn wrong_dimension_rejected() {
        let mut pool = VectorPool::new(3);
        pool.checkin(Vector::zeros(2));
    }
}
