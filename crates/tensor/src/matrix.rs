//! Row-major dense matrices, used for dataset feature tables and MLP weight
//! blocks.

use crate::{TensorError, Vector};
use serde::{Deserialize, Serialize};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use dpbyz_tensor::{Matrix, Vector};
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// let y = m.matvec(&Vector::from(vec![1.0, 1.0]));
/// assert_eq!(y.as_slice(), &[3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for no rows and
    /// [`TensorError::DimensionMismatch`] for ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, TensorError> {
        let first = rows.first().ok_or(TensorError::Empty)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::DimensionMismatch {
                    expected: cols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            j < self.cols,
            "col {j} out of bounds for {} cols",
            self.cols
        );
        self.row(i)[j]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(
            j < self.cols,
            "col {j} out of bounds for {} cols",
            self.cols
        );
        let cols = self.cols;
        self.data[i * cols + j] = value;
    }

    /// Row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.dim() != cols`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        assert_eq!(
            x.dim(),
            self.cols,
            "matvec: vector dim {} vs {} cols",
            x.dim(),
            self.cols
        );
        let xs = x.as_slice();
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(xs.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ * y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.dim() != rows`.
    pub fn matvec_transposed(&self, y: &Vector) -> Vector {
        assert_eq!(
            y.dim(),
            self.rows,
            "matvec_transposed: vector dim {} vs {} rows",
            y.dim(),
            self.rows
        );
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let yi = y[i];
            if yi == 0.0 {
                continue;
            }
            let row = self.row(i);
            let o = out.as_mut_slice();
            for j in 0..self.cols {
                o[j] += yi * row[j];
            }
        }
        out
    }

    /// Returns a new matrix containing the rows selected by `indices`
    /// (duplicates allowed — used for with-replacement batch sampling).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Reshapes in place to `rows × cols` with every entry set to `value`,
    /// reusing the allocation when the capacity suffices.
    pub fn resize(&mut self, rows: usize, cols: usize, value: f64) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, value);
    }

    /// Writes the rows selected by `indices` into `out`, reusing `out`'s
    /// allocation — the zero-copy counterpart of [`Matrix::select_rows`]
    /// used by the batch-recycling samplers.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.data.clear();
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
        out.rows = indices.len();
        out.cols = self.cols;
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = m22();
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(matches!(
            Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(TensorError::DimensionMismatch { .. })
        ));
        assert_eq!(Matrix::from_rows(&[]), Err(TensorError::Empty));
    }

    #[test]
    fn matvec_works() {
        let y = m22().matvec(&Vector::from(vec![1.0, -1.0]));
        assert_eq!(y.as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn matvec_transposed_works() {
        let y = m22().matvec_transposed(&Vector::from(vec![1.0, 1.0]));
        assert_eq!(y.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn transpose_consistency_inner_product() {
        // <A x, y> == <x, A^T y>
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.5, -1.0, 4.0]]).unwrap();
        let x = Vector::from(vec![0.2, -0.7, 1.1]);
        let y = Vector::from(vec![2.0, -3.0]);
        let lhs = a.matvec(&x).dot(&y);
        let rhs = x.dot(&a.matvec_transposed(&y));
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn set_and_get() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 9.0);
        assert_eq!(m.get(1, 2), 9.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn select_rows_with_duplicates() {
        let m = m22();
        let s = m.select_rows(&[1, 1, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[3.0, 4.0]);
        assert_eq!(s.row(2), &[1.0, 2.0]);
    }

    #[test]
    fn select_rows_into_matches_select_rows() {
        let m = m22();
        let mut out = Matrix::zeros(5, 7); // dirty, wrong shape
        m.select_rows_into(&[1, 1, 0], &mut out);
        assert_eq!(out, m.select_rows(&[1, 1, 0]));
    }

    #[test]
    fn iter_rows_yields_all() {
        let m = m22();
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "matvec: vector dim")]
    fn matvec_mismatch_panics() {
        let _ = m22().matvec(&Vector::zeros(3));
    }
}
