//! Explicitly vectorized scalar kernels — the innermost loops of the
//! whole workspace.
//!
//! Every gradient-touching hot path (SGD updates, DP noising, the
//! Krum-family's O(n²·d) pairwise distances, the coordinate-statistics
//! GARs) bottoms out in one of the loops below. The `_into` refactor made
//! those loops *auto*-vectorization-friendly; this module makes the
//! vectorization **explicit and machine-independent**: every kernel is
//! written as a 4-lane strided loop with fixed blocking, so the compiler
//! reliably emits SIMD for the lane bodies while the summation order —
//! and therefore the result, bit for bit — is identical on every machine
//! and at every optimization level.
//!
//! Two families, with different equivalence contracts:
//!
//! * **Reduction kernels** ([`dot`], [`sum`], [`sum_squares`],
//!   [`squared_distance`], [`pairwise_squared_distances`]) accumulate
//!   into `LANES` independent partial sums combined pairwise at the end.
//!   This *reorders* the summation relative to the historical sequential
//!   fold, so results differ from [`reference`](mod@reference) in the last bits (the
//!   proptest suite below pins the relative error to ≤ 1e-12, and for
//!   inputs shorter than one block the two are bit-identical because the
//!   lane loop never runs). The reordering is fixed and data-independent:
//!   run-to-run, machine-to-machine, and pool-size determinism stay
//!   absolute.
//! * **Elementwise kernels** ([`axpy`], [`scale`], [`sub`], [`hadamard`],
//!   [`fill`], [`copy`]) compute each output element from the same
//!   expression as the scalar loop — unrolling changes no dependency
//!   chain, so they are **provably bit-identical** to their references
//!   (asserted exactly in the tests).
//!
//! The scalar implementations are retained in [`reference`](mod@reference) — they are
//! the ground truth of the equivalence suite and the baseline of the
//! `kernels` criterion bench group.

/// Lane count of every blocked loop. Fixed (not CPU-detected) so the
/// summation order is part of the reproducibility contract.
pub const LANES: usize = 4;

/// Reduction lengths below this take the sequential scalar path. At small
/// `d` the blocked loop's lane setup costs more than it saves — the
/// committed `results/BENCH_kernels.json` baseline had `squared_distance`
/// at `d = 10` *slower* vectorized than scalar (14.1 vs 10.9) — and
/// inputs this short barely vectorize anyway. Applied to [`dot`],
/// [`sum_squares`], and [`squared_distance`]; [`sum`] deliberately keeps
/// the blocked path at every length because its dominant callers are the
/// cohort-length coordinate statistics (`n ≲ 16` values per column) whose
/// blocked summation order is pinned by the golden history digests.
pub const SCALAR_CUTOFF: usize = 16;

/// Coordinate tile width of [`pairwise_squared_distances_tiled`]: a
/// multiple of [`LANES`] sized so one tile of every row in a typical
/// cohort (n ≈ 11 workers, 8·`TILE` bytes per row) stays cache-resident
/// while all O(n²) pairs consume it.
const TILE: usize = 512;

/// Scalar reference implementations: the historical sequential loops,
/// kept as the ground truth for the equivalence suite and the
/// scalar-vs-vectorized benchmarks. Do not route hot paths through these.
pub mod reference {
    /// Sequential-fold dot product.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }

    /// Sequential-fold sum.
    pub fn sum(xs: &[f64]) -> f64 {
        xs.iter().sum()
    }

    /// Sequential-fold sum of squares.
    pub fn sum_squares(xs: &[f64]) -> f64 {
        xs.iter().map(|x| x * x).sum()
    }

    /// Sequential-fold squared Euclidean distance.
    pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Per-pair scalar distance-matrix fill (the pre-kernel hot path):
    /// one sequential-fold distance per (a, b) pair into the flat
    /// symmetric `m × m` matrix.
    pub fn pairwise_squared_distances<R: AsRef<[f64]>>(
        rows: &[R],
        members: &[usize],
        out: &mut Vec<f64>,
    ) {
        let m = members.len();
        out.clear();
        out.resize(m * m, 0.0);
        for a in 0..m {
            for b in (a + 1)..m {
                let d = squared_distance(rows[members[a]].as_ref(), rows[members[b]].as_ref());
                out[a * m + b] = d;
                out[b * m + a] = d;
            }
        }
    }
}

/// Combines the four lane accumulators pairwise: `(l0 + l1) + (l2 + l3)`.
/// The fixed tree shape is part of the determinism contract.
#[inline(always)]
fn combine(acc: [f64; LANES]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// 4-lane blocked dot product `Σ aᵢ·bᵢ`.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    if a.len() < SCALAR_CUTOFF {
        return reference::dot(a, b);
    }
    let mut acc = [-0.0; LANES];
    let blocks = a.len() / LANES * LANES;
    for (ab, bb) in a[..blocks]
        .chunks_exact(LANES)
        .zip(b[..blocks].chunks_exact(LANES))
    {
        acc[0] += ab[0] * bb[0];
        acc[1] += ab[1] * bb[1];
        acc[2] += ab[2] * bb[2];
        acc[3] += ab[3] * bb[3];
    }
    let mut total = combine(acc);
    for (x, y) in a[blocks..].iter().zip(&b[blocks..]) {
        total += x * y;
    }
    total
}

/// 4-lane blocked sum `Σ xᵢ`.
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    let mut acc = [-0.0; LANES];
    let chunks = xs.chunks_exact(LANES);
    let rem = chunks.remainder();
    for block in chunks {
        acc[0] += block[0];
        acc[1] += block[1];
        acc[2] += block[2];
        acc[3] += block[3];
    }
    let mut total = combine(acc);
    for &x in rem {
        total += x;
    }
    total
}

/// 4-lane blocked sum of squares `Σ xᵢ²`.
#[inline]
pub fn sum_squares(xs: &[f64]) -> f64 {
    if xs.len() < SCALAR_CUTOFF {
        return reference::sum_squares(xs);
    }
    let mut acc = [-0.0; LANES];
    let chunks = xs.chunks_exact(LANES);
    let rem = chunks.remainder();
    for block in chunks {
        acc[0] += block[0] * block[0];
        acc[1] += block[1] * block[1];
        acc[2] += block[2] * block[2];
        acc[3] += block[3] * block[3];
    }
    let mut total = combine(acc);
    for &x in rem {
        total += x * x;
    }
    total
}

/// 4-lane blocked squared Euclidean distance `Σ (aᵢ − bᵢ)²`.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    if a.len() < SCALAR_CUTOFF {
        return reference::squared_distance(a, b);
    }
    let mut acc = [-0.0; LANES];
    let blocks = a.len() / LANES * LANES;
    for (ab, bb) in a[..blocks]
        .chunks_exact(LANES)
        .zip(b[..blocks].chunks_exact(LANES))
    {
        let d0 = ab[0] - bb[0];
        let d1 = ab[1] - bb[1];
        let d2 = ab[2] - bb[2];
        let d3 = ab[3] - bb[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut total = combine(acc);
    for (x, y) in a[blocks..].iter().zip(&b[blocks..]) {
        let d = x - y;
        total += d * d;
    }
    total
}

/// Batched all-pairs fill of the flat symmetric `m × m` squared-distance
/// matrix over `rows[members[·]]` — the Krum-family / MDA hot path. Each
/// pair is computed once with the blocked [`squared_distance`] kernel and
/// mirrored; `out` is cleared and resized in place (no allocation once
/// its capacity has warmed to `m²`).
///
/// # Panics
///
/// Panics if a member index is out of bounds or row lengths differ.
pub fn pairwise_squared_distances<R: AsRef<[f64]>>(
    rows: &[R],
    members: &[usize],
    out: &mut Vec<f64>,
) {
    let m = members.len();
    out.clear();
    out.resize(m * m, 0.0);
    for a in 0..m {
        let row_a = rows[members[a]].as_ref();
        for b in (a + 1)..m {
            let d = squared_distance(row_a, rows[members[b]].as_ref());
            out[a * m + b] = d;
            out[b * m + a] = d;
        }
    }
}

/// Cache-tiled variant of [`pairwise_squared_distances`] for large `d`:
/// the coordinate range is processed in `TILE`-wide (512) blocks, and within
/// each block every pair advances its own persistent `LANES` lane
/// accumulators — so the `m` rows stream through cache **once per tile**
/// (all O(m²) pairs consume a tile while it is resident) instead of once
/// per pair. For every pair the lane accumulators see exactly the same
/// block sequence in exactly the same order as the untiled
/// [`squared_distance`] kernel, so the result is **bit-identical** to the
/// untiled fill at every `d` (pinned by tests below); only the memory
/// traffic changes. Inputs with `m < 2` or `d <` [`SCALAR_CUTOFF`]
/// delegate to the untiled kernel (which itself dispatches to the scalar
/// path there).
///
/// `acc` is the caller-provided per-pair lane-accumulator buffer — reused
/// across rounds so the tiled fill stays allocation-free at steady state,
/// like `out`.
///
/// # Panics
///
/// Panics if a member index is out of bounds or row lengths differ.
pub fn pairwise_squared_distances_tiled<R: AsRef<[f64]>>(
    rows: &[R],
    members: &[usize],
    out: &mut Vec<f64>,
    acc: &mut Vec<[f64; LANES]>,
) {
    pairwise_tiled_with(rows, members, out, acc, TILE)
}

/// [`pairwise_squared_distances_tiled`] with an explicit tile width —
/// private so the tile size stays an internal tuning knob, but directly
/// exercised by the boundary tests below.
fn pairwise_tiled_with<R: AsRef<[f64]>>(
    rows: &[R],
    members: &[usize],
    out: &mut Vec<f64>,
    acc: &mut Vec<[f64; LANES]>,
    tile: usize,
) {
    debug_assert!(
        tile >= LANES && tile.is_multiple_of(LANES),
        "tile must block lanes"
    );
    let m = members.len();
    let dim = if m == 0 {
        0
    } else {
        rows[members[0]].as_ref().len()
    };
    if m < 2 || dim < SCALAR_CUTOFF {
        return pairwise_squared_distances(rows, members, out);
    }
    // lint:begin(zero-copy)
    out.clear();
    out.resize(m * m, 0.0);
    let pairs = m * (m - 1) / 2;
    acc.clear();
    acc.resize(pairs, [-0.0; LANES]);
    let blocks = dim / LANES * LANES;
    let mut start = 0;
    while start < blocks {
        let end = (start + tile).min(blocks);
        let mut p = 0;
        for a in 0..m {
            let row_a = &rows[members[a]].as_ref()[start..end];
            for b in (a + 1)..m {
                let row_b = &rows[members[b]].as_ref()[start..end];
                let lanes = &mut acc[p];
                for (ab, bb) in row_a.chunks_exact(LANES).zip(row_b.chunks_exact(LANES)) {
                    let d0 = ab[0] - bb[0];
                    let d1 = ab[1] - bb[1];
                    let d2 = ab[2] - bb[2];
                    let d3 = ab[3] - bb[3];
                    lanes[0] += d0 * d0;
                    lanes[1] += d1 * d1;
                    lanes[2] += d2 * d2;
                    lanes[3] += d3 * d3;
                }
                p += 1;
            }
        }
        start = end;
    }
    // Combine + sequential tail, per pair — identical to the epilogue of
    // the untiled kernel.
    let mut p = 0;
    for a in 0..m {
        let row_a = rows[members[a]].as_ref();
        for b in (a + 1)..m {
            let row_b = rows[members[b]].as_ref();
            let mut total = combine(acc[p]);
            for (x, y) in row_a[blocks..].iter().zip(&row_b[blocks..]) {
                let d = x - y;
                total += d * d;
            }
            out[a * m + b] = total;
            out[b * m + a] = total;
            p += 1;
        }
    }
    // lint:end(zero-copy)
}

/// Lane-unrolled `out[i] += alpha * x[i]` (elementwise: bit-identical to
/// the scalar loop).
///
/// # Panics
///
/// Panics if the slices' lengths differ.
#[inline]
pub fn axpy(out: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(out.len(), x.len(), "axpy: length mismatch");
    let n = out.len();
    let blocks = n / LANES * LANES;
    let (out_head, out_rem) = out.split_at_mut(blocks);
    for (ob, xb) in out_head.chunks_exact_mut(LANES).zip(x.chunks_exact(LANES)) {
        ob[0] += alpha * xb[0];
        ob[1] += alpha * xb[1];
        ob[2] += alpha * xb[2];
        ob[3] += alpha * xb[3];
    }
    for (o, v) in out_rem.iter_mut().zip(&x[blocks..]) {
        *o += alpha * v;
    }
}

/// Lane-unrolled in-place scaling `xs[i] *= alpha` (elementwise:
/// bit-identical to the scalar loop).
#[inline]
pub fn scale(xs: &mut [f64], alpha: f64) {
    let n = xs.len();
    let blocks = n / LANES * LANES;
    let (head, rem) = xs.split_at_mut(blocks);
    for block in head.chunks_exact_mut(LANES) {
        block[0] *= alpha;
        block[1] *= alpha;
        block[2] *= alpha;
        block[3] *= alpha;
    }
    for x in rem {
        *x *= alpha;
    }
}

/// Lane-unrolled `out[i] = a[i] − b[i]` (elementwise: bit-identical to
/// the scalar loop — and to `a[i] + (−1.0)·b[i]`, since IEEE negation is
/// exact).
///
/// # Panics
///
/// Panics if the slices' lengths differ.
#[inline]
pub fn sub(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    assert_eq!(a.len(), out.len(), "sub: output length mismatch");
    let n = out.len();
    let blocks = n / LANES * LANES;
    let (out_head, out_rem) = out.split_at_mut(blocks);
    for ((ob, ab), bb) in out_head
        .chunks_exact_mut(LANES)
        .zip(a.chunks_exact(LANES))
        .zip(b.chunks_exact(LANES))
    {
        ob[0] = ab[0] - bb[0];
        ob[1] = ab[1] - bb[1];
        ob[2] = ab[2] - bb[2];
        ob[3] = ab[3] - bb[3];
    }
    for ((o, x), y) in out_rem.iter_mut().zip(&a[blocks..]).zip(&b[blocks..]) {
        *o = x - y;
    }
}

/// Lane-unrolled Hadamard product `out[i] = a[i]·b[i]` (elementwise:
/// bit-identical to the scalar loop).
///
/// # Panics
///
/// Panics if the slices' lengths differ.
#[inline]
pub fn hadamard(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
    assert_eq!(a.len(), out.len(), "hadamard: output length mismatch");
    let n = out.len();
    let blocks = n / LANES * LANES;
    let (out_head, out_rem) = out.split_at_mut(blocks);
    for ((ob, ab), bb) in out_head
        .chunks_exact_mut(LANES)
        .zip(a.chunks_exact(LANES))
        .zip(b.chunks_exact(LANES))
    {
        ob[0] = ab[0] * bb[0];
        ob[1] = ab[1] * bb[1];
        ob[2] = ab[2] * bb[2];
        ob[3] = ab[3] * bb[3];
    }
    for ((o, x), y) in out_rem.iter_mut().zip(&a[blocks..]).zip(&b[blocks..]) {
        *o = x * y;
    }
}

/// Fills the slice with `value` (delegates to the libc-grade
/// `slice::fill`; listed here so the kernel layer is the single audit
/// point for every elementwise hot loop).
#[inline]
pub fn fill(xs: &mut [f64], value: f64) {
    xs.fill(value);
}

/// Overwrites `dst` with `src`, reusing `dst`'s allocation when its
/// capacity suffices (a pure `memcpy` at steady state).
#[inline]
pub fn copy(src: &[f64], dst: &mut Vec<f64>) {
    dst.clear();
    dst.extend_from_slice(src);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel_err(a: f64, b: f64) -> f64 {
        let scale = a.abs().max(b.abs()).max(1e-300);
        (a - b).abs() / scale
    }

    #[test]
    fn short_inputs_are_bit_identical_to_reference() {
        // Below one block the lane loop never runs (so even an undispatched
        // blocked kernel degenerates to the sequential fold), and from
        // there up to SCALAR_CUTOFF the dispatched kernels take the scalar
        // path outright: either way, bit-identical to the reference.
        for len in 0..SCALAR_CUTOFF {
            let xs: Vec<f64> = (0..len).map(|i| 0.1 + i as f64).collect();
            let ys: Vec<f64> = (0..len).map(|i| -1.5 * i as f64).collect();
            assert_eq!(
                sum_squares(&xs).to_bits(),
                reference::sum_squares(&xs).to_bits()
            );
            assert_eq!(dot(&xs, &ys).to_bits(), reference::dot(&xs, &ys).to_bits());
            assert_eq!(
                squared_distance(&xs, &ys).to_bits(),
                reference::squared_distance(&xs, &ys).to_bits()
            );
        }
        // `sum` is identical only below one block — beyond that it keeps
        // the blocked path (see the next test).
        for len in 0..LANES {
            let xs: Vec<f64> = (0..len).map(|i| 0.1 + i as f64).collect();
            assert_eq!(sum(&xs).to_bits(), reference::sum(&xs).to_bits());
        }
    }

    #[test]
    fn sum_keeps_the_blocked_path_below_the_cutoff() {
        // `sum` is excluded from the small-length scalar dispatch: its
        // blocked summation order at cohort lengths (n ≲ 16) is pinned by
        // the golden history digests. Assert the exact blocked order for a
        // length between LANES and SCALAR_CUTOFF.
        let xs: Vec<f64> = (0..9).map(|i| 0.1 + 1e15 * i as f64).collect();
        let mut acc = [-0.0f64; LANES];
        for block in xs.chunks_exact(LANES) {
            for (lane, &x) in acc.iter_mut().zip(block) {
                *lane += x;
            }
        }
        let mut expected = combine(acc);
        for &x in xs.chunks_exact(LANES).remainder() {
            expected += x;
        }
        assert_eq!(sum(&xs).to_bits(), expected.to_bits());
    }

    #[test]
    fn tiled_pairwise_is_bit_identical_to_untiled() {
        // Dims straddling the lane, cutoff, and tile boundaries; every
        // entry must match the untiled fill bit for bit.
        let mut rng = crate::Prng::seed_from_u64(11);
        for &dim in &[0usize, 1, 3, 15, 16, 17, 63, 64, 65, 511, 512, 513, 1030] {
            let rows: Vec<Vec<f64>> = (0..7)
                .map(|_| rng.normal_vector(dim.max(1), 1.0).into_vec()[..dim].to_vec())
                .collect();
            let members = [5usize, 0, 3, 6, 1];
            let mut untiled = Vec::new();
            pairwise_squared_distances(&rows, &members, &mut untiled);
            let mut tiled = vec![7.0; 3]; // dirty, wrong size
            let mut acc = Vec::new();
            pairwise_squared_distances_tiled(&rows, &members, &mut tiled, &mut acc);
            assert_eq!(tiled.len(), untiled.len(), "dim {dim}");
            for (i, (a, b)) in tiled.iter().zip(&untiled).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "dim {dim}, entry {i}");
            }
            // The tile width must be bit-invisible too.
            for &tile in &[LANES, 8, 64] {
                let mut narrow = Vec::new();
                pairwise_tiled_with(&rows, &members, &mut narrow, &mut acc, tile);
                for (a, b) in narrow.iter().zip(&untiled) {
                    assert_eq!(a.to_bits(), b.to_bits(), "dim {dim}, tile {tile}");
                }
            }
        }
    }

    #[test]
    fn pairwise_matrix_matches_reference_layout() {
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64; 7]).collect();
        let members = [4usize, 0, 2];
        let mut fast = vec![9.0; 2]; // dirty, wrong size
        let mut slow = Vec::new();
        pairwise_squared_distances(&rows, &members, &mut fast);
        reference::pairwise_squared_distances(&rows, &members, &mut slow);
        assert_eq!(fast.len(), 9);
        for (a, b) in fast.iter().zip(&slow) {
            assert!(rel_err(*a, *b) <= 1e-12);
        }
        // Symmetric with a zero diagonal.
        for i in 0..3 {
            assert_eq!(fast[i * 3 + i], 0.0);
            for j in 0..3 {
                assert_eq!(fast[i * 3 + j].to_bits(), fast[j * 3 + i].to_bits());
            }
        }
    }

    proptest! {
        #[test]
        fn prop_reductions_within_1e12_of_reference(
            xs in proptest::collection::vec(-1e3..1e3f64, 0..300),
            ys_seed in 0u64..1000,
        ) {
            let ys: Vec<f64> = xs
                .iter()
                .enumerate()
                .map(|(i, x)| x * 0.5 + (i as f64 + ys_seed as f64) * 1e-3)
                .collect();
            prop_assert!(rel_err(sum(&xs), reference::sum(&xs)) <= 1e-12);
            prop_assert!(rel_err(sum_squares(&xs), reference::sum_squares(&xs)) <= 1e-12);
            prop_assert!(rel_err(dot(&xs, &ys), reference::dot(&xs, &ys)) <= 1e-12);
            prop_assert!(
                rel_err(squared_distance(&xs, &ys), reference::squared_distance(&xs, &ys))
                    <= 1e-12
            );
        }

        #[test]
        fn prop_elementwise_bit_identical_to_scalar(
            xs in proptest::collection::vec(-1e3..1e3f64, 0..200),
            alpha in -10.0..10.0f64,
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| x * 1.7 - 0.3).collect();
            // axpy.
            let mut fast = ys.clone();
            axpy(&mut fast, alpha, &xs);
            let mut slow = ys.clone();
            for (o, x) in slow.iter_mut().zip(&xs) { *o += alpha * x; }
            prop_assert!(fast.iter().zip(&slow).all(|(a, b)| a.to_bits() == b.to_bits()));
            // scale.
            let mut fast = xs.clone();
            scale(&mut fast, alpha);
            let mut slow = xs.clone();
            for x in &mut slow { *x *= alpha; }
            prop_assert!(fast.iter().zip(&slow).all(|(a, b)| a.to_bits() == b.to_bits()));
            // sub.
            let mut fast = vec![0.0; xs.len()];
            sub(&xs, &ys, &mut fast);
            let slow: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a - b).collect();
            prop_assert!(fast.iter().zip(&slow).all(|(a, b)| a.to_bits() == b.to_bits()));
            // hadamard.
            let mut fast = vec![0.0; xs.len()];
            hadamard(&xs, &ys, &mut fast);
            let slow: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a * b).collect();
            prop_assert!(fast.iter().zip(&slow).all(|(a, b)| a.to_bits() == b.to_bits()));
            // fill + copy.
            let mut buf = xs.clone();
            fill(&mut buf, alpha);
            prop_assert!(buf.iter().all(|x| x.to_bits() == alpha.to_bits()));
            let mut dst = vec![1.0; 3];
            copy(&xs, &mut dst);
            prop_assert_eq!(&dst, &xs);
        }

        #[test]
        fn prop_tiled_pairwise_bit_identical(
            seed in 0u64..300,
            n in 2usize..8,
            dim in 1usize..260,
            tile_pow in 0u32..6,
        ) {
            let tile = LANES << tile_pow;
            let mut rng = crate::Prng::seed_from_u64(seed);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| rng.normal_vector(dim, 1.0).into_vec())
                .collect();
            let members: Vec<usize> = (0..n).collect();
            let mut untiled = Vec::new();
            let mut tiled = Vec::new();
            let mut acc = Vec::new();
            pairwise_squared_distances(&rows, &members, &mut untiled);
            pairwise_tiled_with(&rows, &members, &mut tiled, &mut acc, tile);
            for (a, b) in tiled.iter().zip(&untiled) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn prop_pairwise_matrix_within_1e12(
            seed in 0u64..500,
            n in 2usize..8,
            dim in 1usize..40,
        ) {
            let mut rng = crate::Prng::seed_from_u64(seed);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| rng.normal_vector(dim, 1.0).into_vec())
                .collect();
            let members: Vec<usize> = (0..n).collect();
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            pairwise_squared_distances(&rows, &members, &mut fast);
            reference::pairwise_squared_distances(&rows, &members, &mut slow);
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert!(rel_err(*a, *b) <= 1e-12, "{a} vs {b}");
            }
        }
    }
}
