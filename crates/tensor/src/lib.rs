//! Dense linear algebra, statistics, and seeded random sampling for
//! `dp-byz-sgd`.
//!
//! This crate is the lowest layer of the workspace: everything that touches a
//! gradient — models, differential-privacy mechanisms, Byzantine aggregation
//! rules, attacks — operates on the [`Vector`] and [`Matrix`] types defined
//! here, and draws randomness from the deterministic, split-able [`Prng`].
//!
//! # Design notes
//!
//! * [`Vector`] is a thin newtype over `Vec<f64>` with the arithmetic needed
//!   by SGD (axpy, dot, norms, clipping) implemented directly; no BLAS is
//!   used so the whole stack stays auditable and reproducible. The inner
//!   loops live in the explicit [`kernels`] layer — 4-lane blocked
//!   reductions and lane-unrolled elementwise kernels with fixed,
//!   machine-independent summation order.
//! * The normal and Laplace samplers in [`rng`] are implemented in-tree
//!   (polar Box–Muller, inverse CDF) because they sit on the
//!   differential-privacy critical path and must be reviewable.
//! * All randomness is seeded: a run of any experiment in the workspace is a
//!   pure function of its seed.
//!
//! # Example
//!
//! ```
//! use dpbyz_tensor::{Vector, Prng};
//!
//! let mut rng = Prng::seed_from_u64(42);
//! let g = Vector::from(vec![3.0, 4.0]);
//! assert_eq!(g.l2_norm(), 5.0);
//! let noisy = &g + &rng.normal_vector(2, 0.1);
//! assert_eq!(noisy.dim(), 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod kernels;
mod matrix;
mod pool;
pub mod rng;
pub mod stats;
mod vector;

pub use error::TensorError;
pub use matrix::Matrix;
pub use pool::VectorPool;
pub use rng::Prng;
pub use vector::Vector;
