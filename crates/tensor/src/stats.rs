//! Scalar and per-coordinate statistics.
//!
//! Byzantine-resilient aggregation rules are built out of exactly these
//! primitives: coordinate-wise medians and trimmed means (Median, Trimmed
//! Mean, Phocas, Meamed), and empirical variance estimates (the VN-ratio
//! condition, Eq. 2 / Eq. 8 of the paper).

use crate::{kernels, TensorError, Vector};

/// Arithmetic mean of a slice.
///
/// Sums through the 4-lane blocked [`kernels::sum`] — the same kernel
/// every coordinate-statistics GAR column reduction (trimmed mean,
/// mean-around) bottoms out in.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64, TensorError> {
    if xs.is_empty() {
        return Err(TensorError::Empty);
    }
    Ok(kernels::sum(xs) / xs.len() as f64)
}

/// Unbiased (n−1) sample variance.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for slices with fewer than 2 elements.
pub fn sample_variance(xs: &[f64]) -> Result<f64, TensorError> {
    if xs.len() < 2 {
        return Err(TensorError::Empty);
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population (÷n) variance.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for an empty slice.
pub fn population_variance(xs: &[f64]) -> Result<f64, TensorError> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Median via partial selection; averages the two middle elements for even
/// lengths.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for an empty slice.
pub fn median(xs: &[f64]) -> Result<f64, TensorError> {
    median_with(xs, &mut Vec::new())
}

/// [`median`] with a caller-provided scratch buffer, so repeated calls (one
/// per coordinate in the coordinate-wise GARs) perform no heap allocation
/// once the buffer has warmed up. Bit-identical to [`median`].
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for an empty slice.
pub fn median_with(xs: &[f64], scratch: &mut Vec<f64>) -> Result<f64, TensorError> {
    if xs.is_empty() {
        return Err(TensorError::Empty);
    }
    scratch.clear();
    scratch.extend_from_slice(xs);
    let n = scratch.len();
    let mid = n / 2;
    scratch.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("NaN in median input")); // lint:allow(panic-unwrap, reason = "documented panic: NaN violates the finite-input contract; failing loudly beats silently ordering NaN")
    let hi = scratch[mid];
    if n % 2 == 1 {
        Ok(hi)
    } else {
        let lo = scratch[..mid]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        Ok((lo + hi) / 2.0)
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics (type-7, the numpy default).
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64, TensorError> {
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1]");
    if xs.is_empty() {
        return Err(TensorError::Empty);
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input")); // lint:allow(panic-unwrap, reason = "documented panic: NaN violates the finite-input contract; failing loudly beats silently ordering NaN")
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Mean of the slice after removing the `trim` smallest and `trim` largest
/// elements (the scalar core of the Trimmed Mean GAR).
///
/// # Errors
///
/// Returns [`TensorError::Empty`] if fewer than `2*trim + 1` elements remain.
pub fn trimmed_mean(xs: &[f64], trim: usize) -> Result<f64, TensorError> {
    trimmed_mean_with(xs, trim, &mut Vec::new())
}

/// [`trimmed_mean`] with a caller-provided scratch buffer (no allocation
/// once warmed up). Bit-identical to [`trimmed_mean`].
///
/// # Errors
///
/// As [`trimmed_mean`].
pub fn trimmed_mean_with(
    xs: &[f64],
    trim: usize,
    scratch: &mut Vec<f64>,
) -> Result<f64, TensorError> {
    if xs.len() < 2 * trim + 1 {
        return Err(TensorError::Empty);
    }
    scratch.clear();
    scratch.extend_from_slice(xs);
    scratch.sort_by(|a, b| a.partial_cmp(b).expect("NaN in trimmed_mean input")); // lint:allow(panic-unwrap, reason = "documented panic: NaN violates the finite-input contract; failing loudly beats silently ordering NaN")
    mean(&scratch[trim..xs.len() - trim])
}

/// Mean of the `k` elements closest to `center` (the scalar core of the
/// Meamed and Phocas GARs).
///
/// # Errors
///
/// Returns [`TensorError::Empty`] if `k == 0` or `k > xs.len()`.
pub fn mean_around(xs: &[f64], center: f64, k: usize) -> Result<f64, TensorError> {
    mean_around_with(xs, center, k, &mut Vec::new())
}

/// [`mean_around`] with a caller-provided scratch buffer (no allocation
/// once warmed up). Uses the same *stable* sort as [`mean_around`], so
/// distance ties at the selection boundary resolve identically — the two
/// are bit-identical.
///
/// # Errors
///
/// As [`mean_around`].
pub fn mean_around_with(
    xs: &[f64],
    center: f64,
    k: usize,
    scratch: &mut Vec<f64>,
) -> Result<f64, TensorError> {
    if k == 0 || k > xs.len() {
        return Err(TensorError::Empty);
    }
    scratch.clear();
    scratch.extend_from_slice(xs);
    scratch.sort_by(|a, b| {
        (a - center)
            .abs()
            .partial_cmp(&(b - center).abs())
            .expect("NaN in mean_around input") // lint:allow(panic-unwrap, reason = "documented panic: NaN violates the finite-input contract; failing loudly beats silently ordering NaN")
    });
    mean(&scratch[..k])
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the trainer to keep running statistics of losses and VN ratios
/// without storing the full history.
///
/// # Example
///
/// ```
/// use dpbyz_tensor::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0] { w.push(x); }
/// assert_eq!(w.mean(), 2.0);
/// assert_eq!(w.sample_variance(), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

/// Per-coordinate mean of a non-empty slice of equal-dimension vectors.
///
/// # Errors
///
/// See [`Vector::mean`].
pub fn coordinate_mean(vectors: &[Vector]) -> Result<Vector, TensorError> {
    Vector::mean(vectors)
}

/// Per-coordinate unbiased standard deviation across vectors.
///
/// This is exactly the `σ_t` used by the "A Little Is Enough" attack.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for fewer than 2 vectors,
/// [`TensorError::DimensionMismatch`] for ragged input.
pub fn coordinate_std(vectors: &[Vector]) -> Result<Vector, TensorError> {
    if vectors.len() < 2 {
        return Err(TensorError::Empty);
    }
    let dim = vectors[0].dim();
    let mean = Vector::mean(vectors)?;
    let mut acc = Vector::zeros(dim);
    for v in vectors {
        let d = v - &mean;
        acc += &d.hadamard(&d);
    }
    acc.scale(1.0 / (vectors.len() - 1) as f64);
    Ok(acc.map(f64::sqrt))
}

/// Per-coordinate median across vectors.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for no vectors,
/// [`TensorError::DimensionMismatch`] for ragged input.
pub fn coordinate_median(vectors: &[Vector]) -> Result<Vector, TensorError> {
    coordinate_apply(vectors, median)
}

/// Per-coordinate trimmed mean across vectors (removes `trim` extremes on
/// each side, per coordinate).
///
/// # Errors
///
/// Propagates [`trimmed_mean`] errors; rejects ragged input.
pub fn coordinate_trimmed_mean(vectors: &[Vector], trim: usize) -> Result<Vector, TensorError> {
    coordinate_apply(vectors, |col| trimmed_mean(col, trim))
}

/// Applies a scalar reducer to every coordinate column.
fn coordinate_apply(
    vectors: &[Vector],
    f: impl Fn(&[f64]) -> Result<f64, TensorError>,
) -> Result<Vector, TensorError> {
    let first = vectors.first().ok_or(TensorError::Empty)?;
    let dim = first.dim();
    for v in vectors {
        if v.dim() != dim {
            return Err(TensorError::DimensionMismatch {
                expected: dim,
                actual: v.dim(),
            });
        }
    }
    let mut out = Vector::zeros(dim);
    let mut col = vec![0.0; vectors.len()];
    for j in 0..dim {
        for (i, v) in vectors.iter().enumerate() {
            col[i] = v[j];
        }
        out[j] = f(&col)?;
    }
    Ok(out)
}

/// Empirical mean squared deviation of `vectors` around their own mean:
/// an estimate of `E‖G − E[G]‖²`, the numerator of the VN ratio.
///
/// Uses the unbiased (n−1) normalization.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for fewer than 2 vectors.
pub fn empirical_variance_around_mean(vectors: &[Vector]) -> Result<f64, TensorError> {
    if vectors.len() < 2 {
        return Err(TensorError::Empty);
    }
    let mean = Vector::mean(vectors)?;
    let ss: f64 = vectors.iter().map(|v| v.l2_distance_squared(&mean)).sum();
    Ok(ss / (vectors.len() - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert_eq!(sample_variance(&[1.0, 2.0, 3.0]).unwrap(), 1.0);
        assert_eq!(population_variance(&[1.0, 3.0]).unwrap(), 1.0);
        assert!(mean(&[]).is_err());
        assert!(sample_variance(&[1.0]).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert_eq!(median(&[7.0]).unwrap(), 7.0);
        assert!(median(&[]).is_err());
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 0.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 3.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 1.5);
    }

    #[test]
    fn trimmed_mean_removes_extremes() {
        // Outliers at both ends are removed.
        let xs = [100.0, 1.0, 2.0, 3.0, -50.0];
        assert_eq!(trimmed_mean(&xs, 1).unwrap(), 2.0);
        assert!(trimmed_mean(&xs, 2).is_ok());
        assert!(trimmed_mean(&xs, 3).is_err());
    }

    #[test]
    fn mean_around_center() {
        let xs = [0.0, 1.0, 10.0, 11.0];
        assert_eq!(mean_around(&xs, 0.5, 2).unwrap(), 0.5);
        assert!(mean_around(&xs, 0.0, 0).is_err());
        assert!(mean_around(&xs, 0.0, 5).is_err());
    }

    #[test]
    fn scratch_variants_match_allocating_bitwise() {
        let xs = [3.5, -1.0, 7.25, 0.0, 2.5, 2.5, -1.0, 9.0];
        let mut scratch = vec![42.0; 2]; // dirty
        assert_eq!(
            median(&xs).unwrap().to_bits(),
            median_with(&xs, &mut scratch).unwrap().to_bits()
        );
        assert_eq!(
            trimmed_mean(&xs, 2).unwrap().to_bits(),
            trimmed_mean_with(&xs, 2, &mut scratch).unwrap().to_bits()
        );
        assert_eq!(
            mean_around(&xs, 2.0, 4).unwrap().to_bits(),
            mean_around_with(&xs, 2.0, 4, &mut scratch)
                .unwrap()
                .to_bits()
        );
        assert!(median_with(&[], &mut scratch).is_err());
        assert!(trimmed_mean_with(&xs, 4, &mut scratch).is_err());
        assert!(mean_around_with(&xs, 0.0, 0, &mut scratch).is_err());
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((w.sample_variance() - sample_variance(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
    }

    #[test]
    fn coordinate_std_matches_manual() {
        let vs = vec![Vector::from(vec![1.0, 10.0]), Vector::from(vec![3.0, 10.0])];
        let s = coordinate_std(&vs).unwrap();
        assert!((s[0] - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn coordinate_median_works() {
        let vs = vec![
            Vector::from(vec![1.0, 5.0]),
            Vector::from(vec![2.0, -5.0]),
            Vector::from(vec![100.0, 0.0]),
        ];
        let m = coordinate_median(&vs).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn coordinate_trimmed_mean_works() {
        let vs = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![1000.0]),
        ];
        let m = coordinate_trimmed_mean(&vs, 1).unwrap();
        assert_eq!(m.as_slice(), &[2.0]);
    }

    #[test]
    fn coordinate_fns_reject_ragged() {
        let vs = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(coordinate_median(&vs).is_err());
        assert!(coordinate_std(&vs).is_err());
    }

    #[test]
    fn empirical_variance_simple() {
        // Two points at distance 2 ⇒ each at distance 1 from mean,
        // sum of squares 2, over (n-1)=1 ⇒ 2.
        let vs = vec![Vector::from(vec![0.0]), Vector::from(vec![2.0])];
        assert_eq!(empirical_variance_around_mean(&vs).unwrap(), 2.0);
        assert!(empirical_variance_around_mean(&vs[..1]).is_err());
    }

    proptest! {
        #[test]
        fn prop_median_is_order_statistic(xs in proptest::collection::vec(-1e6..1e6f64, 1..64)) {
            let m = median(&xs).unwrap();
            let below = xs.iter().filter(|&&x| x <= m + 1e-9).count();
            let above = xs.iter().filter(|&&x| x >= m - 1e-9).count();
            prop_assert!(below * 2 >= xs.len());
            prop_assert!(above * 2 >= xs.len());
        }

        #[test]
        fn prop_trimmed_mean_within_range(
            xs in proptest::collection::vec(-1e6..1e6f64, 5..64),
            trim in 0usize..2,
        ) {
            let tm = trimmed_mean(&xs, trim).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(tm >= lo - 1e-9 && tm <= hi + 1e-9);
        }

        #[test]
        fn prop_welford_agrees_with_batch(xs in proptest::collection::vec(-1e3..1e3f64, 2..128)) {
            let mut w = Welford::new();
            for &x in &xs { w.push(x); }
            prop_assert!((w.mean() - mean(&xs).unwrap()).abs() < 1e-6);
            prop_assert!((w.sample_variance() - sample_variance(&xs).unwrap()).abs() < 1e-6);
        }

        #[test]
        fn prop_quantile_monotone(xs in proptest::collection::vec(-1e3..1e3f64, 1..64), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, lo).unwrap() <= quantile(&xs, hi).unwrap() + 1e-9);
        }
    }
}
