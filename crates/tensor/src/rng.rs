//! Seeded, split-able pseudo-randomness and the samplers used by the
//! differential-privacy mechanisms.
//!
//! All experiment randomness flows through [`Prng`], so a run is a pure
//! function of its seed. The normal and Laplace samplers are implemented
//! in-tree (polar Box–Muller and inverse CDF respectively) because they sit
//! on the privacy-critical path and must be reviewable.

use crate::Vector;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic pseudo-random number generator with derivation support.
///
/// Wraps [`StdRng`] and adds:
/// * Gaussian and Laplace sampling (scalar and vector forms),
/// * `derive` — create an independent child stream from a label, so each
///   worker in a simulated deployment gets its own reproducible stream.
///
/// # Example
///
/// ```
/// use dpbyz_tensor::Prng;
///
/// let mut root = Prng::seed_from_u64(1);
/// let mut w0 = root.derive(0);
/// let mut w1 = root.derive(1);
/// assert_ne!(w0.standard_normal(), w1.standard_normal());
/// ```
#[derive(Debug)]
pub struct Prng {
    inner: StdRng,
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator identified by `stream`.
    ///
    /// Uses a SplitMix64 finalizer over the parent's next raw output mixed
    /// with the stream id, so children with different ids are decorrelated
    /// and the derivation itself advances the parent deterministically.
    pub fn derive(&mut self, stream: u64) -> Prng {
        let raw: u64 = self.inner.random();
        Prng::seed_from_u64(splitmix64(raw ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range requires lo < hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires n > 0");
        self.inner.random_range(0..n)
    }

    /// Bernoulli sample with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via the polar Box–Muller method.
    pub fn standard_normal(&mut self) -> f64 {
        // Polar (Marsaglia) method: rejection-sample a point in the unit
        // disk, then transform. One of the two produced deviates is
        // discarded to keep the generator state independent of call parity.
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std >= 0.0, "normal std must be non-negative");
        mean + std * self.standard_normal()
    }

    /// Laplace(0, scale) sample via inverse CDF.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative.
    pub fn laplace(&mut self, scale: f64) -> f64 {
        assert!(scale >= 0.0, "laplace scale must be non-negative");
        // U uniform on (-1/2, 1/2]; X = -scale * sign(U) * ln(1 - 2|U|).
        let u = self.uniform() - 0.5;
        -scale * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }

    /// Exponential(rate) sample via inverse CDF.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -(1.0 - self.uniform()).max(f64::MIN_POSITIVE).ln() / rate
    }

    /// Vector of i.i.d. `N(0, std²)` coordinates — the DP Gaussian noise
    /// vector `y ~ N(0, I_d · s²)` of Eq. (6).
    pub fn normal_vector(&mut self, dim: usize, std: f64) -> Vector {
        (0..dim).map(|_| self.normal(0.0, std)).collect()
    }

    /// Vector of i.i.d. Laplace(0, scale) coordinates.
    pub fn laplace_vector(&mut self, dim: usize, scale: f64) -> Vector {
        (0..dim).map(|_| self.laplace(scale)).collect()
    }

    /// Vector of i.i.d. uniform `[lo, hi)` coordinates.
    pub fn uniform_vector(&mut self, dim: usize, lo: f64, hi: f64) -> Vector {
        (0..dim).map(|_| self.uniform_range(lo, hi)).collect()
    }

    /// Samples `k` indices from `[0, n)` without replacement
    /// (partial Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n} without replacement");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Samples `k` indices from `[0, n)` with replacement.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` and `k > 0`.
    pub fn sample_with_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        (0..k).map(|_| self.index(n)).collect()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

/// SplitMix64 finalizer — a high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn derive_is_deterministic_and_decorrelated() {
        let mut root1 = Prng::seed_from_u64(42);
        let mut root2 = Prng::seed_from_u64(42);
        let mut c1 = root1.derive(5);
        let mut c2 = root2.derive(5);
        assert_eq!(c1.uniform(), c2.uniform());

        let mut root3 = Prng::seed_from_u64(42);
        let mut d0 = root3.derive(0);
        assert_ne!(c1.uniform(), d0.uniform());
    }

    #[test]
    fn normal_moments() {
        let mut rng = Prng::seed_from_u64(3);
        let mut w = Welford::new();
        for _ in 0..50_000 {
            w.push(rng.normal(2.0, 3.0));
        }
        assert!((w.mean() - 2.0).abs() < 0.05, "mean {}", w.mean());
        assert!(
            (w.sample_variance() - 9.0).abs() < 0.3,
            "var {}",
            w.sample_variance()
        );
    }

    #[test]
    fn laplace_moments() {
        // Laplace(0, b) has mean 0 and variance 2 b².
        let mut rng = Prng::seed_from_u64(4);
        let mut w = Welford::new();
        for _ in 0..50_000 {
            w.push(rng.laplace(1.5));
        }
        assert!(w.mean().abs() < 0.05, "mean {}", w.mean());
        assert!(
            (w.sample_variance() - 4.5).abs() < 0.25,
            "var {}",
            w.sample_variance()
        );
    }

    #[test]
    fn exponential_moments() {
        let mut rng = Prng::seed_from_u64(5);
        let mut w = Welford::new();
        for _ in 0..50_000 {
            w.push(rng.exponential(2.0));
        }
        assert!((w.mean() - 0.5).abs() < 0.02, "mean {}", w.mean());
    }

    #[test]
    fn normal_tail_fraction() {
        // P(|Z| > 1.96) ≈ 0.05 for a standard normal.
        let mut rng = Prng::seed_from_u64(6);
        let n = 50_000;
        let tail = (0..n)
            .filter(|_| rng.standard_normal().abs() > 1.96)
            .count();
        let frac = tail as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.01, "tail fraction {frac}");
    }

    #[test]
    fn normal_vector_shape_and_scale() {
        let mut rng = Prng::seed_from_u64(8);
        let v = rng.normal_vector(10_000, 0.5);
        assert_eq!(v.dim(), 10_000);
        // E‖v‖² = d·s².
        let expected = 10_000.0 * 0.25;
        assert!((v.l2_norm_squared() - expected).abs() / expected < 0.1);
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = Prng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn sample_without_replacement_unique_and_in_range() {
        let mut rng = Prng::seed_from_u64(10);
        let s = rng.sample_without_replacement(100, 30);
        assert_eq!(s.len(), 30);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_with_replacement_in_range() {
        let mut rng = Prng::seed_from_u64(11);
        let s = rng.sample_with_replacement(5, 64);
        assert_eq!(s.len(), 64);
        assert!(s.iter().all(|&i| i < 5));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::seed_from_u64(12);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Prng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_too_many_panics() {
        Prng::seed_from_u64(0).sample_without_replacement(3, 4);
    }
}
