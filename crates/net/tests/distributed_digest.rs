//! Cross-engine reproducibility: the TCP deployment must be a
//! bit-for-bit drop-in for the in-process engines, and deployment-shape
//! mistakes must surface as [`PipelineError::Spec`] — not hangs.

use dpbyz_core::pipeline::{Experiment, FigureConfig, PipelineError};
use dpbyz_core::{AttackKind, ComponentSpec};

fn attacked_experiment() -> Experiment {
    Experiment::paper_figure(FigureConfig {
        batch_size: 10,
        epsilon: Some(0.2),
        attack: Some(AttackKind::PAPER_ALIE),
        steps: 8,
        dataset_size: 300,
        ..FigureConfig::default()
    })
    .unwrap()
}

/// The tentpole acceptance property: same seed, three engines, one
/// history. The digest is additionally pinned so a silent cross-engine
/// drift (all three moving together) still fails loudly.
#[test]
fn tcp_engine_is_bit_identical_to_sequential_and_threaded() {
    dpbyz_net::install();
    let seed = 17;

    let mut exp = attacked_experiment();
    exp.backend = ComponentSpec::new("sequential");
    let sequential = exp.run(seed).unwrap();

    exp.backend = ComponentSpec::new("threaded");
    let threaded = exp.run(seed).unwrap();

    exp.backend = ComponentSpec::new("tcp");
    let tcp = exp.run(seed).unwrap();

    assert_eq!(sequential, threaded);
    assert_eq!(sequential, tcp);
    assert_eq!(tcp.digest(), sequential.digest());
    assert_eq!(
        tcp.digest(),
        0xc734_d436_89ac_31bc,
        "pinned fixed-seed digest drifted: got {:#018x}",
        tcp.digest()
    );
}

/// An all-honest run (no attack armed) spawns every worker as a session
/// and still reproduces the sequential history exactly.
#[test]
fn tcp_engine_matches_without_an_attack() {
    dpbyz_net::install();
    let mut exp = Experiment::paper_figure(FigureConfig {
        batch_size: 10,
        steps: 6,
        dataset_size: 300,
        ..FigureConfig::default()
    })
    .unwrap();
    let seed = 3;
    let reference = exp.run(seed).unwrap();

    exp.backend = ComponentSpec::new("tcp");
    let tcp = exp.run(seed).unwrap();
    assert_eq!(reference, tcp);
}

/// `min_workers` larger than the worker count can never gate open; the
/// backend must refuse up front instead of idling until the join
/// deadline.
#[test]
fn impossible_min_workers_is_a_spec_error() {
    dpbyz_net::install();
    let mut exp = attacked_experiment();
    exp.backend = ComponentSpec::new("tcp").with("min_workers", 99u64);
    match exp.run(5) {
        Err(PipelineError::Spec(msg)) => {
            assert!(msg.contains("min_workers 99"), "{msg}");
            assert!(msg.contains("n_workers"), "{msg}");
        }
        Ok(_) => panic!("min_workers 99 > n_workers must not run"),
        Err(other) => panic!("expected Spec error, got {other}"),
    }
}

/// Byzantine colluders are simulated server-side, so a `min_workers`
/// between `n_honest` and `n_workers` would also hang — the error must
/// explain that only honest workers ever connect.
#[test]
fn min_workers_beyond_honest_names_the_server_side_simulation() {
    dpbyz_net::install();
    let mut exp = attacked_experiment();
    // n = 11, f = 5 ⇒ 6 honest sessions; 8 ≤ 11 but 8 > 6.
    exp.backend = ComponentSpec::new("tcp").with("min_workers", 8u64);
    match exp.run(5) {
        Err(PipelineError::Spec(msg)) => {
            assert!(msg.contains("honest"), "{msg}");
            assert!(msg.contains("server-side"), "{msg}");
        }
        Ok(_) => panic!("min_workers 8 > n_honest 6 must not run"),
        Err(other) => panic!("expected Spec error, got {other}"),
    }
}

/// Unknown backend ids list what IS registered — including `"tcp"` once
/// installed — so the fix is in the error message.
#[test]
fn unknown_backend_error_names_tcp_among_available_ids() {
    dpbyz_net::install();
    let mut exp = attacked_experiment();
    exp.backend = ComponentSpec::new("carrier-pigeon");
    match exp.run(1) {
        Err(PipelineError::Spec(msg)) => {
            assert!(msg.contains("carrier-pigeon"), "{msg}");
            assert!(msg.contains("tcp"), "{msg}");
            assert!(msg.contains("sequential"), "{msg}");
        }
        Ok(_) => panic!("unknown backend id must not run"),
        Err(other) => panic!("expected Spec error, got {other}"),
    }
}
