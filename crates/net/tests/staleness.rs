//! Bounded-staleness acceptance: a `staleness_window = k > 0` run must be
//! *explainable* — every late admit maps onto the sequential engine's
//! `set_submission_age` damping, bit for bit — and the new wire paths
//! (ahead-of-round buffering, `JOIN_FRESH`) must hold up over real TCP.
//!
//! Why the sim/sequential equivalence is the right acceptance bar: the
//! paper's `f` accounting covers *omitted* gradients (zero substitution),
//! and the staleness extension adds exactly one new admissible content —
//! an old gradient damped by `λ^age` before the GAR sees it. If a chaos
//! schedule under `k = 1` reproduces a hand-driven engine that zeroes the
//! dropped rounds and replays the held outputs with their age flags, then
//! bounded staleness introduces no third behaviour.

use bytes::{BufMut, BytesMut};
use dpbyz_core::pipeline::{Experiment, FigureConfig};
use dpbyz_core::ComponentSpec;
use dpbyz_net::protocol::{
    begin_frame, end_frame, write_all_frame, KIND_ABORT, KIND_DONE, KIND_GRAD, KIND_JOIN,
    KIND_JOIN_FRESH, KIND_READY, KIND_STEP, KIND_WARMUP,
};
use dpbyz_net::{CoordinatorConfig, FaultPlan, SimBackend, TcpCoordinator};
use dpbyz_server::message::{GradientMessage, StepMessage};
use dpbyz_server::{FnObserver, HonestWorker, RunHistory, RunScratch, WorkerOutput};
use dpbyz_tensor::Vector;
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

const STEPS: u32 = 6;

/// A clean (no-attack, average-GAR) figure run with the staleness knobs
/// set; `window = 0` is today's strict semantics.
fn experiment(window: u32) -> Experiment {
    let mut exp = Experiment::paper_figure(FigureConfig {
        batch_size: 10,
        steps: STEPS,
        dataset_size: 300,
        ..FigureConfig::default()
    })
    .unwrap();
    exp.config.staleness_window = window;
    exp.config.staleness_damping = 0.5;
    exp
}

fn sim_backend(quorum: usize) -> SimBackend {
    SimBackend::from_spec(&ComponentSpec::new("sim").with("quorum", quorum as u64))
}

/// Worker `w` straggles on a fixed schedule (virtual step deadline is
/// 10 000 ms; clean delivery is ~4 ms): the step-2 report arrives during
/// round 3 (one round old — admissible at `k = 1`), the step-3 report
/// arrives during round 6 (three rounds old — never admissible), and the
/// step-5 report arrives during round 6 (one round old). Distinct delays
/// keep every arrival strictly inside a round, away from deadline ties.
fn straggler_plan(n: usize, w: u32) -> FaultPlan {
    FaultPlan::clean(n)
        .with_grad_delay(w, 2, 2, 11_500)
        .with_grad_delay(w, 3, 3, 13_000)
        .with_grad_delay(w, 5, 6, 11_500)
}

/// Drives the sequential engine by hand, reproducing a straggler schedule
/// for the *last* worker: in a `zeroed` round its fresh output is held
/// back and a zero vector aggregated (the §2.1 fault-injection
/// semantics); in an `admits` round `(t, src)` the held step-`src` output
/// is aggregated with `set_submission_age(w, t - src)` so the server
/// damps it by `λ^(t-src)` — exactly what the coordinator does for a
/// frame admitted inside the staleness window.
fn damped_reference(
    exp: &Experiment,
    seed: u64,
    zeroed: &[u32],
    admits: &[(u32, u32)],
) -> RunHistory {
    let mut scratch = RunScratch::new();
    let (mut core, mut workers) = exp
        .build_trainer()
        .unwrap()
        .into_distributed_parts(seed, &mut scratch);
    let w = workers.len() - 1;
    let dim = core.params().dim();
    let mut outputs: Vec<WorkerOutput> = Vec::new();
    outputs.resize_with(workers.len(), WorkerOutput::default);
    let mut held: HashMap<u32, WorkerOutput> = HashMap::new();
    let mut params = Vector::default();
    for t in 1..=core.config().steps {
        params.copy_from(core.params());
        let batch = core.config().batch_at(t);
        for (wk, out) in workers.iter_mut().zip(outputs.iter_mut()) {
            wk.compute_into(&params, batch, out);
        }
        if zeroed.contains(&t) {
            held.insert(t, outputs[w].clone());
            outputs[w].submitted.resize(dim, 0.0);
            outputs[w].submitted.fill(0.0);
            outputs[w].pre_noise.resize(dim, 0.0);
            outputs[w].pre_noise.fill(0.0);
            outputs[w].batch_loss = 0.0;
        }
        if let Some(&(_, src)) = admits.iter().find(|&&(round, _)| round == t) {
            outputs[w] = held.remove(&src).expect("held straggler output");
            core.set_submission_age(w, t - src);
        }
        core.process_round(t, &mut outputs).unwrap();
    }
    core.finish(seed)
}

/// The tentpole pin: under `k = 1` the straggler schedule drops rounds
/// 2 and 5, admits the held step-2/step-5 outputs one round late (damped
/// λ¹), and rejects the three-rounds-old step-3 report — and the whole
/// trajectory is bit-identical to the hand-damped sequential engine.
#[test]
fn damped_late_admits_match_the_hand_damped_sequential_engine() {
    let exp = experiment(1);
    let n = exp.config.n_workers;
    let w = (n - 1) as u32;
    let backend = sim_backend(n - 1);
    let seed = 7;
    let plan = straggler_plan(n, w);
    let mut scratch = RunScratch::new();

    let sim = backend
        .run_with_plan(&exp, seed, &plan, None, &mut scratch)
        .unwrap();

    assert_eq!(sim.churn.dropped_rounds[w as usize], 2);
    assert_eq!(sim.churn.late_admits[w as usize], 2);
    assert_eq!(sim.churn.stale_rejected[w as usize], 1);
    for id in 0..(n - 1) {
        assert_eq!(
            sim.churn.dropped_rounds[id], 0,
            "worker {id} never straggles"
        );
        assert_eq!(sim.churn.late_admits[id], 0);
        assert_eq!(sim.churn.stale_rejected[id], 0);
    }

    let reference = damped_reference(&exp, seed, &[2, 5], &[(3, 2), (6, 5)]);
    assert_eq!(
        sim, reference,
        "staleness-damped sim run diverged from the hand-damped sequential engine"
    );
    assert_eq!(sim.digest(), reference.digest());

    let replay = backend
        .run_with_plan(&exp, seed, &plan, None, &mut scratch)
        .unwrap();
    assert_eq!(sim, replay, "staleness runs must replay bit-identically");

    // Pinned so an accidental semantic change to admission, damping
    // order, or the timing model cannot slip through refactors.
    assert_eq!(sim.digest(), 0x4742_9274_31b7_3a32);
}

/// `k = 0` contrast on the *same* schedule: every late report is beyond
/// the window, so the run equals the pure-straggler reference (rounds
/// 2, 3, 5 and 6 zeroed, nothing ever admitted late) and differs from
/// the `k = 1` trajectory.
#[test]
fn zero_window_treats_the_same_schedule_as_pure_stragglers() {
    let strict_exp = experiment(0);
    let n = strict_exp.config.n_workers;
    let w = (n - 1) as u32;
    let backend = sim_backend(n - 1);
    let seed = 7;
    let plan = straggler_plan(n, w);
    let mut scratch = RunScratch::new();

    let strict = backend
        .run_with_plan(&strict_exp, seed, &plan, None, &mut scratch)
        .unwrap();

    assert!(strict.churn.late_admits.iter().all(|&c| c == 0));
    assert_eq!(strict.churn.dropped_rounds[w as usize], 4);
    assert_eq!(strict.churn.stale_rejected[w as usize], 3);

    let reference = damped_reference(&strict_exp, seed, &[2, 3, 5, 6], &[]);
    assert_eq!(
        strict, reference,
        "window 0 must reduce to the strict straggler semantics"
    );

    let damped = backend
        .run_with_plan(&experiment(1), seed, &plan, None, &mut scratch)
        .unwrap();
    assert_ne!(
        strict, damped,
        "λ-damped late admits must perturb the trajectory"
    );

    let replay = backend
        .run_with_plan(&strict_exp, seed, &plan, None, &mut scratch)
        .unwrap();
    assert_eq!(strict, replay);
}

// ---------------------------------------------------------------------
// TCP wire paths: hand-rolled clients speaking the real frame protocol.
// ---------------------------------------------------------------------

fn read_frame(stream: &mut TcpStream) -> io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 5];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let mut payload = vec![0u8; len.saturating_sub(1)];
    stream.read_exact(&mut payload)?;
    Ok((header[4], payload))
}

fn send_id_frame(stream: &mut TcpStream, kind: u8, id: u32) -> io::Result<()> {
    let mut buf = BytesMut::default();
    begin_frame(&mut buf, kind);
    buf.put_u32_le(id);
    end_frame(&mut buf);
    write_all_frame(stream, &buf)
}

fn send_grad(stream: &mut TcpStream, id: u32, step: u32, out: &WorkerOutput) -> io::Result<()> {
    let mut sub = BytesMut::default();
    let mut pre = BytesMut::default();
    GradientMessage::encode_frame(id, step, &out.submitted, &mut sub);
    GradientMessage::encode_frame(id, step, &out.pre_noise, &mut pre);
    let mut frame = BytesMut::default();
    begin_frame(&mut frame, KIND_GRAD);
    frame.put_f64_le(out.batch_loss);
    frame.put_u32_le(sub.len() as u32);
    frame.put_slice(&sub);
    frame.put_slice(&pre);
    end_frame(&mut frame);
    write_all_frame(stream, &frame)
}

/// A worker that reports one step *ahead* of the open round: on STEP 1 it
/// first sends a report tagged for step 2, then its real step-1 report.
/// Returns whether the coordinator carried the session through to DONE.
fn ahead_of_round_client(addr: SocketAddr, mut worker: HonestWorker) -> io::Result<bool> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let id = worker.id();
    send_id_frame(&mut stream, KIND_JOIN, id)?;
    let mut params = Vector::default();
    let mut out = WorkerOutput::default();
    loop {
        let (kind, payload) = read_frame(&mut stream)?;
        match kind {
            KIND_WARMUP => send_id_frame(&mut stream, KIND_READY, id)?,
            KIND_STEP => {
                let (step, batch) = StepMessage::decode_into(&payload, &mut params)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
                if step == 1 {
                    worker.compute_into(&params, batch as usize, &mut out);
                    // The ahead-of-round frame: wire-valid, tagged for a
                    // step the coordinator has not broadcast yet. It must
                    // be buffered, not treated as a protocol violation.
                    send_grad(&mut stream, id, 2, &out)?;
                    send_grad(&mut stream, id, 1, &out)?;
                }
                // STEP 2 arrives later; the buffered frame answers it.
            }
            KIND_DONE => return Ok(true),
            KIND_ABORT => return Ok(false),
            _ => {}
        }
    }
}

/// Regression for the `Admission::Future` fix: before buffering, an
/// ahead-of-round frame stalled its round (the report was discarded, the
/// deadline burned, and a one-worker quorum aborted the run). Now the
/// frame waits in the per-worker buffer and is admitted the moment the
/// round advances, so the run completes without the worker ever
/// re-sending.
#[test]
fn an_ahead_of_round_frame_is_buffered_and_admitted_on_advance() {
    let exp = Experiment::theorem1(4, 0.1, None, 2, 5, 1).unwrap();
    let seed = 3;
    let mut scratch = RunScratch::new();
    let (core, mut workers) = exp
        .build_trainer()
        .unwrap()
        .into_distributed_parts(seed, &mut scratch);
    let worker = workers.pop().unwrap();

    let cfg = CoordinatorConfig {
        min_workers: 1,
        quorum: 1,
        ..CoordinatorConfig::default()
    };
    let coord = TcpCoordinator::bind("127.0.0.1:0", cfg).unwrap();
    let addr = coord.local_addr().unwrap();
    let client = std::thread::spawn(move || ahead_of_round_client(addr, worker));

    let history = coord.run(core, 1, seed, &mut scratch).unwrap();
    let finished = client.join().unwrap().unwrap();

    assert!(
        finished,
        "coordinator aborted instead of buffering the frame"
    );
    assert_eq!(history.churn.detached, 0, "the connection must survive");
    assert_eq!(history.churn.dropped_rounds, vec![0]);
}

/// A never-joined worker attaching mid-run: `JOIN_FRESH`, then the
/// coordinator's ring tail (the in-flight STEP carries the model
/// snapshot), then ordinary rounds. Fires `sent` once the handshake is on
/// the wire. Returns the number of steps served.
fn fresh_join_client(
    addr: SocketAddr,
    mut worker: HonestWorker,
    sent: mpsc::Sender<()>,
) -> io::Result<u32> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let id = worker.id();
    send_id_frame(&mut stream, KIND_JOIN_FRESH, id)?;
    let _ = sent.send(());
    let mut params = Vector::default();
    let mut out = WorkerOutput::default();
    let mut next_slot = 0u32;
    let mut served = 0u32;
    loop {
        let (kind, payload) = read_frame(&mut stream)?;
        match kind {
            KIND_STEP => {
                let (step, batch) = StepMessage::decode_into(&payload, &mut params)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
                if next_slot == 0 {
                    next_slot = step.max(1); // the replayed STEP anchors the cursor
                }
                if step == next_slot {
                    worker.compute_into(&params, batch as usize, &mut out);
                    send_grad(&mut stream, id, step, &out)?;
                    next_slot = step + 1;
                    served += 1;
                }
            }
            KIND_DONE => return Ok(served),
            KIND_ABORT => {
                return Err(io::Error::other("run aborted"));
            }
            _ => {}
        }
    }
}

/// Fresh mid-run join over real TCP: worker 0 runs from the start; the
/// run's observer blocks round 2 until worker 1 has written its
/// `JOIN_FRESH`, guaranteeing the attach happens mid-run rather than
/// racing the whole training loop.
#[test]
fn a_fresh_worker_joins_mid_run_over_tcp() {
    let exp = Experiment::theorem1(4, 0.1, None, 8, 5, 2).unwrap();
    let seed = 5;
    let mut scratch = RunScratch::new();
    let (tx_go, rx_go) = mpsc::channel::<()>();
    let (tx_sent, rx_sent) = mpsc::channel::<()>();
    let mut gate = Some((tx_go, rx_sent));
    let observer = FnObserver::new(move |m| {
        if m.step == 2 {
            if let Some((go, sent)) = gate.take() {
                let _ = go.send(());
                let _ = sent.recv(); // hold round 2 until JOIN_FRESH is on the wire
            }
        }
    });
    let (core, mut workers) = exp
        .build_trainer()
        .unwrap()
        .observer(Box::new(observer))
        .into_distributed_parts(seed, &mut scratch);
    let late = workers.pop().unwrap();
    let early = workers.pop().unwrap();

    let cfg = CoordinatorConfig {
        min_workers: 1,
        quorum: 1,
        join_timeout: Duration::from_millis(300),
        ..CoordinatorConfig::default()
    };
    let coord = TcpCoordinator::bind("127.0.0.1:0", cfg).unwrap();
    let addr = coord.local_addr().unwrap();

    let early_handle = std::thread::spawn(move || {
        dpbyz_net::run_worker(addr, early, dpbyz_net::WorkerConfig::default())
    });
    let late_handle = std::thread::spawn(move || {
        rx_go.recv().expect("observer signals the join point");
        fresh_join_client(addr, late, tx_sent)
    });

    let history = coord.run(core, 2, seed, &mut scratch).unwrap();
    let early_steps = early_handle.join().unwrap().unwrap();
    let late_steps = late_handle.join().unwrap().unwrap();
    assert_eq!(early_steps, 8);
    assert!(
        late_steps >= 1,
        "the fresh joiner must serve at least one round after attaching"
    );
    assert_eq!(history.churn.joined_fresh, 1);
    assert_eq!(history.churn.detached, 0);
}
