//! The reconnect-equivalence regression: a worker that crashes mid-run
//! and resumes through the `Rejoin` handshake must leave **exactly** the
//! history of a worker that merely straggled those rounds.
//!
//! Why this must hold: the coordinator zeroes a non-reporting worker's
//! round via the same fault-injection semantics either way, and the ring
//! replay feeds the rejoining worker the *identical broadcast bytes* it
//! missed — so its RNG, momentum, and parameter state catch up bit for
//! bit. Churn therefore maps onto the paper's `f` accounting (a crashed
//! worker is indistinguishable from an omitted one, round by round)
//! instead of inventing a new failure mode.

use dpbyz_core::pipeline::{Experiment, FigureConfig};
use dpbyz_core::ComponentSpec;
use dpbyz_net::{FaultPlan, SimBackend};
use dpbyz_server::RunScratch;

const STEPS: u32 = 8;
/// Past every (virtual) step deadline: a report held this long is
/// dropped from its round.
const PAST_DEADLINE_MS: u64 = 20_000;

fn experiment() -> Experiment {
    Experiment::paper_figure(FigureConfig {
        batch_size: 10,
        steps: STEPS,
        dataset_size: 300,
        ..FigureConfig::default()
    })
    .unwrap()
}

fn sim_backend(quorum: usize) -> SimBackend {
    SimBackend::from_spec(&ComponentSpec::new("sim").with("quorum", quorum as u64))
}

/// Silent crash (no TCP-reset analogue: the coordinator waits out each
/// deadline, exactly as it would for a straggler) after step 2, rejoin
/// when step 5 goes out. The worker misses rounds 3 and 4; a straggler
/// whose reports for steps 3 and 4 arrive past the deadline misses the
/// same rounds — the histories must be bit-identical.
#[test]
fn crash_and_rejoin_is_bit_identical_to_a_straggler() {
    let exp = experiment();
    let n = exp.config.n_workers;
    let w = (n - 1) as u32;
    let backend = sim_backend(n - 1);
    let seed = 11;
    let mut scratch = RunScratch::new();

    let straggler_plan = FaultPlan::clean(n).with_grad_delay(w, 3, 4, PAST_DEADLINE_MS);
    let straggler = backend
        .run_with_plan(&exp, seed, &straggler_plan, None, &mut scratch)
        .unwrap();

    let crash_plan = FaultPlan::clean(n).with_crash(w, 2, 5);
    let rejoined = backend
        .run_with_plan(&exp, seed, &crash_plan, None, &mut scratch)
        .unwrap();

    assert_eq!(
        straggler, rejoined,
        "crash-and-rejoin diverged from the straggler schedule"
    );
    assert_eq!(straggler.digest(), rejoined.digest());
}

/// Same schedule, but the coordinator *notices* the crash (the TCP-reset
/// analogue): it surfaces as `Detached`, rounds advance opportunistically
/// instead of burning the deadline, and the reset also costs the worker
/// its in-flight step-2 report. Content-wise that equals a straggler
/// whose reports for steps 2–4 all arrive late — histories carry no
/// timing, so the digests must still match.
#[test]
fn detected_crash_rejoin_matches_the_straggler_schedule_too() {
    let exp = experiment();
    let n = exp.config.n_workers;
    let w = (n - 1) as u32;
    let backend = sim_backend(n - 1);
    let seed = 29;
    let mut scratch = RunScratch::new();

    let straggler_plan = FaultPlan::clean(n).with_grad_delay(w, 2, 4, PAST_DEADLINE_MS);
    let straggler = backend
        .run_with_plan(&exp, seed, &straggler_plan, None, &mut scratch)
        .unwrap();

    let crash_plan = FaultPlan::clean(n).with_crash(w, 2, 5).with_detection(true);
    let rejoined = backend
        .run_with_plan(&exp, seed, &crash_plan, None, &mut scratch)
        .unwrap();

    assert_eq!(
        straggler, rejoined,
        "detected crash-and-rejoin diverged from the straggler schedule"
    );
}

/// The rejoin must actually matter: the same crash with a rejoin trigger
/// that never fires leaves the worker zeroed for the rest of the run,
/// which is a *different* history — proving the equivalence above is
/// exercised by a real resume, not by the worker being dead weight.
#[test]
fn a_rejoin_that_never_happens_changes_the_history() {
    let exp = experiment();
    let n = exp.config.n_workers;
    let w = (n - 1) as u32;
    let backend = sim_backend(n - 1);
    let seed = 11;
    let mut scratch = RunScratch::new();

    let rejoin_plan = FaultPlan::clean(n).with_crash(w, 2, 5);
    let rejoined = backend
        .run_with_plan(&exp, seed, &rejoin_plan, None, &mut scratch)
        .unwrap();

    // Trigger step STEPS + 1 is never broadcast: the worker stays down.
    let dead_plan = FaultPlan::clean(n).with_crash(w, 2, STEPS + 1);
    let dead = backend
        .run_with_plan(&exp, seed, &dead_plan, None, &mut scratch)
        .unwrap();

    assert_ne!(
        rejoined, dead,
        "a worker that never resumed produced the same history as one that did"
    );
}

/// Scratch-buffer reuse across sim runs is bit-invisible: the same plan
/// run twice through one scratch yields byte-identical histories.
#[test]
fn sim_runs_are_reproducible_through_a_shared_scratch() {
    let exp = experiment();
    let n = exp.config.n_workers;
    let backend = sim_backend(n - 1);
    let plan = FaultPlan::clean(n).with_crash((n - 1) as u32, 2, 5);
    let mut scratch = RunScratch::new();
    let a = backend
        .run_with_plan(&exp, 7, &plan, None, &mut scratch)
        .unwrap();
    let b = backend
        .run_with_plan(&exp, 7, &plan, None, &mut scratch)
        .unwrap();
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
}
