//! The real thing: coordinator and workers as separate OS processes.
//!
//! Spawns the `coordinator` binary with `--spawn --verify`, which forks
//! four `worker` processes, trains over localhost TCP, and compares the
//! resulting digest against an in-process sequential run of the same
//! experiment. This is the same invocation the CI `distributed-smoke`
//! step runs.

use std::process::Command;

#[test]
fn spawned_worker_processes_reproduce_the_in_process_digest() {
    let out = Command::new(env!("CARGO_BIN_EXE_coordinator"))
        .args([
            "--spawn",
            "--workers",
            "4",
            "--steps",
            "10",
            "--seed",
            "1",
            "--dataset-size",
            "300",
            "--verify",
        ])
        .output()
        .expect("coordinator binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "coordinator exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status.code()
    );
    assert!(stdout.contains("verify OK"), "stdout:\n{stdout}");
    assert!(stdout.contains("digest "), "stdout:\n{stdout}");
}

#[test]
fn worker_binary_rejects_a_byzantine_index() {
    // n = 11, f = 5 in this spec ⇒ honest slots 0..6; index 7 must be
    // refused before any socket traffic.
    let spec = r#"{"workload":{"PhishingLike":{"data_seed":1,"size":100}},"config":{"n_workers":11,"n_byzantine":5,"batch_size":10,"steps":2,"lr":{"Constant":2.0},"momentum":0.99,"momentum_mode":"Worker","clip":0.01,"eval_every":0,"attack_visibility":"Submitted","drop_rate":0.0,"gradient_ema":null,"batch_growth":null,"agg_threads":1,"staleness_window":0,"staleness_damping":0.5},"gar":{"id":"mda","params":{}},"attack":{"id":"alie","params":{}},"budget":null,"mechanism":{"id":"gaussian","params":{}},"dp_reference_g_max":null,"seed":1}"#;
    let out = Command::new(env!("CARGO_BIN_EXE_worker"))
        .args([
            "--connect",
            "127.0.0.1:9",
            "--index",
            "7",
            "--spec-json",
            spec,
        ])
        .output()
        .expect("worker binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("honest"), "stderr:\n{stderr}");
}
