//! Model-based property suite for the coordinator's round state machine.
//!
//! Each property drives [`RoundStateMachine`] with generated event
//! schedules (64 sampled cases per property) while an independent model
//! tracks what the protocol *specification* says — and asserts the
//! machine never strays:
//!
//! * a round **never** aggregates below `quorum`, deadline or not;
//! * a worker is **never** counted twice in one round;
//! * every accepted reporter **joined** first, and the accepted and
//!   dropped sets partition the joined set exactly;
//! * step broadcasts are strictly sequential, each step aggregates at
//!   most once, and `Finish` only follows the final step;
//! * runs short of `min_workers` abort at the join deadline.

use dpbyz_net::transport::current_step;
use dpbyz_net::{Action, Event, MachineConfig, Phase, RoundStateMachine};
use proptest::prelude::*;

fn cfg(n: usize, min: usize, quorum: usize, steps: u32) -> MachineConfig {
    MachineConfig {
        n_workers: n,
        min_workers: min,
        quorum,
        steps,
        join_deadline_ms: 100,
        warmup_deadline_ms: 100,
        step_deadline_ms: 100,
        staleness_window: 0,
    }
}

/// The specification's view of one run, rebuilt from the same events the
/// machine saw. Deliberately a separate implementation: sets instead of
/// counters, no opportunistic-advance logic.
struct Model {
    n: usize,
    joined: Vec<bool>,
    /// Reporters accepted for the in-flight round (set semantics: a
    /// duplicate report cannot grow it).
    accepted: Vec<bool>,
    last_broadcast: u32,
    aggregated: Vec<u32>,
    finished: bool,
}

impl Model {
    fn new(n: usize) -> Self {
        Model {
            n,
            joined: vec![false; n],
            accepted: vec![false; n],
            last_broadcast: 0,
            aggregated: Vec::new(),
            finished: false,
        }
    }

    fn n_joined(&self) -> usize {
        self.joined.iter().filter(|&&j| j).count()
    }

    fn n_accepted(&self) -> usize {
        self.accepted.iter().filter(|&&a| a).count()
    }

    /// What the spec says an event does, given the phase the machine was
    /// in when it arrived.
    fn observe(&mut self, phase: Phase, event: Event) {
        match (phase, event) {
            (Phase::WaitingForWorkers, Event::Joined(id)) => {
                if let Some(slot) = self.joined.get_mut(id as usize) {
                    *slot = true;
                }
            }
            (Phase::Train { step }, Event::Gradient { id, step: s }) => {
                let joined = self.joined.get(id as usize).copied().unwrap_or(false);
                if s == step && joined {
                    if let Some(slot) = self.accepted.get_mut(id as usize) {
                        *slot = true;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Feeds one event and processes the resulting actions, checking every
/// invariant the moment its action fires. Returns an error string on the
/// first violation (mapped to `prop_assert!` by the caller).
fn step_machine(
    machine: &mut RoundStateMachine,
    model: &mut Model,
    cfg: &MachineConfig,
    event: Option<Event>,
    now: u64,
    actions: &mut Vec<Action>,
) -> Result<(), String> {
    if let Some(event) = event {
        model.observe(machine.phase(), event);
        machine.on_event(event, now, actions);
    }
    machine.tick(now, actions);
    let mut i = 0;
    while let Some(&action) = actions.get(i) {
        match action {
            Action::StartWarmup => {
                if model.n_joined() < cfg.min_workers {
                    return Err(format!(
                        "warmup started with {} joined, min_workers {}",
                        model.n_joined(),
                        cfg.min_workers
                    ));
                }
            }
            Action::BroadcastStep(t) => {
                if t != model.last_broadcast + 1 {
                    return Err(format!(
                        "step {t} broadcast after step {}",
                        model.last_broadcast
                    ));
                }
                if t > cfg.steps {
                    return Err(format!("step {t} broadcast beyond steps {}", cfg.steps));
                }
                model.last_broadcast = t;
                model.accepted.iter_mut().for_each(|a| *a = false);
            }
            Action::Aggregate(t) => {
                if t != model.last_broadcast {
                    return Err(format!(
                        "aggregated step {t}, in-flight step {}",
                        model.last_broadcast
                    ));
                }
                if model.aggregated.contains(&t) {
                    return Err(format!("step {t} aggregated twice"));
                }
                let accepted = model.n_accepted();
                // THE invariant: advancement never below quorum.
                if accepted < cfg.quorum {
                    return Err(format!(
                        "step {t} aggregated with {accepted} reports, quorum {}",
                        cfg.quorum
                    ));
                }
                // No double counting: the machine's per-round counter
                // must equal the model's *set* cardinality.
                if machine.n_reported() != accepted {
                    return Err(format!(
                        "machine counted {} reporters, model set has {accepted}",
                        machine.n_reported()
                    ));
                }
                // accepted ⊆ joined, dropped ⊆ joined, disjoint, and
                // together they cover the joined set exactly.
                for id in 0..model.n as u32 {
                    let joined = model.joined[id as usize];
                    let accepted = model.accepted[id as usize];
                    let dropped = machine.dropped().contains(&id);
                    if accepted && !joined {
                        return Err(format!("worker {id} accepted without joining"));
                    }
                    if dropped && !joined {
                        return Err(format!("worker {id} dropped without joining"));
                    }
                    if accepted && dropped {
                        return Err(format!("worker {id} both accepted and dropped"));
                    }
                    if joined && !accepted && !dropped {
                        return Err(format!("joined worker {id} unaccounted at step {t}"));
                    }
                }
                model.aggregated.push(t);
                machine.on_aggregated(now, actions);
            }
            Action::Finish => {
                if model.last_broadcast != cfg.steps || model.aggregated.last() != Some(&cfg.steps)
                {
                    return Err(format!(
                        "finished after step {} of {}",
                        model.last_broadcast, cfg.steps
                    ));
                }
                model.finished = true;
            }
            Action::Abort => {
                if machine.abort_reason().is_none() {
                    return Err("aborted without a reason".into());
                }
            }
        }
        i += 1;
    }
    actions.clear();
    Ok(())
}

/// Runs the deadline clock forward until the machine settles in
/// `Done`/`Aborted`, with the invariant checks live at every tick.
fn flush(
    machine: &mut RoundStateMachine,
    model: &mut Model,
    cfg: &MachineConfig,
    mut now: u64,
    actions: &mut Vec<Action>,
) -> Result<(), String> {
    for _ in 0..1_000 {
        if matches!(machine.phase(), Phase::Done | Phase::Aborted) {
            return Ok(());
        }
        let Some(deadline) = machine.next_deadline_ms() else {
            return Ok(());
        };
        now = now.max(deadline).max(now + 1);
        step_machine(machine, model, cfg, None, now, actions)?;
    }
    Err("machine did not settle within 1000 deadline jumps".into())
}

proptest! {
    /// Chaotic event soup: joins, readies, current/stale/future
    /// gradients, detaches and reattaches in generated order — none of
    /// the round invariants may break, and the run must settle.
    #[test]
    fn chaotic_event_soup_never_violates_round_invariants(
        n in 2usize..6,
        min_raw in 0usize..6,
        quorum_raw in 0usize..6,
        raw_ops in proptest::collection::vec(0u64..u64::MAX, 40..160),
    ) {
        let min = 1 + min_raw % n;
        let quorum = 1 + quorum_raw % n;
        let c = cfg(n, min, quorum, 3);
        let mut machine = RoundStateMachine::new(c, 0);
        let mut model = Model::new(n);
        let mut actions = Vec::new();
        let mut now = 0u64;
        for raw in raw_ops {
            now += raw % 7;
            let id = ((raw >> 3) % n as u64) as u32;
            let current = current_step(machine.phase());
            let event = match (raw >> 6) % 8 {
                0 | 1 => Event::Joined(id),
                2 => Event::Ready(id),
                3 | 4 => Event::Gradient { id, step: current },
                5 => Event::Gradient { id, step: current.saturating_sub(1) },
                6 => Event::Detached(id),
                _ => Event::Reattached(id),
            };
            let r = step_machine(&mut machine, &mut model, &c, Some(event), now, &mut actions);
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
            if matches!(machine.phase(), Phase::Done | Phase::Aborted) {
                break;
            }
        }
        let r = flush(&mut machine, &mut model, &c, now, &mut actions);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        prop_assert!(
            matches!(machine.phase(), Phase::Done | Phase::Aborted),
            "run settled in {:?}", machine.phase()
        );
        if model.finished {
            prop_assert_eq!(model.aggregated.len(), 3, "every step aggregated exactly once");
        }
    }

    /// Fewer joins than `min_workers`: the machine must abort at the
    /// join deadline, never start warmup.
    #[test]
    fn runs_below_min_workers_abort_at_the_join_deadline(
        n in 2usize..6,
        min_raw in 0usize..6,
        join_raw in 0usize..6,
    ) {
        let min = 2 + min_raw % (n - 1); // min ≥ 2 so 0 joins can undershoot
        let joins = join_raw % min;      // strictly below the floor
        let c = cfg(n, min, min, 2);
        let mut machine = RoundStateMachine::new(c, 0);
        let mut model = Model::new(n);
        let mut actions = Vec::new();
        for id in 0..joins as u32 {
            let r = step_machine(
                &mut machine, &mut model, &c,
                Some(Event::Joined(id)), 1 + u64::from(id), &mut actions,
            );
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
        let r = flush(&mut machine, &mut model, &c, joins as u64 + 1, &mut actions);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        prop_assert_eq!(machine.phase(), Phase::Aborted);
        let reason = machine.abort_reason().unwrap_or_default().to_string();
        prop_assert!(reason.contains("min_workers"), "{}", reason);
    }

    /// Full, punctual participation: the run must complete with every
    /// worker counted in every round and nobody ever dropped.
    #[test]
    fn full_participation_always_completes(
        n in 1usize..6,
        steps in 1u32..5,
        jitter in proptest::collection::vec(0u64..3, 64),
    ) {
        let c = cfg(n, n, n, steps);
        let mut machine = RoundStateMachine::new(c, 0);
        let mut model = Model::new(n);
        let mut actions = Vec::new();
        let mut now = 0u64;
        let mut jit = jitter.into_iter().cycle();
        for id in 0..n as u32 {
            now += jit.next().unwrap_or(1);
            let r = step_machine(&mut machine, &mut model, &c, Some(Event::Joined(id)), now, &mut actions);
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
        // Respond to whatever phase the machine is in until it finishes:
        // READY during warmup, a fresh report from everyone during each
        // train round.
        for _ in 0..10 * (steps as usize + 2) {
            if matches!(machine.phase(), Phase::Done | Phase::Aborted) {
                break;
            }
            let responses: Vec<Event> = match machine.phase() {
                Phase::Warmup => (0..n as u32).map(Event::Ready).collect(),
                Phase::Train { step } => {
                    (0..n as u32).map(|id| Event::Gradient { id, step }).collect()
                }
                _ => Vec::new(),
            };
            for event in responses {
                now += jit.next().unwrap_or(1);
                let r = step_machine(&mut machine, &mut model, &c, Some(event), now, &mut actions);
                prop_assert!(r.is_ok(), "{}", r.unwrap_err());
            }
        }
        prop_assert_eq!(machine.phase(), Phase::Done, "reason: {:?}", machine.abort_reason());
        prop_assert!(model.finished);
        prop_assert_eq!(model.aggregated, (1..=steps).collect::<Vec<_>>());
        prop_assert!(machine.dropped().is_empty());
    }

    /// Workers detached mid-run never block advancement and are dropped
    /// (zeroed) in every subsequent round — while the attached majority
    /// keeps the run alive to completion.
    #[test]
    fn detached_workers_are_dropped_but_never_block(
        n in 2usize..6,
        steps in 1u32..4,
        detach_raw in 1usize..6,
    ) {
        let detached = 1 + detach_raw % n.saturating_sub(1).max(1); // 1..n
        let detached = detached.min(n - 1); // keep at least one attached
        let quorum = n - detached;
        let c = cfg(n, n, quorum, steps);
        let mut machine = RoundStateMachine::new(c, 0);
        let mut model = Model::new(n);
        let mut actions = Vec::new();
        let mut now = 0u64;
        for id in 0..n as u32 {
            now += 1;
            let r = step_machine(&mut machine, &mut model, &c, Some(Event::Joined(id)), now, &mut actions);
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
        prop_assert_eq!(machine.phase(), Phase::Warmup);
        for id in 0..n as u32 {
            now += 1;
            let r = step_machine(&mut machine, &mut model, &c, Some(Event::Ready(id)), now, &mut actions);
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
        // The last `detached` workers lose their sockets right after
        // step 1 goes out.
        for id in quorum..n {
            now += 1;
            let r = step_machine(&mut machine, &mut model, &c, Some(Event::Detached(id as u32)), now, &mut actions);
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
        for _ in 0..10 * (steps as usize + 2) {
            match machine.phase() {
                Phase::Done | Phase::Aborted => break,
                Phase::Train { step } => {
                    for id in 0..quorum as u32 {
                        now += 1;
                        let before = machine.phase();
                        let r = step_machine(
                            &mut machine, &mut model, &c,
                            Some(Event::Gradient { id, step }), now, &mut actions,
                        );
                        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
                        // The round must advance the moment the last
                        // attached worker reports — never waiting out
                        // the deadline on the detached ones.
                        if id as usize == quorum - 1 {
                            prop_assert!(
                                machine.phase() != before,
                                "round {step} failed to advance once all attached reported"
                            );
                        }
                    }
                }
                _ => { now += 1; }
            }
            let r = step_machine(&mut machine, &mut model, &c, None, now, &mut actions);
            prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        }
        prop_assert_eq!(machine.phase(), Phase::Done, "reason: {:?}", machine.abort_reason());
        let expected: Vec<u32> = (quorum as u32..n as u32).collect();
        prop_assert_eq!(machine.dropped(), &expected[..], "every detached worker zeroed");
    }

    /// Bounded-staleness admission: whatever aged soup arrives, every
    /// frame the machine accepts for a round is at most
    /// `staleness_window` rounds old (its recorded age proves it), and
    /// frames older than the window only ever grow the stale counter.
    #[test]
    fn admitted_frames_never_exceed_the_staleness_window(
        n in 2usize..6,
        k in 0u32..4,
        raw_ops in proptest::collection::vec(0u64..u64::MAX, 40..160),
    ) {
        let mut c = cfg(n, 1, 1, 4);
        c.staleness_window = k;
        let mut machine = RoundStateMachine::new(c, 0);
        let mut actions = Vec::new();
        let mut now = 1u64;
        for id in 0..n as u32 {
            machine.on_event(Event::Joined(id), now, &mut actions);
        }
        actions.clear();
        for raw in raw_ops {
            now += raw % 7;
            let id = ((raw >> 3) % n as u64) as u32;
            let current = current_step(machine.phase());
            let age = ((raw >> 6) % 5) as u32;
            let event = match (raw >> 9) % 4 {
                0 => Event::Ready(id),
                _ => Event::Gradient { id, step: current.saturating_sub(age) },
            };
            machine.on_event(event, now, &mut actions);
            machine.tick(now, &mut actions);
            // Ages are live until the round aggregates: check before
            // processing the actions that would reset them.
            for &a in machine.ages() {
                prop_assert!(a <= k, "admitted a frame {a} rounds old, window {k}");
            }
            let mut i = 0;
            while let Some(&action) = actions.get(i) {
                if matches!(action, Action::Aggregate(_)) {
                    machine.on_aggregated(now, &mut actions);
                }
                i += 1;
            }
            actions.clear();
            if matches!(machine.phase(), Phase::Done | Phase::Aborted) {
                break;
            }
        }
        for (w, &late) in machine.late_admits().iter().enumerate() {
            if k == 0 {
                prop_assert_eq!(late, 0, "worker {} admitted late with window 0", w);
            }
        }
    }

    /// `staleness_window = 0` keeps today's strict semantics exactly:
    /// a machine receiving an aged soup and a twin receiving the same
    /// soup with every non-current gradient removed march through
    /// identical phases and emit identical action streams.
    #[test]
    fn zero_window_is_bit_identical_to_the_strict_machine(
        n in 2usize..6,
        raw_ops in proptest::collection::vec(0u64..u64::MAX, 40..160),
    ) {
        let c = cfg(n, 1, 1, 3);
        let mut aged = RoundStateMachine::new(c, 0);
        let mut strict = RoundStateMachine::new(c, 0);
        let mut actions_a = Vec::new();
        let mut actions_s = Vec::new();
        let mut now = 1u64;
        for id in 0..n as u32 {
            aged.on_event(Event::Joined(id), now, &mut actions_a);
            strict.on_event(Event::Joined(id), now, &mut actions_s);
        }
        prop_assert_eq!(&actions_a, &actions_s);
        actions_a.clear();
        actions_s.clear();
        for raw in raw_ops {
            now += raw % 7;
            let id = ((raw >> 3) % n as u64) as u32;
            let current = current_step(aged.phase());
            let age = ((raw >> 6) % 4) as u32;
            let event = match (raw >> 9) % 4 {
                0 => Event::Ready(id),
                _ => Event::Gradient { id, step: current.saturating_sub(age) },
            };
            aged.on_event(event, now, &mut actions_a);
            // The strict twin only ever sees punctual traffic.
            let punctual = !matches!(event, Event::Gradient { step: s, .. } if s != current);
            if punctual {
                strict.on_event(event, now, &mut actions_s);
            }
            aged.tick(now, &mut actions_a);
            strict.tick(now, &mut actions_s);
            prop_assert_eq!(&actions_a, &actions_s, "action streams diverged");
            prop_assert_eq!(aged.phase(), strict.phase(), "phases diverged");
            let mut i = 0;
            while let Some(&action) = actions_a.get(i) {
                if matches!(action, Action::Aggregate(_)) {
                    aged.on_aggregated(now, &mut actions_a);
                    strict.on_aggregated(now, &mut actions_s);
                }
                i += 1;
            }
            prop_assert_eq!(&actions_a, &actions_s);
            actions_a.clear();
            actions_s.clear();
            if matches!(aged.phase(), Phase::Done | Phase::Aborted) {
                break;
            }
        }
    }
}
