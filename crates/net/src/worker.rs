//! The worker process's event loop: connect, join, warm up, then compute
//! one gradient per `STEP` broadcast until `DONE`.
//!
//! The loop is deliberately dumb — all scheduling intelligence lives in
//! the coordinator's state machine. A worker connects (with retry, since
//! worker processes may launch before the coordinator's listener), sends
//! `JOIN`, answers `WARMUP` with `READY`, and then for every `STEP` frame
//! decodes the broadcast parameters, runs
//! [`HonestWorker::compute_into`], and replies with a `GRAD` frame. The
//! worker's RNG stream, clip, and momentum come from
//! [`Trainer::into_worker`](dpbyz_server::Trainer::into_worker), so its
//! submissions are bit-identical to its in-process twin's.
//!
//! A lost socket is survivable: when [`WorkerConfig::session_token`] is
//! set, the worker holds on to its model state, reconnects, and sends
//! `REJOIN` naming the first step it has not computed. The coordinator
//! replays every missed broadcast from its resume ring, so the worker
//! computes the missed steps in order — the same parameter bytes, the
//! same RNG draws — and its state catches up exactly as if it had merely
//! straggled. Replayed or duplicated broadcasts are handled by slot
//! arithmetic: stale steps retransmit the cached report (the coordinator
//! dedups), future steps are a protocol violation.
//!
//! All buffers (parameter vector, output slot, frame scratch, the cached
//! report) are recycled across rounds *and* across reconnects: a
//! steady-state round allocates nothing.

use crate::protocol::{
    begin_frame, end_frame, read_exact_frame, write_all_frame, KIND_ABORT, KIND_DONE, KIND_GRAD,
    KIND_JOIN, KIND_JOIN_FRESH, KIND_READY, KIND_REJOIN, KIND_STEP, KIND_WARMUP, MAX_FRAME_LEN,
};
use bytes::{BufMut, BytesMut};
use dpbyz_server::message::{read_array, GradientMessage, MessageError, StepMessage};
use dpbyz_server::{HonestWorker, WorkerOutput};
use dpbyz_tensor::{Prng, Vector};
use std::fmt;
use std::io;
use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Why a worker's session ended unsuccessfully.
#[derive(Debug)]
pub enum WorkerError {
    /// Socket-level failure (connect, read, write).
    Io(io::Error),
    /// A received frame failed to decode or verify.
    Message(MessageError),
    /// The coordinator broadcast `ABORT` (reason attached).
    Aborted(String),
    /// The coordinator violated the protocol (message explains).
    Protocol(String),
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Io(e) => write!(f, "transport: {e}"),
            WorkerError::Message(e) => write!(f, "frame: {e}"),
            WorkerError::Aborted(reason) => write!(f, "coordinator aborted: {reason}"),
            WorkerError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<io::Error> for WorkerError {
    fn from(e: io::Error) -> Self {
        WorkerError::Io(e)
    }
}

impl From<MessageError> for WorkerError {
    fn from(e: MessageError) -> Self {
        WorkerError::Message(e)
    }
}

/// Worker-side knobs. Defaults suit both in-process deployment threads
/// and localhost child processes.
#[derive(Debug, Clone, Copy)]
pub struct WorkerConfig {
    /// Keep retrying the initial connect for this long (the coordinator
    /// may not be listening yet when a process fleet launches).
    pub connect_timeout: Duration,
    /// Per-frame receive timeout. An orphaned worker (coordinator died
    /// without `ABORT`) exits with an error instead of lingering forever.
    pub read_timeout: Duration,
    /// The `REJOIN` credential, equal to
    /// [`session_token`](crate::protocol::session_token)`(seed, id)`.
    /// `None` (the default) disables reconnection: a lost socket is a
    /// fatal [`WorkerError::Io`], the pre-churn behaviour.
    pub session_token: Option<u64>,
    /// Socket losses survived before giving up. Irrelevant while
    /// `session_token` is `None`.
    pub max_rejoins: u32,
    /// Attach mid-run as a never-joined worker: the first frame sent is
    /// `JOIN_FRESH` instead of `JOIN`, and the coordinator replies with
    /// its resume-ring tail (the current model snapshot) so the worker
    /// starts computing at the in-flight step. Requires a run configured
    /// with `staleness_window` churn tolerance, or a join phase that is
    /// still open.
    pub fresh_join: bool,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(60),
            session_token: None,
            max_rejoins: 0,
            fresh_join: false,
        }
    }
}

/// The state that outlives a socket: frame scratch, the decoded
/// parameter vector, the output slot, and the session's slot cursor
/// (`0` = warmup not yet answered, `t ≥ 1` = first uncomputed step).
struct Session {
    send: BytesMut,
    sub_frame: BytesMut,
    pre_frame: BytesMut,
    /// The full wire frame of the newest report — retransmitted after a
    /// reconnect (its first send may have died with the old socket) and
    /// on duplicated broadcasts; the coordinator's guard dedups.
    grad_cache: BytesMut,
    recv: Vec<u8>,
    params: Vector,
    out: WorkerOutput,
    next_slot: u32,
    steps_served: u32,
}

/// Runs one worker session to completion, reconnecting through
/// [`KIND_REJOIN`] after socket loss when the config allows it. Returns
/// `Ok(steps_computed)` on a clean `DONE`.
///
/// # Errors
///
/// See [`WorkerError`].
pub fn run_worker(
    addr: SocketAddr,
    mut worker: HonestWorker,
    cfg: WorkerConfig,
) -> Result<u32, WorkerError> {
    let id = worker.id();
    let mut session = Session {
        send: BytesMut::with_capacity(4096),
        sub_frame: BytesMut::with_capacity(4096),
        pre_frame: BytesMut::with_capacity(4096),
        grad_cache: BytesMut::with_capacity(4096),
        recv: Vec::new(),
        params: Vector::default(),
        out: WorkerOutput::default(),
        next_slot: 0,
        steps_served: 0,
    };
    let mut rejoins_left = cfg.max_rejoins;
    let mut fresh = true;
    loop {
        match serve(addr, id, &mut worker, &cfg, &mut session, fresh) {
            Ok(steps) => return Ok(steps),
            Err(WorkerError::Io(_)) if cfg.session_token.is_some() && rejoins_left > 0 => {
                // The socket died but the model state is intact: resume.
                rejoins_left -= 1;
                fresh = false;
            }
            Err(e) => return Err(e),
        }
    }
}

fn serve(
    addr: SocketAddr,
    id: u32,
    worker: &mut HonestWorker,
    cfg: &WorkerConfig,
    st: &mut Session,
    fresh: bool,
) -> Result<u32, WorkerError> {
    // Retry jitter must be deterministic per worker: seed from the
    // session credential (or the id when reconnection is disabled).
    let retry_seed = cfg.session_token.unwrap_or(0) ^ (u64::from(id) << 32) ^ u64::from(id);
    let mut stream = connect_with_retry(addr, cfg.connect_timeout, retry_seed)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;

    if fresh {
        let kind = if cfg.fresh_join {
            KIND_JOIN_FRESH
        } else {
            KIND_JOIN
        };
        begin_frame(&mut st.send, kind);
        st.send.put_u32_le(id);
        end_frame(&mut st.send);
        write_all_frame(&mut stream, &st.send)?;
    } else {
        begin_frame(&mut st.send, KIND_REJOIN);
        st.send.put_u32_le(id);
        st.send.put_u64_le(cfg.session_token.unwrap_or_default());
        st.send.put_u32_le(st.next_slot);
        end_frame(&mut st.send);
        write_all_frame(&mut stream, &st.send)?;
        // The newest report may have died unread with the old socket.
        if !st.grad_cache.is_empty() {
            write_all_frame(&mut stream, &st.grad_cache)?;
        }
    }

    loop {
        let (kind, len) = read_header(&mut stream, &mut st.recv)?;
        read_exact_frame(&mut stream, &mut st.recv, len)?;
        match kind {
            KIND_WARMUP => {
                if st.next_slot == 0 {
                    st.next_slot = 1;
                }
                // A replayed WARMUP re-READYs; the machine dedups.
                begin_frame(&mut st.send, KIND_READY);
                st.send.put_u32_le(id);
                end_frame(&mut st.send);
                write_all_frame(&mut stream, &st.send)?;
            }
            KIND_STEP => {
                let (step, batch_size) = StepMessage::decode_into(&st.recv, &mut st.params)?;
                if cfg.fresh_join && st.next_slot == 0 {
                    // A fresh mid-run join skips warmup: the first
                    // replayed STEP carries the current model snapshot
                    // and anchors the slot cursor. Ordinary workers keep
                    // the strict STEP-before-WARMUP protocol error.
                    st.next_slot = step.max(1);
                }
                if step < st.next_slot {
                    // Already computed: a duplicated or replayed
                    // broadcast. Retransmit the report it asks for when
                    // we still hold it; otherwise it is settled history.
                    if step.saturating_add(1) == st.next_slot && !st.grad_cache.is_empty() {
                        write_all_frame(&mut stream, &st.grad_cache)?;
                    }
                } else if step == st.next_slot && step >= 1 {
                    worker.compute_into(&st.params, batch_size as usize, &mut st.out);
                    st.next_slot = step + 1;
                    st.steps_served += 1;

                    GradientMessage::encode_frame(id, step, &st.out.submitted, &mut st.sub_frame);
                    GradientMessage::encode_frame(id, step, &st.out.pre_noise, &mut st.pre_frame);
                    begin_frame(&mut st.grad_cache, KIND_GRAD);
                    st.grad_cache.put_f64_le(st.out.batch_loss);
                    st.grad_cache.put_u32_le(st.sub_frame.len() as u32);
                    st.grad_cache.put_slice(&st.sub_frame);
                    st.grad_cache.put_slice(&st.pre_frame);
                    end_frame(&mut st.grad_cache);
                    write_all_frame(&mut stream, &st.grad_cache)?;
                } else {
                    // A gap (or a STEP before WARMUP): TCP ordering and
                    // the rejoin replay both forbid this from an honest
                    // coordinator.
                    return Err(WorkerError::Protocol(format!(
                        "step {step} broadcast while {} was the next expected slot",
                        st.next_slot
                    )));
                }
            }
            KIND_DONE => return Ok(st.steps_served),
            KIND_ABORT => {
                return Err(WorkerError::Aborted(
                    String::from_utf8_lossy(&st.recv).into_owned(),
                ))
            }
            other => {
                return Err(WorkerError::Protocol(format!(
                    "unexpected frame kind {other} from coordinator"
                )))
            }
        }
    }
}

/// Reads and validates one frame header, returning `(kind, payload_len)`.
/// Generic over [`Read`] so hostile-header handling is testable without a
/// socket; every byte of the peer-supplied header is bounds-checked.
fn read_header(stream: &mut impl Read, scratch: &mut Vec<u8>) -> Result<(u8, usize), WorkerError> {
    read_exact_frame(stream, scratch, 5)?;
    let len = u32::from_le_bytes(read_array(scratch, 0)?) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(WorkerError::Protocol(format!(
            "implausible frame length {len} from coordinator"
        )));
    }
    let kind = *scratch.get(4).ok_or(MessageError::ShortRead {
        needed: 5,
        got: scratch.len(),
    })?;
    Ok((kind, len - 1))
}

/// Connects with capped exponential backoff: 10 ms doubling to a 500 ms
/// cap, each wait jittered to 50–100 % of its nominal value by a
/// [`Prng`] seeded from the session credential — a relaunched fleet
/// neither hammers the listener in lockstep nor draws from ambient
/// randomness (the determinism lint forbids the latter in this crate).
fn connect_with_retry(addr: SocketAddr, timeout: Duration, seed: u64) -> io::Result<TcpStream> {
    const BASE_MS: u64 = 10;
    const CAP_MS: u64 = 500;
    let deadline = Instant::now() + timeout;
    let mut rng = Prng::seed_from_u64(seed);
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => {
                let nominal = BASE_MS.saturating_mul(1 << attempt.min(16)).min(CAP_MS);
                let jittered = rng.uniform_range(0.5 * nominal as f64, nominal as f64);
                std::thread::sleep(Duration::from_millis(jittered.max(1.0) as u64));
                attempt = attempt.saturating_add(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn header(len: u32, kind: u8) -> Vec<u8> {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.push(kind);
        bytes
    }

    #[test]
    fn valid_header_decodes() {
        let mut scratch = Vec::new();
        let got = read_header(&mut Cursor::new(header(10, KIND_STEP)), &mut scratch);
        assert!(matches!(got, Ok((KIND_STEP, 9))));
    }

    #[test]
    fn truncated_header_is_an_io_error_not_a_panic() {
        // The coordinator dies mid-header: every prefix length must
        // surface a typed error.
        let full = header(10, KIND_STEP);
        for cut in 0..full.len() {
            let mut scratch = Vec::new();
            let got = read_header(&mut Cursor::new(&full[..cut]), &mut scratch);
            assert!(matches!(got, Err(WorkerError::Io(_))), "cut at {cut}");
        }
    }

    #[test]
    fn zero_length_header_is_a_protocol_error() {
        let mut scratch = Vec::new();
        let got = read_header(&mut Cursor::new(header(0, KIND_STEP)), &mut scratch);
        assert!(matches!(got, Err(WorkerError::Protocol(_))));
    }

    #[test]
    fn hostile_length_header_is_a_protocol_error() {
        // A corrupted or hostile length word must be rejected before any
        // buffering happens, with the declared length in the message.
        let mut scratch = Vec::new();
        let got = read_header(&mut Cursor::new(header(u32::MAX, KIND_STEP)), &mut scratch);
        match got {
            Err(WorkerError::Protocol(msg)) => {
                assert!(msg.contains(&u32::MAX.to_string()), "{msg}")
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }
}
