//! The worker process's event loop: connect, join, warm up, then compute
//! one gradient per `STEP` broadcast until `DONE`.
//!
//! The loop is deliberately dumb — all scheduling intelligence lives in
//! the coordinator's state machine. A worker connects (with retry, since
//! worker processes may launch before the coordinator's listener), sends
//! `JOIN`, answers `WARMUP` with `READY`, and then for every `STEP` frame
//! decodes the broadcast parameters, runs
//! [`HonestWorker::compute_into`], and replies with a `GRAD` frame. The
//! worker's RNG stream, clip, and momentum come from
//! [`Trainer::into_worker`](dpbyz_server::Trainer::into_worker), so its
//! submissions are bit-identical to its in-process twin's.
//!
//! All buffers (parameter vector, output slot, frame scratch) are
//! recycled across rounds: a steady-state round allocates nothing.

use crate::protocol::{
    begin_frame, end_frame, read_exact_frame, write_all_frame, KIND_ABORT, KIND_DONE, KIND_GRAD,
    KIND_JOIN, KIND_READY, KIND_STEP, KIND_WARMUP, MAX_FRAME_LEN,
};
use bytes::{BufMut, BytesMut};
use dpbyz_server::message::{read_array, GradientMessage, MessageError, StepMessage};
use dpbyz_server::{HonestWorker, WorkerOutput};
use dpbyz_tensor::Vector;
use std::fmt;
use std::io;
use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Why a worker's session ended unsuccessfully.
#[derive(Debug)]
pub enum WorkerError {
    /// Socket-level failure (connect, read, write).
    Io(io::Error),
    /// A received frame failed to decode or verify.
    Message(MessageError),
    /// The coordinator broadcast `ABORT` (reason attached).
    Aborted(String),
    /// The coordinator violated the protocol (message explains).
    Protocol(String),
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Io(e) => write!(f, "transport: {e}"),
            WorkerError::Message(e) => write!(f, "frame: {e}"),
            WorkerError::Aborted(reason) => write!(f, "coordinator aborted: {reason}"),
            WorkerError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<io::Error> for WorkerError {
    fn from(e: io::Error) -> Self {
        WorkerError::Io(e)
    }
}

impl From<MessageError> for WorkerError {
    fn from(e: MessageError) -> Self {
        WorkerError::Message(e)
    }
}

/// Worker-side knobs. Defaults suit both in-process deployment threads
/// and localhost child processes.
#[derive(Debug, Clone, Copy)]
pub struct WorkerConfig {
    /// Keep retrying the initial connect for this long (the coordinator
    /// may not be listening yet when a process fleet launches).
    pub connect_timeout: Duration,
    /// Per-frame receive timeout. An orphaned worker (coordinator died
    /// without `ABORT`) exits with an error instead of lingering forever.
    pub read_timeout: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(60),
        }
    }
}

/// Runs one worker session to completion. Returns `Ok(steps_served)` on a
/// clean `DONE`.
///
/// # Errors
///
/// See [`WorkerError`].
pub fn run_worker(
    addr: SocketAddr,
    mut worker: HonestWorker,
    cfg: WorkerConfig,
) -> Result<u32, WorkerError> {
    let mut stream = connect_with_retry(addr, cfg.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    let id = worker.id();

    // Recycled session buffers.
    let mut send = BytesMut::with_capacity(4096);
    let mut sub_frame = BytesMut::with_capacity(4096);
    let mut pre_frame = BytesMut::with_capacity(4096);
    let mut recv = Vec::new();
    let mut params = Vector::default();
    let mut out = WorkerOutput::default();
    let mut steps_served = 0u32;

    begin_frame(&mut send, KIND_JOIN);
    send.put_u32_le(id);
    end_frame(&mut send);
    write_all_frame(&mut stream, &send)?;

    loop {
        let (kind, len) = read_header(&mut stream, &mut recv)?;
        read_exact_frame(&mut stream, &mut recv, len)?;
        match kind {
            KIND_WARMUP => {
                begin_frame(&mut send, KIND_READY);
                send.put_u32_le(id);
                end_frame(&mut send);
                write_all_frame(&mut stream, &send)?;
            }
            KIND_STEP => {
                let (step, batch_size) = StepMessage::decode_into(&recv, &mut params)?;
                worker.compute_into(&params, batch_size as usize, &mut out);
                steps_served += 1;

                GradientMessage::encode_frame(id, step, &out.submitted, &mut sub_frame);
                GradientMessage::encode_frame(id, step, &out.pre_noise, &mut pre_frame);
                begin_frame(&mut send, KIND_GRAD);
                send.put_f64_le(out.batch_loss);
                send.put_u32_le(sub_frame.len() as u32);
                send.put_slice(&sub_frame);
                send.put_slice(&pre_frame);
                end_frame(&mut send);
                write_all_frame(&mut stream, &send)?;
            }
            KIND_DONE => return Ok(steps_served),
            KIND_ABORT => {
                return Err(WorkerError::Aborted(
                    String::from_utf8_lossy(&recv).into_owned(),
                ))
            }
            other => {
                return Err(WorkerError::Protocol(format!(
                    "unexpected frame kind {other} from coordinator"
                )))
            }
        }
    }
}

/// Reads and validates one frame header, returning `(kind, payload_len)`.
/// Generic over [`Read`] so hostile-header handling is testable without a
/// socket; every byte of the peer-supplied header is bounds-checked.
fn read_header(stream: &mut impl Read, scratch: &mut Vec<u8>) -> Result<(u8, usize), WorkerError> {
    read_exact_frame(stream, scratch, 5)?;
    let len = u32::from_le_bytes(read_array(scratch, 0)?) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(WorkerError::Protocol(format!(
            "implausible frame length {len} from coordinator"
        )));
    }
    let kind = *scratch.get(4).ok_or(MessageError::ShortRead {
        needed: 5,
        got: scratch.len(),
    })?;
    Ok((kind, len - 1))
}

fn connect_with_retry(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn header(len: u32, kind: u8) -> Vec<u8> {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.push(kind);
        bytes
    }

    #[test]
    fn valid_header_decodes() {
        let mut scratch = Vec::new();
        let got = read_header(&mut Cursor::new(header(10, KIND_STEP)), &mut scratch);
        assert!(matches!(got, Ok((KIND_STEP, 9))));
    }

    #[test]
    fn truncated_header_is_an_io_error_not_a_panic() {
        // The coordinator dies mid-header: every prefix length must
        // surface a typed error.
        let full = header(10, KIND_STEP);
        for cut in 0..full.len() {
            let mut scratch = Vec::new();
            let got = read_header(&mut Cursor::new(&full[..cut]), &mut scratch);
            assert!(matches!(got, Err(WorkerError::Io(_))), "cut at {cut}");
        }
    }

    #[test]
    fn zero_length_header_is_a_protocol_error() {
        let mut scratch = Vec::new();
        let got = read_header(&mut Cursor::new(header(0, KIND_STEP)), &mut scratch);
        assert!(matches!(got, Err(WorkerError::Protocol(_))));
    }

    #[test]
    fn hostile_length_header_is_a_protocol_error() {
        // A corrupted or hostile length word must be rejected before any
        // buffering happens, with the declared length in the message.
        let mut scratch = Vec::new();
        let got = read_header(&mut Cursor::new(header(u32::MAX, KIND_STEP)), &mut scratch);
        match got {
            Err(WorkerError::Protocol(msg)) => {
                assert!(msg.contains(&u32::MAX.to_string()), "{msg}")
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }
}
