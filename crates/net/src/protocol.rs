//! The TCP session layer: length-prefixed frames over `std::net`.
//!
//! Every message between coordinator and worker is one frame:
//!
//! ```text
//! [len: u32 LE][kind: u8][payload: len − 1 bytes]
//! ```
//!
//! where `len` counts everything after the length word (so a payload-free
//! frame has `len = 1`). Payloads reuse the integrity-tagged vector
//! layouts of [`dpbyz_server::message::GradientMessage`] /
//! [`dpbyz_server::message::StepMessage`] wherever a vector travels, so transport
//! corruption is caught by the same typed
//! [`MessageError`](dpbyz_server::message::MessageError)s the in-process engines
//! test against.
//!
//! Reading is built for the coordinator's nonblocking single-threaded
//! loop: [`FrameReader`] owns one recycled `Vec<u8>`, fills it from the
//! socket without blocking, and pops complete frames as index ranges into
//! that buffer — steady-state reception allocates nothing once the buffer
//! has grown to the session's frame size.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Worker → coordinator: "worker `id` is connected". Payload: `[id: u32 LE]`.
pub const KIND_JOIN: u8 = 1;
/// Coordinator → workers: "all (or enough) workers joined; warm up".
/// Payload: empty.
pub const KIND_WARMUP: u8 = 2;
/// Worker → coordinator: "warmed up". Payload: `[id: u32 LE]`.
pub const KIND_READY: u8 = 3;
/// Coordinator → workers: the round broadcast. Payload: one
/// [`StepMessage`](dpbyz_server::message::StepMessage) frame carrying
/// `(step, batch_size, params)`.
pub const KIND_STEP: u8 = 4;
/// Worker → coordinator: the round report. Payload:
/// `[batch_loss: f64 LE][sub_len: u32 LE]` followed by the *submitted*
/// [`GradientMessage`](dpbyz_server::message::GradientMessage) frame (`sub_len`
/// bytes, carrying `(worker_id, step)`) and the *pre-noise* gradient
/// frame (the remainder — the simulator-only VN diagnostic channel; a
/// real deployment would omit it, see `docs/DEPLOYMENT.md`).
pub const KIND_GRAD: u8 = 5;
/// Coordinator → workers: "all steps aggregated; exit cleanly".
/// Payload: empty.
pub const KIND_DONE: u8 = 6;
/// Coordinator → workers: "the run died". Payload: UTF-8 reason.
pub const KIND_ABORT: u8 = 7;

/// Largest acceptable frame `len`: the `GRAD` layout at
/// [`MAX_WIRE_DIM`](dpbyz_server::message::MAX_WIRE_DIM) coordinates — two vector
/// frames plus the loss/length prelude. A corrupted or hostile length
/// prefix above this is rejected before any buffering happens.
pub const MAX_FRAME_LEN: usize = 2 * (12 + dpbyz_server::message::MAX_WIRE_DIM * 8 + 8) + 13;

/// A frame whose length word is implausible — the session-layer analogue
/// of [`MessageError::LengthOverflow`](dpbyz_server::message::MessageError).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The declared frame length exceeds [`MAX_FRAME_LEN`].
    TooLong {
        /// Length the frame declared.
        declared: usize,
        /// The reader's cap.
        limit: usize,
    },
    /// The declared length is zero — every frame carries at least a kind
    /// byte.
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLong { declared, limit } => {
                write!(f, "frame declares {declared} bytes, above the {limit} cap")
            }
            FrameError::Empty => write!(f, "zero-length frame (missing kind byte)"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame reassembly over one recycled buffer.
///
/// The coordinator keeps one `FrameReader` per connection for the life of
/// the run: [`FrameReader::fill`] appends whatever the (nonblocking)
/// socket has, [`FrameReader::next_frame`] pops complete frames in
/// arrival order. Consumed bytes are reclaimed by index bookkeeping plus
/// an occasional `copy_within` compaction — no per-frame allocation.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// First unconsumed byte.
    start: usize,
    /// One past the last received byte.
    filled: usize,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReader {
    /// A reader with a small initial buffer (grows to the session's frame
    /// size and then stays put).
    pub fn new() -> Self {
        FrameReader {
            buf: vec![0; 4096],
            start: 0,
            filled: 0,
        }
    }

    /// Pulls available bytes from `stream` into the buffer.
    ///
    /// Returns the number of bytes read; `Ok(0)` means the read would
    /// block (try again next loop iteration).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] when the peer closed the
    /// connection; any other socket error as-is.
    pub fn fill(&mut self, stream: &mut impl Read) -> io::Result<usize> {
        if self.filled == self.buf.len() {
            if self.start > 0 {
                // Reclaim consumed space before growing.
                self.buf.copy_within(self.start..self.filled, 0);
                self.filled -= self.start;
                self.start = 0;
            } else {
                self.buf.resize(self.buf.len() * 2, 0);
            }
        }
        let Some(dst) = self.buf.get_mut(self.filled..) else {
            return Ok(0);
        };
        match stream.read(dst) {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed the connection",
            )),
            Ok(n) => {
                self.filled += n;
                Ok(n)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(0)
            }
            Err(e) => Err(e),
        }
    }

    /// Pops the next complete frame, if one has fully arrived, as
    /// `(kind, payload)`. The payload borrows the reader's buffer — copy
    /// or decode it before the next `fill`/`next_frame` call.
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the length word is implausible; the connection
    /// should be dropped (resynchronization is impossible).
    pub fn next_frame(&mut self) -> Result<Option<(u8, &[u8])>, FrameError> {
        let avail = self.filled.saturating_sub(self.start);
        if avail < 4 {
            return Ok(None);
        }
        let Some(header) = self
            .buf
            .get(self.start..self.start + 4)
            .and_then(|bytes| <[u8; 4]>::try_from(bytes).ok())
        else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(header) as usize;
        if len == 0 {
            return Err(FrameError::Empty);
        }
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLong {
                declared: len,
                limit: MAX_FRAME_LEN,
            });
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let payload_start = self.start + 5;
        let payload_end = self.start + 4 + len;
        let (Some(&kind), Some(payload)) = (
            self.buf.get(self.start + 4),
            self.buf.get(payload_start..payload_end),
        ) else {
            // Unreachable while `filled <= buf.len()` holds, but a
            // hostile-input path never indexes on faith.
            return Ok(None);
        };
        self.start = payload_end;
        if self.start == self.filled {
            self.start = 0;
            self.filled = 0;
        }
        Ok(Some((kind, payload)))
    }
}

/// Opens a frame in a recycled buffer: clears it, reserves the length
/// word, writes the kind byte. Append the payload, then seal with
/// [`end_frame`].
pub fn begin_frame(buf: &mut bytes::BytesMut, kind: u8) {
    use bytes::BufMut;
    buf.clear();
    buf.put_u32_le(0); // patched by end_frame
    buf.put_slice(&[kind]);
}

/// Seals a frame begun with [`begin_frame`]: patches the length word to
/// cover everything after it.
///
/// # Panics
///
/// Panics if the frame (kind + payload) exceeds `u32::MAX` bytes.
pub fn end_frame(buf: &mut bytes::BytesMut) {
    // lint:allow(panic-unwrap, reason = "documented panic: locally built frames are capped by MAX_FRAME_LEN, far below u32::MAX")
    let len = u32::try_from(buf.len() - 4).expect("frame fits u32");
    if let Some(slot) = buf.get_mut(0..4) {
        slot.copy_from_slice(&len.to_le_bytes());
    }
}

/// Writes `data` fully to a possibly-nonblocking stream, napping through
/// `WouldBlock` (the OS socket buffer is momentarily full — localhost
/// broadcasts of this repo's frame sizes essentially never hit this).
///
/// # Errors
///
/// [`io::ErrorKind::WriteZero`] if the peer stopped accepting bytes; any
/// other socket error as-is.
pub fn write_all_frame(stream: &mut impl Write, data: &[u8]) -> io::Result<()> {
    let mut rest = data;
    while !rest.is_empty() {
        match stream.write(rest) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ))
            }
            Ok(n) => rest = rest.get(n..).unwrap_or_default(),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Blocking `read_exact` with the caller's deadline semantics delegated
/// to the socket's read timeout — the worker-side receive path.
///
/// # Errors
///
/// As [`Read::read_exact`].
pub fn read_exact_frame(stream: &mut impl Read, buf: &mut Vec<u8>, n: usize) -> io::Result<()> {
    buf.resize(n, 0);
    stream.read_exact(buf)
}

/// Millisecond virtual time since `start` — what the coordinator feeds
/// the state machine's `now_ms`.
pub fn elapsed_ms(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory stream double: reads drain a script in caller-chosen
    /// chunk sizes, mimicking TCP's arbitrary segmentation.
    struct ChunkedStream {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for ChunkedStream {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.pos == self.data.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "drained"));
            }
            let n = self.chunk.min(out.len()).min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut buf = bytes::BytesMut::with_capacity(5 + payload.len());
        begin_frame(&mut buf, kind);
        bytes::BufMut::put_slice(&mut buf, payload);
        end_frame(&mut buf);
        buf.to_vec()
    }

    #[test]
    fn frames_reassemble_across_arbitrary_segmentation() {
        let mut wire = Vec::new();
        wire.extend(frame(KIND_JOIN, &7u32.to_le_bytes()));
        wire.extend(frame(KIND_WARMUP, &[]));
        wire.extend(frame(KIND_GRAD, &[9; 100]));
        for chunk in [1, 2, 3, 7, 64, 4096] {
            let mut stream = ChunkedStream {
                data: wire.clone(),
                pos: 0,
                chunk,
            };
            let mut reader = FrameReader::new();
            let mut seen = Vec::new();
            loop {
                let n = reader.fill(&mut stream).unwrap();
                while let Some((kind, payload)) = reader.next_frame().unwrap() {
                    seen.push((kind, payload.to_vec()));
                }
                if n == 0 && stream.pos == stream.data.len() {
                    break;
                }
            }
            assert_eq!(
                seen,
                vec![
                    (KIND_JOIN, 7u32.to_le_bytes().to_vec()),
                    (KIND_WARMUP, Vec::new()),
                    (KIND_GRAD, vec![9; 100]),
                ],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_buffering() {
        let mut reader = FrameReader::new();
        let mut stream = ChunkedStream {
            data: (u32::MAX).to_le_bytes().to_vec(),
            pos: 0,
            chunk: 64,
        };
        reader.fill(&mut stream).unwrap();
        let before = reader.buf.len();
        match reader.next_frame() {
            Err(FrameError::TooLong { declared, limit }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(limit, MAX_FRAME_LEN);
            }
            other => panic!("expected TooLong, got {other:?}"),
        }
        assert_eq!(reader.buf.len(), before, "no allocation for hostile length");
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let mut reader = FrameReader::new();
        let mut stream = ChunkedStream {
            data: 0u32.to_le_bytes().to_vec(),
            pos: 0,
            chunk: 4,
        };
        reader.fill(&mut stream).unwrap();
        assert_eq!(reader.next_frame(), Err(FrameError::Empty));
    }

    #[test]
    fn eof_surfaces_as_unexpected_eof() {
        struct Closed;
        impl Read for Closed {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Ok(0)
            }
        }
        let err = FrameReader::new().fill(&mut Closed).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn steady_state_reception_reuses_the_buffer() {
        // Feed many identical frames; after the first few, the buffer's
        // pointer and capacity must never change (index bookkeeping only).
        let one = frame(KIND_GRAD, &[3; 600]);
        let mut reader = FrameReader::new();
        let mut baseline = None;
        for round in 0..50 {
            let mut stream = ChunkedStream {
                data: one.clone(),
                pos: 0,
                chunk: 128,
            };
            loop {
                let n = reader.fill(&mut stream).unwrap();
                if n == 0 {
                    break;
                }
            }
            let got = reader.next_frame().unwrap().expect("whole frame fed");
            assert_eq!(got.0, KIND_GRAD);
            assert_eq!(got.1.len(), 600);
            let fingerprint = (reader.buf.as_ptr(), reader.buf.capacity());
            match baseline {
                None => baseline = Some(fingerprint),
                Some(b) if round > 2 => assert_eq!(fingerprint, b, "round {round} reallocated"),
                Some(_) => {}
            }
        }
    }
}
